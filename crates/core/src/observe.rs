//! Streaming observation of running simulations.
//!
//! Every simulator's event loop is generic over an [`Observer`]: a
//! zero-cost hook that sees the simulation clock and the number-in-system
//! signal *before* each event is processed, plus every packet delivery.
//! [`NullObserver`] (the plain `run()` path) compiles away entirely, so an
//! unobserved run is exactly as fast — and consumes exactly the same
//! random draws, making reports bit-identical — as it was before this API
//! existed.
//!
//! Probes are composable: tuples of observers are observers, so
//! `(&mut series, &mut reservoir)` threads two probes through one run.
//! The stock probes are
//!
//! * [`TimeSeriesProbe`] — the `(t, N(t))` trajectory at a fixed sampling
//!   interval;
//! * [`OccupancyProbe`] — the time-weighted distribution of the total
//!   number in system;
//! * [`ReservoirProbe`] — a deterministic reservoir sample of individual
//!   packet delays (full-resolution tails without unbounded memory).
//!
//! High-frequency consumers behind a type-erased `&mut dyn Observer` can
//! interpose a [`BufferedObserver`], which batches observations and
//! replays them in order, amortising the per-event virtual call without
//! changing any probe's output.

use hyperroute_desim::{OccupancyHistogram, Reservoir};

/// A streaming hook into a simulation run.
///
/// Both methods default to no-ops so probes implement only what they
/// need. Implementations must not assume anything about call frequency
/// beyond the documented points: [`Observer::on_event`] fires once per
/// scheduler pop (before the event is applied), [`Observer::on_delivered`]
/// once per delivered packet.
pub trait Observer {
    /// The simulation clock reached `t`; `in_system` packets are in
    /// flight (generated, not yet delivered). Called before the event at
    /// `t` is applied.
    #[inline]
    fn on_event(&mut self, t: f64, in_system: f64) {
        let _ = (t, in_system);
    }

    /// A packet born at `born` was delivered at `t`.
    #[inline]
    fn on_delivered(&mut self, t: f64, born: f64) {
        let _ = (t, born);
    }

    /// A packet was generated at `t` on `source`. `packet_id` is the
    /// engine's birth-sequence number (0, 1, 2, …) — or
    /// [`NO_TRACE`](crate::engine::NO_TRACE) when the spec's packet
    /// representation does not carry a trace id (the packet then stays
    /// anonymous at every later hook).
    #[inline]
    fn on_generated(&mut self, t: f64, packet_id: u64, source: u32) {
        let _ = (t, packet_id, source);
    }

    /// Packet `packet_id` was enqueued at `t` on `arc` out of `node`.
    /// `queue_depth` counts the packets occupying the arc *after* this one
    /// joined, including the one in service (so an uncontended hop reports
    /// depth 1).
    #[inline]
    fn on_hop(&mut self, t: f64, packet_id: u64, node: u32, arc: u32, queue_depth: u32) {
        let _ = (t, packet_id, node, arc, queue_depth);
    }

    /// The hop just reported via [`Observer::on_hop`] was taken in escape
    /// mode (the GOAFR-style fallback walk out of a greedy local minimum).
    /// Fires immediately after the matching `on_hop`, never alone.
    #[inline]
    fn on_escape_hop(&mut self, t: f64, packet_id: u64, node: u32) {
        let _ = (t, packet_id, node);
    }

    /// Packet `packet_id` was dropped at `t` at `node` (fault-mask
    /// workloads with no live fallback arc).
    #[inline]
    fn on_drop(&mut self, t: f64, packet_id: u64, node: u32) {
        let _ = (t, packet_id, node);
    }

    /// A service completed at `t` on `arc`; `queue_depth` counts the
    /// packets still occupying the arc after the completed one left
    /// (including any successor already in service).
    #[inline]
    fn on_service_end(&mut self, t: f64, arc: u32, queue_depth: u32) {
        let _ = (t, arc, queue_depth);
    }

    /// Packet `packet_id`, born at `born`, was delivered at `t` after
    /// `hops` arc crossings, `deflections` of them non-greedy (fallback
    /// detours / escape hops). Fires alongside — not instead of —
    /// [`Observer::on_delivered`].
    #[inline]
    fn on_packet_delivered(
        &mut self,
        t: f64,
        packet_id: u64,
        born: f64,
        hops: u16,
        deflections: u16,
    ) {
        let _ = (t, packet_id, born, hops, deflections);
    }
}

/// The do-nothing observer driving plain `run()`; optimises away.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

impl<O: Observer + ?Sized> Observer for &mut O {
    #[inline]
    fn on_event(&mut self, t: f64, in_system: f64) {
        (**self).on_event(t, in_system);
    }

    #[inline]
    fn on_delivered(&mut self, t: f64, born: f64) {
        (**self).on_delivered(t, born);
    }

    #[inline]
    fn on_generated(&mut self, t: f64, packet_id: u64, source: u32) {
        (**self).on_generated(t, packet_id, source);
    }

    #[inline]
    fn on_hop(&mut self, t: f64, packet_id: u64, node: u32, arc: u32, queue_depth: u32) {
        (**self).on_hop(t, packet_id, node, arc, queue_depth);
    }

    #[inline]
    fn on_escape_hop(&mut self, t: f64, packet_id: u64, node: u32) {
        (**self).on_escape_hop(t, packet_id, node);
    }

    #[inline]
    fn on_drop(&mut self, t: f64, packet_id: u64, node: u32) {
        (**self).on_drop(t, packet_id, node);
    }

    #[inline]
    fn on_service_end(&mut self, t: f64, arc: u32, queue_depth: u32) {
        (**self).on_service_end(t, arc, queue_depth);
    }

    #[inline]
    fn on_packet_delivered(
        &mut self,
        t: f64,
        packet_id: u64,
        born: f64,
        hops: u16,
        deflections: u16,
    ) {
        (**self).on_packet_delivered(t, packet_id, born, hops, deflections);
    }
}

impl<A: Observer, B: Observer> Observer for (A, B) {
    #[inline]
    fn on_event(&mut self, t: f64, in_system: f64) {
        self.0.on_event(t, in_system);
        self.1.on_event(t, in_system);
    }

    #[inline]
    fn on_delivered(&mut self, t: f64, born: f64) {
        self.0.on_delivered(t, born);
        self.1.on_delivered(t, born);
    }

    #[inline]
    fn on_generated(&mut self, t: f64, packet_id: u64, source: u32) {
        self.0.on_generated(t, packet_id, source);
        self.1.on_generated(t, packet_id, source);
    }

    #[inline]
    fn on_hop(&mut self, t: f64, packet_id: u64, node: u32, arc: u32, queue_depth: u32) {
        self.0.on_hop(t, packet_id, node, arc, queue_depth);
        self.1.on_hop(t, packet_id, node, arc, queue_depth);
    }

    #[inline]
    fn on_escape_hop(&mut self, t: f64, packet_id: u64, node: u32) {
        self.0.on_escape_hop(t, packet_id, node);
        self.1.on_escape_hop(t, packet_id, node);
    }

    #[inline]
    fn on_drop(&mut self, t: f64, packet_id: u64, node: u32) {
        self.0.on_drop(t, packet_id, node);
        self.1.on_drop(t, packet_id, node);
    }

    #[inline]
    fn on_service_end(&mut self, t: f64, arc: u32, queue_depth: u32) {
        self.0.on_service_end(t, arc, queue_depth);
        self.1.on_service_end(t, arc, queue_depth);
    }

    #[inline]
    fn on_packet_delivered(
        &mut self,
        t: f64,
        packet_id: u64,
        born: f64,
        hops: u16,
        deflections: u16,
    ) {
        self.0
            .on_packet_delivered(t, packet_id, born, hops, deflections);
        self.1
            .on_packet_delivered(t, packet_id, born, hops, deflections);
    }
}

/// Samples `(t, N(t))` every `interval` time units up to `horizon`.
///
/// Sample points sit on the fixed grid `interval, 2·interval, …` (capped
/// at the horizon), and each sample reads the state *before* the first
/// event at or past the sample time.
#[derive(Clone, Debug)]
pub struct TimeSeriesProbe {
    interval: f64,
    horizon: f64,
    next: f64,
    /// The collected `(time, number-in-system)` samples.
    pub samples: Vec<(f64, f64)>,
}

impl TimeSeriesProbe {
    /// Probe sampling every `interval` (> 0) until `horizon`.
    pub fn new(interval: f64, horizon: f64) -> TimeSeriesProbe {
        assert!(interval > 0.0, "sampling interval must be positive");
        TimeSeriesProbe {
            interval,
            horizon,
            next: interval,
            samples: Vec::new(),
        }
    }

    /// The samples, consuming the probe.
    pub fn into_samples(self) -> Vec<(f64, f64)> {
        self.samples
    }
}

impl Observer for TimeSeriesProbe {
    #[inline]
    fn on_event(&mut self, t: f64, in_system: f64) {
        while self.next <= t && self.next <= self.horizon {
            self.samples.push((self.next, in_system));
            self.next += self.interval;
        }
    }
}

/// Time-weighted histogram of the total number in system.
///
/// [`Observer::on_event`] reports the *pre-event* occupancy at time `t` —
/// the value that has held since the previous event (occupancy only
/// changes at events). The probe therefore attributes each reported value
/// back to the previous event time, so intervals land on the value that
/// actually occupied them rather than lagging one inter-event gap behind.
#[derive(Clone, Debug)]
pub struct OccupancyProbe {
    hist: OccupancyHistogram,
    cap: usize,
    /// Time of the previous `on_event` call — where the currently-reported
    /// occupancy became current.
    last_event_t: f64,
    horizon: f64,
}

impl OccupancyProbe {
    /// Track occupancies `0..cap` (time at `cap - 1` and above is pooled
    /// into the last queryable bin, `fraction(cap - 1)`) over
    /// `[0, horizon]`.
    pub fn new(cap: usize, horizon: f64) -> OccupancyProbe {
        assert!(cap >= 1, "occupancy cap must be at least 1");
        OccupancyProbe {
            hist: OccupancyHistogram::new(0.0, 0, cap),
            cap,
            last_event_t: 0.0,
            horizon,
        }
    }

    /// Fraction of time spent with exactly `n` in system (`n < cap`).
    pub fn fraction(&self, n: usize) -> f64 {
        self.hist.fraction(n, self.horizon)
    }
}

impl Observer for OccupancyProbe {
    #[inline]
    fn on_event(&mut self, t: f64, in_system: f64) {
        // Clamp to the last queryable bin: the histogram's bins are
        // 0..cap, and anything pushed at >= cap would land in its
        // internal overflow bucket, which `fraction` cannot read.
        let n = (in_system.max(0.0) as usize).min(self.cap - 1);
        if n != self.hist.current() {
            // `in_system` held throughout [last_event_t, t): it became
            // current at the previous event, so record the change there.
            self.hist.set(self.last_event_t.min(self.horizon), n);
        }
        self.last_event_t = t;
    }
}

/// One buffered observation of a [`BufferedObserver`]: the two hook
/// methods share a single ordered buffer so replay preserves the exact
/// interleaving of events and deliveries.
#[derive(Clone, Copy, Debug)]
enum Buffered {
    /// An `on_event(t, in_system)` call.
    Event(f64, f64),
    /// An `on_delivered(t, born)` call.
    Delivered(f64, f64),
    /// An `on_generated(t, packet_id, source)` call.
    Generated(f64, u64, u32),
    /// An `on_hop(t, packet_id, node, arc, queue_depth)` call.
    Hop(f64, u64, u32, u32, u32),
    /// An `on_escape_hop(t, packet_id, node)` call.
    EscapeHop(f64, u64, u32),
    /// An `on_drop(t, packet_id, node)` call.
    Drop(f64, u64, u32),
    /// An `on_service_end(t, arc, queue_depth)` call.
    ServiceEnd(f64, u32, u32),
    /// An `on_packet_delivered(t, packet_id, born, hops, deflections)` call.
    PacketDelivered(f64, u64, f64, u16, u16),
}

/// Batches observations before the `&mut dyn Observer` virtual call.
///
/// `Scenario::run_observed` necessarily drives a type-erased
/// `&mut dyn Observer`, which costs one indirect call per simulation
/// event. Probes are fine with that, but a high-frequency consumer (a
/// tracer writing every event somewhere) pays the indirection on the
/// simulator's hot loop. This adapter sits in between: the event loop
/// sees a concrete `BufferedObserver` whose hooks are plain `Vec` pushes,
/// and the wrapped observer receives the same calls in the same order in
/// batches of `capacity`, amortising the virtual dispatch.
///
/// The adapter never reorders or drops observations —
/// [`BufferedObserver::flush`] (called automatically when the buffer
/// fills and on drop) replays them in arrival order, so any wrapped
/// observer produces output identical to being driven directly.
///
/// ```
/// use hyperroute_core::observe::{BufferedObserver, Observer, TimeSeriesProbe};
///
/// let mut probe = TimeSeriesProbe::new(1.0, 10.0);
/// {
///     let mut buffered = BufferedObserver::new(&mut probe, 64);
///     buffered.on_event(2.5, 1.0);
///     buffered.on_event(4.0, 3.0);
/// } // dropping flushes
/// assert_eq!(probe.samples, vec![(1.0, 1.0), (2.0, 1.0), (3.0, 3.0), (4.0, 3.0)]);
/// ```
pub struct BufferedObserver<'a> {
    inner: &'a mut dyn Observer,
    buf: Vec<Buffered>,
    capacity: usize,
}

impl std::fmt::Debug for BufferedObserver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferedObserver")
            .field("buffered", &self.buf.len())
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl<'a> BufferedObserver<'a> {
    /// Buffer up to `capacity` (> 0) observations ahead of `inner`.
    pub fn new(inner: &'a mut dyn Observer, capacity: usize) -> BufferedObserver<'a> {
        assert!(capacity > 0, "buffer capacity must be positive");
        BufferedObserver {
            inner,
            buf: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Replay every buffered observation into the wrapped observer, in
    /// arrival order. Called automatically when the buffer fills and on
    /// drop; call it manually to checkpoint mid-run.
    pub fn flush(&mut self) {
        for obs in self.buf.drain(..) {
            match obs {
                Buffered::Event(t, in_system) => self.inner.on_event(t, in_system),
                Buffered::Delivered(t, born) => self.inner.on_delivered(t, born),
                Buffered::Generated(t, id, source) => self.inner.on_generated(t, id, source),
                Buffered::Hop(t, id, node, arc, depth) => {
                    self.inner.on_hop(t, id, node, arc, depth)
                }
                Buffered::EscapeHop(t, id, node) => self.inner.on_escape_hop(t, id, node),
                Buffered::Drop(t, id, node) => self.inner.on_drop(t, id, node),
                Buffered::ServiceEnd(t, arc, depth) => self.inner.on_service_end(t, arc, depth),
                Buffered::PacketDelivered(t, id, born, hops, deflections) => self
                    .inner
                    .on_packet_delivered(t, id, born, hops, deflections),
            }
        }
    }

    #[inline]
    fn push(&mut self, obs: Buffered) {
        self.buf.push(obs);
        if self.buf.len() >= self.capacity {
            self.flush();
        }
    }
}

impl Observer for BufferedObserver<'_> {
    #[inline]
    fn on_event(&mut self, t: f64, in_system: f64) {
        self.push(Buffered::Event(t, in_system));
    }

    #[inline]
    fn on_delivered(&mut self, t: f64, born: f64) {
        self.push(Buffered::Delivered(t, born));
    }

    #[inline]
    fn on_generated(&mut self, t: f64, packet_id: u64, source: u32) {
        self.push(Buffered::Generated(t, packet_id, source));
    }

    #[inline]
    fn on_hop(&mut self, t: f64, packet_id: u64, node: u32, arc: u32, queue_depth: u32) {
        self.push(Buffered::Hop(t, packet_id, node, arc, queue_depth));
    }

    #[inline]
    fn on_escape_hop(&mut self, t: f64, packet_id: u64, node: u32) {
        self.push(Buffered::EscapeHop(t, packet_id, node));
    }

    #[inline]
    fn on_drop(&mut self, t: f64, packet_id: u64, node: u32) {
        self.push(Buffered::Drop(t, packet_id, node));
    }

    #[inline]
    fn on_service_end(&mut self, t: f64, arc: u32, queue_depth: u32) {
        self.push(Buffered::ServiceEnd(t, arc, queue_depth));
    }

    #[inline]
    fn on_packet_delivered(
        &mut self,
        t: f64,
        packet_id: u64,
        born: f64,
        hops: u16,
        deflections: u16,
    ) {
        self.push(Buffered::PacketDelivered(
            t,
            packet_id,
            born,
            hops,
            deflections,
        ));
    }
}

impl Drop for BufferedObserver<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Deterministic reservoir sample of per-packet delays.
///
/// Keeps a fixed-size uniform sample of `t - born` over all deliveries
/// seen, independent of run length; quantiles come out via
/// [`ReservoirProbe::quantile`].
#[derive(Clone, Debug)]
pub struct ReservoirProbe {
    reservoir: Reservoir,
}

impl ReservoirProbe {
    /// Reservoir of the given capacity, seeded deterministically.
    pub fn new(capacity: usize, seed: u64) -> ReservoirProbe {
        ReservoirProbe {
            reservoir: Reservoir::new(capacity, seed),
        }
    }

    /// Empirical `q`-quantile of the sampled delays (`None` when empty).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.reservoir.quantile(q)
    }

    /// Number of deliveries offered to the reservoir.
    pub fn observed(&self) -> u64 {
        self.reservoir.seen()
    }
}

impl Observer for ReservoirProbe {
    #[inline]
    fn on_delivered(&mut self, t: f64, born: f64) {
        self.reservoir.push(t - born);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_is_inert() {
        let mut o = NullObserver;
        o.on_event(1.0, 2.0);
        o.on_delivered(3.0, 1.0);
    }

    #[test]
    fn time_series_probe_grid() {
        let mut p = TimeSeriesProbe::new(10.0, 100.0);
        // Events at t = 5 (no sample yet), 25 (samples at 10 and 20), …
        p.on_event(5.0, 1.0);
        assert!(p.samples.is_empty());
        p.on_event(25.0, 3.0);
        assert_eq!(p.samples, vec![(10.0, 3.0), (20.0, 3.0)]);
        // Samples never pass the horizon.
        p.on_event(500.0, 7.0);
        assert_eq!(p.samples.len(), 10);
        assert_eq!(p.samples.last().unwrap().0, 100.0);
    }

    #[test]
    fn tuple_observer_fans_out() {
        let mut pair = (
            TimeSeriesProbe::new(1.0, 10.0),
            TimeSeriesProbe::new(2.0, 10.0),
        );
        pair.on_event(4.5, 2.0);
        assert_eq!(pair.0.samples.len(), 4);
        assert_eq!(pair.1.samples.len(), 2);
    }

    #[test]
    fn occupancy_probe_attributes_pre_event_values() {
        // The observer reports the PRE-event occupancy: an arrival at
        // t = 2 raises N to 1, which the probe only learns at the next
        // event (t = 6, reporting "N was 1"). The interval [2, 6) must be
        // booked as occupancy 1, not lag until t = 6.
        let mut p = OccupancyProbe::new(4, 10.0);
        p.on_event(2.0, 0.0); // N was 0 over [0, 2); arrival fires at 2
        p.on_event(6.0, 1.0); // N was 1 over [2, 6); completion at 6
        p.on_event(10.0, 0.0); // N was 0 over [6, 10)
        assert!((p.fraction(0) - 0.6).abs() < 1e-12, "{}", p.fraction(0));
        assert!((p.fraction(1) - 0.4).abs() < 1e-12, "{}", p.fraction(1));
    }

    #[test]
    fn occupancy_probe_pools_excess_into_last_bin() {
        // cap = 2: bins are {0, 1}; occupancy 5 must pool into bin 1, not
        // vanish into an unreachable overflow bucket.
        let mut p = OccupancyProbe::new(2, 10.0);
        p.on_event(4.0, 0.0); // N was 0 over [0, 4)
        p.on_event(10.0, 5.0); // N was 5 over [4, 10)
        assert!((p.fraction(0) - 0.4).abs() < 1e-12, "{}", p.fraction(0));
        assert!((p.fraction(1) - 0.6).abs() < 1e-12, "{}", p.fraction(1));
    }

    #[test]
    fn occupancy_probe_matches_eqnet_histogram_on_real_run() {
        // Couple the probe to a real simulation and compare against the
        // engine's own exact-change-time occupancy machinery: total
        // network occupancy fractions from the probe must agree with a
        // TimeSeriesProbe-derived reference to within event granularity.
        use crate::scenario::{EqNetSpec, Scenario, Topology};
        let scenario = Scenario::builder(Topology::EqNet {
            net: EqNetSpec::Fig2 {
                rate1: 0.3,
                rate2: 0.3,
                rate3: 0.2,
                q1: 0.5,
                q2: 0.5,
            },
            record_departures: false,
            occupancy_cap: 0,
        })
        .horizon(2_000.0)
        .warmup(1.0)
        .seed(7)
        .build()
        .unwrap();
        let mut occupancy = OccupancyProbe::new(16, 2_000.0);
        let mut series = TimeSeriesProbe::new(0.25, 2_000.0);
        scenario
            .run_observed(&mut (&mut occupancy, &mut series))
            .unwrap();
        let samples = series.into_samples();
        for n in 0..3usize {
            let reference = samples.iter().filter(|&&(_, v)| v as usize == n).count() as f64
                / samples.len() as f64;
            let measured = occupancy.fraction(n);
            assert!(
                (measured - reference).abs() < 0.02,
                "occupancy {n}: probe {measured} vs sampled reference {reference}"
            );
        }
    }

    #[test]
    fn buffered_observer_flushes_on_capacity_and_drop() {
        let mut probe = TimeSeriesProbe::new(1.0, 100.0);
        let mut buffered = BufferedObserver::new(&mut probe, 2);
        buffered.on_event(1.5, 1.0);
        assert!(buffered.buf.len() == 1, "below capacity: still buffered");
        buffered.on_event(2.5, 2.0); // second push hits capacity → flush
        assert!(buffered.buf.is_empty());
        buffered.on_event(3.5, 5.0);
        drop(buffered); // drop flushes the straggler
        assert_eq!(probe.samples, vec![(1.0, 1.0), (2.0, 2.0), (3.0, 5.0)]);
    }

    #[test]
    fn buffered_observer_output_identical_to_unbuffered() {
        // Same simulation, same probes, once direct and once through the
        // batching adapter with a deliberately awkward capacity: every
        // probe output (and the report) must be identical.
        use crate::scenario::{Scenario, Topology};
        let scenario = Scenario::builder(Topology::Hypercube { dim: 4 })
            .lambda(1.2)
            .p(0.5)
            .horizon(400.0)
            .warmup(80.0)
            .seed(33)
            .build()
            .unwrap();

        let mut direct_series = TimeSeriesProbe::new(7.0, 400.0);
        let mut direct_reservoir = ReservoirProbe::new(128, 5);
        let direct_report = scenario
            .run_observed(&mut (&mut direct_series, &mut direct_reservoir))
            .unwrap();

        let mut buffered_series = TimeSeriesProbe::new(7.0, 400.0);
        let mut buffered_reservoir = ReservoirProbe::new(128, 5);
        let mut pair = (&mut buffered_series, &mut buffered_reservoir);
        let mut buffered = BufferedObserver::new(&mut pair, 97);
        let buffered_report = scenario.run_observed(&mut buffered).unwrap();
        drop(buffered);

        assert_eq!(direct_report, buffered_report);
        assert_eq!(direct_series.samples, buffered_series.samples);
        assert_eq!(direct_reservoir.observed(), buffered_reservoir.observed());
        assert_eq!(
            direct_reservoir.quantile(0.9),
            buffered_reservoir.quantile(0.9)
        );
    }

    #[test]
    fn reservoir_probe_quantiles() {
        let mut p = ReservoirProbe::new(64, 9);
        for i in 0..10 {
            p.on_delivered(i as f64 + 1.0, i as f64);
        }
        // All delays are exactly 1.
        assert_eq!(p.quantile(0.5), Some(1.0));
        assert_eq!(p.observed(), 10);
    }
}
