//! Sharded intra-run execution: one simulation across several cores,
//! byte-identical to the single-threaded engine.
//!
//! # The lookahead argument
//!
//! Every arc has unit latency: a packet whose service starts at time `t`
//! arrives at its next node at `t + 1`. Partition the nodes across `W`
//! shards (each shard owning the arcs whose *tail* it owns) and advance
//! simulation time in windows `[k, k+1)` aligned to the integer grid.
//! Within one window, no event on shard A can affect shard B: the only
//! cross-shard interaction is a packet crossing a boundary arc, and that
//! crossing lands a full time unit after the service that launched it —
//! always in a *later* window. Stronger still, every service completion
//! scheduled during window `k` fires in window `k + 1`, so the complete
//! event population of a window is known before the window begins. This
//! is classic conservative parallel discrete-event simulation with
//! lookahead 1 — the paper's unit-transmission model hands us the
//! lookahead for free.
//!
//! # The determinism contract
//!
//! Reports must be **byte-identical** to the single-threaded
//! [`Engine`](crate::engine::Engine) — it stays the differential oracle.
//! Three mechanisms deliver that:
//!
//! 1. **Central arrival stream.** The coordinator owns the arrival and
//!    destination RNGs and draws every arrival (next-interarrival first,
//!    then the source, then the destination law) in exactly the
//!    single-threaded order, then routes the packet to its owner shard.
//! 2. **Coordinator-ordered agendas.** Identical timestamps are *not*
//!    rare here: a queued packet's service starts the instant its
//!    predecessor completes, so whole event lineages share one
//!    fractional part and collide bitwise, and the single-threaded
//!    engine breaks those ties by insertion order into its event queue.
//!    The lookahead makes that order reproducible: because window
//!    `k`'s events were all scheduled during window `k - 1`, each one
//!    is announced to the coordinator (with its *parent* event and its
//!    push slot within the parent — completions of a freed arc's next
//!    waiter are pushed before the finished packet's next-arc
//!    completion) a window before it fires. The coordinator sorts the
//!    window globally by `(time, queue-beats-arrivals, parent's pop
//!    position, slot)` — exactly the single-threaded `(time, seq)`
//!    order — and hands every shard its slice of the sequence as an
//!    explicit agenda. Shards execute agendas in order, so FIFO queues
//!    fill identically; the coordinator then replays the shards'
//!    effect records (service ends, hops, deliveries, drops) in the
//!    same agenda order against the collector, the primary spec's
//!    order-dependent statistics, and the observer. A
//!    [`FlightRecorder`](../../hyperroute_telemetry) attached to a
//!    sharded run sees the exact single-threaded call sequence.
//! 3. **No shard-side randomness.** Configurations whose per-hop
//!    decisions draw from shared RNG streams (random-order routing,
//!    random contention, slotted arrival batches) are rejected by
//!    validation at `workers > 1`; everything a shard does is a pure
//!    function of the packets it receives.
//!
//! # When NOT to shard
//!
//! Sharding pays a per-window synchronisation barrier (two channel
//! hand-offs per shard per simulated time unit) plus the agenda sort
//! and record replay on the coordinator. It wins when the per-window
//! event volume is large: big graphs under heavy traffic (a `d = 12`
//! hypercube near saturation runs thousands of events per window). It
//! loses on small or lightly loaded runs — a `d = 6` hypercube at
//! `ρ = 0.5` has tens of events per window, and the barrier dominates.
//! Sweeps that already saturate all cores with independent points
//! should keep `workers = None`: intra-run sharding would only add
//! overhead inside each point.

use crate::config::{ArrivalModel, ContentionPolicy};
use crate::engine::{Advance, ArcChoice, EngineCfg, EnginePacket, EngineSpec, Spawn, ARC_BUSY};
use crate::metrics::MetricsCollector;
use crate::observe::Observer;
use crate::pool::{ArcFifo, SlabPool};
use crate::profile::{Phase, PhaseTimers, Tick};
use hyperroute_desim::SimRng;
use std::collections::HashMap;
use std::sync::mpsc;

/// Low bits of an event id carry the shard that created it.
const SHARD_BITS: u32 = 6;
/// Shard-tag value reserved for coordinator-drawn arrival events.
const ARRIVAL_TAG: u64 = (1 << SHARD_BITS) - 1;
/// Hard cap on shard workers (ids reserve [`ARRIVAL_TAG`]; far above
/// any core count where window barriers still pay off).
const MAX_WORKERS: usize = 32;

/// A spec a shard worker can run: the worker-side half of a
/// [`ShardableSpec`]. Shard-side statistics are either absorbed
/// (order-independent integer tallies) or discarded in favour of the
/// coordinator's replay, so the only extra surface is the drop-code
/// hand-off.
pub trait ShardSpec: EngineSpec {
    /// Classification code of the drop [`EngineSpec::choose_arc`] just
    /// decided (consumed: a second call returns the default). Carried in
    /// the drop record so the primary spec can replay its taxonomy.
    fn take_drop_code(&mut self) -> u8 {
        0
    }
}

/// The primary-side contract for sharded execution: how to clone
/// worker specs, partition the nodes, replay order-dependent statistics
/// from the merged record stream, and absorb the order-independent
/// shard tallies.
///
/// Two purity requirements beyond [`EngineSpec`]'s, both already true
/// of every engine-backed spec and checked by the differential suite:
///
/// * [`EngineSpec::advance`] must not read or write mutable spec state
///   (the shard engine applies it at service *start*, one time unit
///   before the single-threaded engine would).
/// * [`EngineSpec::choose_arc`] must return arcs whose tail is the
///   node the packet sits at (shard locality). Validation rejects the
///   one configuration that violates this (butterfly fault fallbacks,
///   whose ranked alternates include foreign-tail wrap arcs).
pub trait ShardableSpec: EngineSpec {
    /// The worker-side spec: same packets, fresh statistics.
    type Shard: ShardSpec<Pkt = Self::Pkt> + Send;

    /// Build one worker spec (fresh zeroed statistics; fault state
    /// rebuilt deterministically from its own seeds).
    fn shard(&self) -> Self::Shard;

    /// Number of nodes (the partitioner's domain).
    fn num_nodes(&self) -> usize;

    /// Tail node of dense arc `arc` — drives the degree-balanced
    /// partition and arc ownership.
    fn arc_tail(&self, arc: usize) -> u32;

    /// Replay a hop at `t` onto `arc` (the order-dependent half of what
    /// [`EngineSpec::choose_arc`] tallies — time-weighted occupancies).
    /// Order-independent tallies (per-arc/per-dimension arrival counts)
    /// stay shard-side and come back through
    /// [`absorb`](ShardableSpec::absorb). Default: nothing.
    fn replay_hop(&mut self, _t: f64, _arc: u32) {}

    /// Replay a service end at `t` on `arc` (the counterpart of
    /// [`EngineSpec::note_service_end`], keyed by arc index instead of
    /// meta word). Default: nothing.
    fn replay_service_end(&mut self, _t: f64, _arc: u32) {}

    /// Replay a drop with the classification `code` the shard captured
    /// via [`ShardSpec::take_drop_code`]. Default: plain
    /// [`EngineSpec::note_drop`].
    fn replay_drop(&mut self, pkt: &Self::Pkt, in_window: bool, code: u8) {
        let _ = code;
        self.note_drop(pkt, in_window);
    }

    /// Fold a finished worker's order-independent tallies into the
    /// primary statistics.
    fn absorb(&mut self, shard: &Self::Shard);

    /// The run is over; `t_last` is the time of the last routing
    /// decision (dynamic fault masks catch up their schedules here).
    fn finish(&mut self, _t_last: f64) {}
}

/// What a shard did during one agenda item, in the single-threaded
/// engine's own vocabulary. All records of an item share the item's
/// event time, so no time is stored.
enum Rec<P> {
    /// A service completed (`depth`: packets still on the arc after the
    /// next service started).
    ServiceEnd { arc: u32, depth: u32 },
    /// A packet was enqueued on `arc` out of `node`.
    Hop {
        id: u32,
        node: u32,
        arc: u32,
        depth: u32,
        escape: bool,
    },
    /// A packet reached its destination.
    Deliver { pkt: P, hops: u16 },
    /// A packet was dropped at `node` with shard-captured taxonomy
    /// `code`.
    Drop { pkt: P, node: u32, code: u8 },
}

/// A future service completion, announced to the coordinator the window
/// before it fires: the event's global order key is `(t, parent's pop
/// position, slot)`.
struct Header {
    id: u64,
    t: f64,
    parent: u64,
    slot: u8,
}

/// A boundary crossing: the continuation of completion event `id`
/// lands `pkt` at `node` (owned by another shard) at `t`.
struct Crossing<P> {
    id: u64,
    t: f64,
    node: u32,
    pkt: P,
}

/// One entry of a shard's window agenda, in global event order.
enum Item<P> {
    /// Pop the shard's pending completion `id`.
    Event { id: u64 },
    /// Process the packet fragment of event `id` (a boundary crossing's
    /// continuation, or a coordinator-drawn arrival): `pkt` enters the
    /// network at `node` at `t`.
    Packet { id: u64, t: f64, node: u32, pkt: P },
}

/// Coordinator → worker: one lookahead window, or shutdown.
enum ToShard<P> {
    /// Process these items, strictly in order.
    Window { agenda: Vec<Item<P>> },
    /// The run is over; send the finished spec back.
    Done,
}

/// Worker → coordinator, after each window.
struct WindowResult<P> {
    /// This window's record stream, in agenda order.
    records: Vec<Rec<P>>,
    /// `(event id, record count)` per processed agenda item, in order —
    /// the coordinator's cursor into `records`.
    spans: Vec<(u64, u32)>,
    /// Completions scheduled this window (they all fire next window).
    headers: Vec<Header>,
    /// Boundary crossings launched this window.
    crossings: Vec<Crossing<P>>,
}

/// Continuation of an in-service packet, precomputed at service start
/// (legal because [`EngineSpec::advance`] is pure w.r.t. spec state).
/// Boundary crossings are emitted the moment service starts, so the
/// receiving shard's agenda can include the packet in the window where
/// it arrives.
enum Continue<P> {
    /// Delivered at the head node.
    Deliver { pkt: P, hops: u16 },
    /// Forwards to a node this shard owns.
    Local { node: u32, pkt: P },
    /// Forwards to another shard (the crossing is already queued).
    Remote,
}

/// Per-arc worker state: the intrusive waiter list plus the packed
/// routing word (same layout as the single-threaded engine's).
#[derive(Clone, Copy)]
struct ShardArc {
    waiting: ArcFifo,
    meta: u32,
}

/// One worker: a stripped-down engine over the nodes it owns. No RNGs
/// (validation guarantees no shard-side draws), no collector, no
/// observer, and no event queue of its own — the coordinator's agenda
/// *is* the schedule; effects stream out as [`Rec`]s.
struct ShardEngine<S: ShardSpec> {
    spec: S,
    warmup: f64,
    horizon: f64,
    lifo: bool,
    /// This shard's id tag (low [`SHARD_BITS`] of every event id it
    /// creates).
    me: u64,
    owner: std::sync::Arc<Vec<u8>>,
    pool: SlabPool<S::Pkt>,
    arcs: Vec<ShardArc>,
    /// In-flight services by event id, with their precomputed
    /// continuations.
    pending: HashMap<u64, (f64, u32, Continue<S::Pkt>)>,
    next_id: u64,
    records: Vec<Rec<S::Pkt>>,
    spans: Vec<(u64, u32)>,
    headers: Vec<Header>,
    crossings: Vec<Crossing<S::Pkt>>,
    /// Dead stream for the `choose_arc` signature; never sampled in any
    /// configuration validation admits at `workers > 1`.
    null_rng: SimRng,
}

impl<S: ShardSpec> ShardEngine<S> {
    fn new(spec: S, cfg: &EngineCfg, me: u64, owner: std::sync::Arc<Vec<u8>>) -> ShardEngine<S> {
        let arcs = (0..spec.num_arcs())
            .map(|arc| ShardArc {
                waiting: ArcFifo::new(),
                meta: spec.arc_meta(arc),
            })
            .collect();
        ShardEngine {
            arcs,
            warmup: cfg.warmup,
            horizon: cfg.horizon,
            lifo: cfg.contention == ContentionPolicy::Lifo,
            me,
            owner,
            pool: SlabPool::with_capacity(1024),
            pending: HashMap::new(),
            next_id: 0,
            records: Vec::new(),
            spans: Vec::new(),
            headers: Vec::new(),
            crossings: Vec::new(),
            null_rng: SimRng::new(0),
            spec,
        }
    }

    /// Execute one window's agenda, strictly in the order given.
    fn run_window(&mut self, agenda: Vec<Item<S::Pkt>>) {
        for item in agenda {
            let start = self.records.len();
            let id = match item {
                Item::Event { id } => {
                    let (t, arc, cont) = self
                        .pending
                        .remove(&id)
                        .expect("agenda references an unknown pending event");
                    self.on_complete(t, arc as usize, id, cont);
                    id
                }
                Item::Packet { id, t, node, pkt } => {
                    self.enqueue(t, node, pkt, id);
                    id
                }
            };
            self.spans.push((id, (self.records.len() - start) as u32));
        }
    }

    /// Route `pkt` out of `node` at `t` and put it on an arc queue; any
    /// service start this causes is a slot-1 child of event `parent`
    /// (the single-threaded engine pushes the moved packet's completion
    /// *after* the freed arc's next service).
    fn enqueue(&mut self, t: f64, node: u32, mut pkt: S::Pkt, parent: u64) {
        let in_window = t >= self.warmup && t < self.horizon;
        let choice = self
            .spec
            .choose_arc(t, in_window, node, &mut pkt, &mut self.null_rng);
        let arc = match choice {
            ArcChoice::Arc(arc) => arc as usize,
            ArcChoice::Drop => {
                let code = self.spec.take_drop_code();
                self.records.push(Rec::Drop { pkt, node, code });
                return;
            }
        };
        let id = pkt.trace_id();
        let escape = self.spec.in_escape(&pkt);
        let depth = if self.arcs[arc].meta & ARC_BUSY == 0 {
            self.arcs[arc].meta |= ARC_BUSY;
            self.start_service(t, arc, pkt, parent, 1);
            1
        } else {
            self.arcs[arc].waiting.push_back(&mut self.pool, pkt);
            1 + self.arcs[arc].waiting.len() as u32
        };
        self.records.push(Rec::Hop {
            id,
            node,
            arc: arc as u32,
            depth,
            escape,
        });
    }

    /// Begin serving `pkt` on `arc` at `t`: assign the completion event
    /// an id, precompute its advance, and announce it to the
    /// coordinator. A boundary crossing is emitted *now* — its arrival
    /// time `t + 1` is in the next window by the lookahead argument, so
    /// the receiving shard's agenda will include the packet.
    fn start_service(&mut self, t: f64, arc: usize, mut pkt: S::Pkt, parent: u64, slot: u8) {
        let meta = self.arcs[arc].meta & !ARC_BUSY;
        let id = (self.next_id << SHARD_BITS) | self.me;
        self.next_id += 1;
        let due = t + 1.0;
        let cont = match self.spec.advance(meta, &mut pkt) {
            Advance::Deliver(hops) => Continue::Deliver { pkt, hops },
            Advance::Forward(node) => {
                if self.owner[node as usize] as u64 == self.me {
                    Continue::Local { node, pkt }
                } else {
                    self.crossings.push(Crossing {
                        id,
                        t: due,
                        node,
                        pkt,
                    });
                    Continue::Remote
                }
            }
        };
        self.pending.insert(id, (due, arc as u32, cont));
        self.headers.push(Header {
            id,
            t: due,
            parent,
            slot,
        });
    }

    fn on_complete(&mut self, t: f64, arc: usize, id: u64, cont: Continue<S::Pkt>) {
        let meta = self.arcs[arc].meta;
        debug_assert!(meta & ARC_BUSY != 0, "completion on an idle arc");
        self.spec.note_service_end(t, meta & !ARC_BUSY);
        let next = if self.lifo {
            self.arcs[arc].waiting.pop_back(&mut self.pool)
        } else {
            self.arcs[arc].waiting.pop_front(&mut self.pool)
        };
        match next {
            // The freed arc's next service is this event's slot-0 child.
            Some(pkt) => self.start_service(t, arc, pkt, id, 0),
            None => self.arcs[arc].meta &= !ARC_BUSY,
        }
        let busy = (self.arcs[arc].meta & ARC_BUSY != 0) as u32;
        let depth = busy + self.arcs[arc].waiting.len() as u32;
        self.records.push(Rec::ServiceEnd {
            arc: arc as u32,
            depth,
        });
        match cont {
            Continue::Deliver { pkt, hops } => self.records.push(Rec::Deliver { pkt, hops }),
            Continue::Local { node, pkt } => self.enqueue(t, node, pkt, id),
            Continue::Remote => {}
        }
    }
}

/// Contiguous node ranges balanced by cumulative out-degree, as a
/// node → shard map. Degree balancing matters on skewed graphs
/// (scale-free hubs); on regular topologies it degenerates to equal
/// node counts. Contiguity keeps each shard's hot arcs in a compact
/// index range (the CSR topologies enumerate arcs node-major).
fn partition_nodes<T: ShardableSpec>(spec: &T, workers: usize) -> Vec<u8> {
    let nodes = spec.num_nodes();
    let mut degree = vec![0u32; nodes];
    for arc in 0..spec.num_arcs() {
        degree[spec.arc_tail(arc) as usize] += 1;
    }
    let total: u64 = degree.iter().map(|&d| d as u64).sum();
    let mut owner = vec![0u8; nodes];
    if total == 0 {
        // Round-robin fallback for degenerate (arcless) graphs.
        for (node, slot) in owner.iter_mut().enumerate() {
            *slot = (node % workers) as u8;
        }
        return owner;
    }
    let mut acc = 0u64;
    let mut shard = 0usize;
    for node in 0..nodes {
        // Advance to the next shard when this one has met its share of
        // the total degree (never past the last shard).
        if shard + 1 < workers && acc * workers as u64 >= total * (shard as u64 + 1) {
            shard += 1;
        }
        owner[node] = shard as u8;
        acc += degree[node] as u64;
    }
    owner
}

/// Arrival replay info carried on an arrival event entry.
struct ArrivalInfo {
    source: u32,
    /// The id `on_generated`/`on_packet_delivered` report (the packet's
    /// trace id as its representation stores it, or the birth sequence
    /// for self-deliveries).
    id: u64,
    self_deliver: bool,
}

/// One event of the window being ordered: a completion (from a shard
/// header) or a coordinator-drawn arrival.
struct Ev<P> {
    t: f64,
    /// 0 = completion, 1 = arrival: the engine's queue wins timestamp
    /// ties against the arrival stream.
    kind: u8,
    /// Global pop position of the parent event in the previous window.
    parent_pos: u64,
    slot: u8,
    /// Draw sequence for arrivals (completions: 0; their key is already
    /// unique).
    tie: u64,
    id: u64,
    /// Shard holding the `Item::Event` half (completions only).
    primary: Option<usize>,
    /// Packet fragment awaiting agenda placement: `(shard, node, pkt)`.
    fragment: Option<(usize, u32, P)>,
    /// Shard the fragment was handed to (for replay cursoring).
    fragment_shard: Option<usize>,
    arrival: Option<ArrivalInfo>,
}

/// The sharded executor: byte-identical reports to
/// [`Engine`](crate::engine::Engine), work spread across `workers`
/// threads in lookahead-1 windows. See the [module docs](self) for the
/// argument.
pub struct ParallelEngine<T: ShardableSpec> {
    spec: T,
    cfg: EngineCfg,
    workers: usize,
    collector: MetricsCollector,
    events_processed: u64,
    timers: PhaseTimers,
}

impl<T: ShardableSpec> ParallelEngine<T>
where
    T::Pkt: Send,
{
    /// Build the executor. The RNG splits and collector construction
    /// mirror [`Engine::new`](crate::engine::Engine::new) exactly, so a
    /// sharded run is a drop-in replacement for a single-threaded one.
    pub fn new(spec: T, cfg: EngineCfg, workers: usize) -> ParallelEngine<T> {
        assert!(
            matches!(cfg.arrivals, ArrivalModel::Poisson) && cfg.drain,
            "sharded execution requires Poisson arrivals and drain (validation enforces this)"
        );
        let sources = spec.num_sources() as f64;
        let expected = (cfg.lambda * sources * (cfg.horizon - cfg.warmup)).max(64.0);
        let collector = MetricsCollector::new(
            cfg.warmup,
            cfg.horizon,
            (expected / 32.0).ceil() as u64,
            cfg.seed,
        );
        ParallelEngine {
            spec,
            cfg,
            workers: workers.max(1),
            collector,
            events_processed: 0,
            timers: PhaseTimers::new(),
        }
    }

    /// Drive the simulation to completion under `obs`.
    pub fn drive<O: Observer>(&mut self, obs: &mut O) {
        let cfg = self.cfg;
        let workers = self
            .workers
            .min(self.spec.num_nodes())
            .clamp(1, MAX_WORKERS);
        let owner = std::sync::Arc::new(partition_nodes(&self.spec, workers));
        // Same split order as `Engine::new`; the route/contention
        // streams exist only to keep the root state identical (no
        // admitted configuration samples them shard-side).
        let mut root = SimRng::new(cfg.seed);
        let mut arrival_rng = root.split();
        let mut dest_rng = root.split();
        let _route_rng = root.split();
        let _contention_rng = root.split();
        let sources = self.spec.num_sources();
        let total_rate = cfg.lambda * sources as f64;
        let mut next_stream = (total_rate > 0.0).then(|| arrival_rng.exp(total_rate));

        let mut shards: Vec<Option<ShardEngine<T::Shard>>> = (0..workers)
            .map(|k| {
                Some(ShardEngine::new(
                    self.spec.shard(),
                    &cfg,
                    k as u64,
                    std::sync::Arc::clone(&owner),
                ))
            })
            .collect();

        let mut arrival_seq: u64 = 0;
        let mut t_last = f64::NEG_INFINITY;

        std::thread::scope(|scope| {
            let mut to_shard = Vec::with_capacity(workers);
            let mut from_shard = Vec::with_capacity(workers);
            for engine_slot in shards.iter_mut() {
                let mut engine = engine_slot.take().expect("fresh shard");
                let (to_tx, to_rx) = mpsc::channel::<ToShard<T::Pkt>>();
                let (from_tx, from_rx) = mpsc::channel::<WindowResult<T::Pkt>>();
                let (spec_tx, spec_rx) = mpsc::channel::<T::Shard>();
                scope.spawn(move || {
                    while let Ok(msg) = to_rx.recv() {
                        match msg {
                            ToShard::Window { agenda } => {
                                engine.run_window(agenda);
                                let result = WindowResult {
                                    records: std::mem::take(&mut engine.records),
                                    spans: std::mem::take(&mut engine.spans),
                                    headers: std::mem::take(&mut engine.headers),
                                    crossings: std::mem::take(&mut engine.crossings),
                                };
                                if from_tx.send(result).is_err() {
                                    return;
                                }
                            }
                            ToShard::Done => {
                                let _ = spec_tx.send(engine.spec);
                                return;
                            }
                        }
                    }
                });
                to_shard.push(to_tx);
                from_shard.push((from_rx, spec_rx));
            }

            // Global pop positions of the previous window's events —
            // the parents of everything in the current window.
            let mut pos: HashMap<u64, u64> = HashMap::new();
            let mut pending_headers: Vec<Header> = Vec::new();
            let mut pending_crossings: Vec<(usize, Crossing<T::Pkt>)> = Vec::new();

            loop {
                // Earliest actionable time across the arrival stream
                // and everything the shards announced.
                let mut next = next_stream;
                let fold = |next: &mut Option<f64>, t: f64| {
                    *next = Some(next.map_or(t, |n: f64| n.min(t)));
                };
                for h in &pending_headers {
                    fold(&mut next, h.t);
                }
                for (_, c) in &pending_crossings {
                    fold(&mut next, c.t);
                }
                let Some(start) = next else { break };
                let end = start.floor() + 1.0;

                // Assemble this window's event population: announced
                // completions first, then freshly drawn arrivals, in
                // exact single-threaded RNG order (next interarrival,
                // then the source, then the destination law).
                let mut evs: Vec<Ev<T::Pkt>> = Vec::new();
                let mut index: HashMap<u64, usize> = HashMap::new();
                let mut rest = Vec::new();
                for h in pending_headers.drain(..) {
                    if h.t < end {
                        index.insert(h.id, evs.len());
                        evs.push(Ev {
                            t: h.t,
                            kind: 0,
                            parent_pos: pos.get(&h.parent).copied().unwrap_or(u64::MAX),
                            slot: h.slot,
                            tie: 0,
                            primary: Some((h.id & ARRIVAL_TAG) as usize),
                            fragment: None,
                            fragment_shard: None,
                            arrival: None,
                            id: h.id,
                        });
                    } else {
                        rest.push(h);
                    }
                }
                pending_headers = rest;
                let mut rest = Vec::new();
                for (shard, c) in pending_crossings.drain(..) {
                    if c.t < end {
                        // A crossing always pairs with a header from
                        // the same window (both emitted at one service
                        // start).
                        let i = index[&c.id];
                        evs[i].fragment = Some((shard, c.node, c.pkt));
                    } else {
                        rest.push((shard, c));
                    }
                }
                pending_crossings = rest;
                while let Some(t) = next_stream.filter(|&t| t < end) {
                    let next_t = t + arrival_rng.exp(total_rate);
                    next_stream = (next_t < cfg.horizon).then_some(next_t);
                    let source = arrival_rng.below(sources) as u32;
                    let seq = arrival_seq;
                    arrival_seq += 1;
                    let id = (seq << SHARD_BITS) | ARRIVAL_TAG;
                    let (fragment, info) = match self.spec.generate(t, source, &mut dest_rng) {
                        Spawn::SelfDeliver => (
                            None,
                            ArrivalInfo {
                                source,
                                id: seq,
                                self_deliver: true,
                            },
                        ),
                        Spawn::Route(mut pkt) => {
                            pkt.set_trace_id(seq as u32);
                            let trace = pkt.trace_id() as u64;
                            (
                                Some((owner[source as usize] as usize, source, pkt)),
                                ArrivalInfo {
                                    source,
                                    id: trace,
                                    self_deliver: false,
                                },
                            )
                        }
                    };
                    evs.push(Ev {
                        t,
                        kind: 1,
                        parent_pos: 0,
                        slot: 0,
                        tie: seq,
                        id,
                        primary: None,
                        fragment,
                        fragment_shard: None,
                        arrival: Some(info),
                    });
                }

                // The single-threaded pop order: ascending time; at
                // bitwise-equal times the queue beats the arrival
                // stream, and queued completions follow their parents'
                // pop order and push slots.
                evs.sort_by(|a, b| {
                    a.t.total_cmp(&b.t)
                        .then(a.kind.cmp(&b.kind))
                        .then(a.parent_pos.cmp(&b.parent_pos))
                        .then(a.slot.cmp(&b.slot))
                        .then(a.tie.cmp(&b.tie))
                });
                pos.clear();
                for (i, ev) in evs.iter().enumerate() {
                    pos.insert(ev.id, i as u64);
                }

                // Slice the global sequence into per-shard agendas.
                let mut agendas: Vec<Vec<Item<T::Pkt>>> =
                    (0..workers).map(|_| Vec::new()).collect();
                for ev in &mut evs {
                    if let Some(shard) = ev.primary {
                        agendas[shard].push(Item::Event { id: ev.id });
                    }
                    if let Some((shard, node, pkt)) = ev.fragment.take() {
                        ev.fragment_shard = Some(shard);
                        agendas[shard].push(Item::Packet {
                            id: ev.id,
                            t: ev.t,
                            node,
                            pkt,
                        });
                    }
                }

                // Window barrier: hand out the agendas, wait for every
                // record stream.
                let tick = Tick::start();
                for (shard, agenda) in agendas.into_iter().enumerate() {
                    if to_shard[shard].send(ToShard::Window { agenda }).is_err() {
                        panic!("shard worker {shard} terminated early");
                    }
                }
                let mut results: Vec<WindowResult<T::Pkt>> = Vec::with_capacity(workers);
                for (shard, (from_rx, _)) in from_shard.iter().enumerate() {
                    let Ok(result) = from_rx.recv() else {
                        panic!("shard worker {shard} panicked");
                    };
                    results.push(result);
                }
                self.timers.record(Phase::ShardSync, tick);

                // Bank next window's population.
                for (shard, result) in results.iter_mut().enumerate() {
                    let _ = shard;
                    pending_headers.append(&mut result.headers);
                    for c in result.crossings.drain(..) {
                        pending_crossings.push((owner[c.node as usize] as usize, c));
                    }
                }

                // Replay the window in the global order the agendas
                // enforced: per event, the observer's event hook, the
                // arrival effects, then the primary (completion) span
                // and the packet-fragment span.
                let mut cursors: Vec<(usize, usize)> = vec![(0, 0); workers];
                for ev in &evs {
                    obs.on_event(ev.t, self.collector.current_in_system());
                    self.events_processed += 1;
                    if let Some(info) = &ev.arrival {
                        self.collector.on_generated(ev.t);
                        obs.on_generated(ev.t, info.id, info.source);
                        if info.self_deliver {
                            self.collector.on_delivered(ev.t, ev.t, 0);
                            obs.on_delivered(ev.t, ev.t);
                            obs.on_packet_delivered(ev.t, info.id, ev.t, 0, 0);
                        }
                    }
                    if let Some(shard) = ev.primary {
                        t_last = self
                            .replay_span(ev, &mut cursors[shard], &results[shard], obs)
                            .unwrap_or(t_last);
                    }
                    if let Some(shard) = ev.fragment_shard {
                        t_last = self
                            .replay_span(ev, &mut cursors[shard], &results[shard], obs)
                            .unwrap_or(t_last);
                    }
                }
            }

            // Shut down and absorb the shard tallies in shard order.
            for tx in &to_shard {
                let _ = tx.send(ToShard::Done);
            }
            for (shard, (_, spec_rx)) in from_shard.iter().enumerate() {
                let Ok(shard_spec) = spec_rx.recv() else {
                    panic!("shard worker {shard} panicked");
                };
                self.spec.absorb(&shard_spec);
            }
        });
        if t_last > f64::NEG_INFINITY {
            self.spec.finish(t_last);
        }
        self.timers.flush();
    }

    /// Replay one agenda item's records onto the primary spec, the
    /// collector and the observer — the exact call sequence the
    /// single-threaded engine makes at this event. Returns the time of
    /// the last routing decision (hop or drop), for the spec's finish
    /// hook.
    fn replay_span<O: Observer>(
        &mut self,
        ev: &Ev<T::Pkt>,
        cursor: &mut (usize, usize),
        result: &WindowResult<T::Pkt>,
        obs: &mut O,
    ) -> Option<f64> {
        let cfg = self.cfg;
        let t = ev.t;
        let (span_idx, rec_idx) = *cursor;
        let (span_id, count) = result.spans[span_idx];
        debug_assert_eq!(span_id, ev.id, "shard span out of agenda order");
        let mut t_last = None;
        for rec in &result.records[rec_idx..rec_idx + count as usize] {
            match rec {
                Rec::ServiceEnd { arc, depth } => {
                    self.spec.replay_service_end(t, *arc);
                    obs.on_service_end(t, *arc, *depth);
                }
                Rec::Hop {
                    id,
                    node,
                    arc,
                    depth,
                    escape,
                } => {
                    self.spec.replay_hop(t, *arc);
                    obs.on_hop(t, *id as u64, *node, *arc, *depth);
                    if *escape {
                        obs.on_escape_hop(t, *id as u64, *node);
                    }
                    t_last = Some(t);
                }
                Rec::Deliver { pkt, hops } => {
                    let born = pkt.born();
                    let in_window = born >= cfg.warmup && born < cfg.horizon;
                    self.spec.note_deliver(pkt, in_window);
                    self.collector.on_delivered(t, born, *hops);
                    obs.on_delivered(t, born);
                    obs.on_packet_delivered(
                        t,
                        pkt.trace_id() as u64,
                        born,
                        *hops,
                        pkt.deflections(),
                    );
                }
                Rec::Drop { pkt, node, code } => {
                    let born = pkt.born();
                    let in_window = born >= cfg.warmup && born < cfg.horizon;
                    self.spec.replay_drop(pkt, in_window, *code);
                    self.collector.on_dropped(t);
                    obs.on_drop(t, pkt.trace_id() as u64, *node);
                    t_last = Some(t);
                }
            }
        }
        *cursor = (span_idx + 1, rec_idx + count as usize);
        t_last
    }

    /// The primary spec, for report assembly after
    /// [`ParallelEngine::drive`].
    pub fn spec(&self) -> &T {
        &self.spec
    }

    /// The run parameters.
    pub fn cfg(&self) -> &EngineCfg {
        &self.cfg
    }

    /// The shared metrics collector.
    pub fn collector(&self) -> &MetricsCollector {
        &self.collector
    }

    /// Discrete events processed — identical to the single-threaded
    /// engine's count (one per arrival firing or service completion).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Decompose into the primary spec, run parameters, collector, and
    /// event count — for report assembly that needs the spec by value
    /// (e.g. to reclaim a shared topology).
    pub fn into_parts(self) -> (T, EngineCfg, MetricsCollector, u64) {
        (self.spec, self.cfg, self.collector, self.events_processed)
    }
}
