//! The unified scenario API: one typed spec drives every topology.
//!
//! A [`Scenario`] bundles **what** is simulated ([`Topology`]), **which
//! traffic** hits it ([`Workload`]), **how contention is resolved**
//! ([`Policy`]) and **how the run is executed** ([`RunControl`]). The four
//! engines — hypercube packet simulator, butterfly packet simulator,
//! equivalent queueing networks `Q`/`R`, and the §2.3 pipelined scheme —
//! sit behind one [`Simulator`] trait, so every workload is expressed the
//! same way and new harness layers (sweeps, scenario files, CI grids) are
//! written once.
//!
//! Guarantees:
//!
//! * **Fallible construction.** [`ScenarioBuilder::build`] returns a
//!   structured [`ConfigError`] for every malformed spec — nothing panics
//!   until a deliberately-legacy entry point is used.
//! * **Bit-identical dispatch.** [`Scenario::run`] drives the exact same
//!   engines with the exact same RNG streams as the legacy per-simulator
//!   entry points; `tests/scenario_api.rs` proves byte-equal reports
//!   across every scheme × arrival model × contention policy ×
//!   discipline.
//! * **Serde round-trip.** Scenarios (and reports) serialise to JSON via
//!   `serde_json`; a parsed scenario reproduces its source's reports
//!   bit-exactly.
//! * **Deterministic sweeps.** [`Sweep`] expands named parameter grids in
//!   row-major order and derives a per-point seed with
//!   [`hyperroute_desim::splitmix64`], so grid results are reproducible
//!   and independent of the worker-thread schedule.
//!
//! ```
//! use hyperroute_core::scenario::{Scenario, Topology};
//!
//! let scenario = Scenario::builder(Topology::Hypercube { dim: 4 })
//!     .lambda(1.2)
//!     .p(0.5)
//!     .horizon(600.0)
//!     .warmup(100.0)
//!     .seed(7)
//!     .build()
//!     .expect("valid scenario");
//! let report = scenario.run().expect("runs to completion");
//! assert_eq!(report.generated, report.delivered);
//! ```

use crate::butterfly_sim::ButterflySim;
use crate::config::{
    ArrivalModel, ContentionPolicy, DestinationSpec, FaultFallback, FaultSpec, Scheme,
};
use crate::engine::EngineCfg;
use crate::equivalent_network::{Discipline, EqNetSim};
use crate::graph_sim::{graph_ext, sparse_ext, GraphDestination, GraphSim, GraphSpec};
use crate::hypercube_sim::HypercubeSim;
use crate::metrics::{DelayStats, MetricsCollector};
use crate::observe::{NullObserver, Observer};
use crate::pipelined::simulate_pipelined_observed;
use crate::runner::parallel_map;
use crate::telemetry::TelemetryExt;
use hyperroute_desim::{splitmix64, SchedulerKind};
use hyperroute_sparse::{expander, hyperbolic, scale_free, small_world, MAX_SPARSE_NODES};
use hyperroute_topology::{
    debruijn::MAX_DEBRUIJN_DIM, fattree::MAX_LEVELS as MAX_FATTREE_LEVELS, ring::MAX_RING_NODES,
    torus::MAX_TORUS_NODES, Butterfly, DeBruijn, FatTree, Hypercube, LevelledNetwork, Ring,
    RoutingTopology, Torus,
};
use serde::{Deserialize, Serialize};

pub use crate::config::ConfigError;

/// Which system a [`Scenario`] simulates.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Topology {
    /// The `d`-dimensional hypercube under a routing scheme (paper §3).
    Hypercube {
        /// Hypercube dimension `d` (1..=26).
        dim: usize,
    },
    /// The `d`-dimensional butterfly (paper §4); paths are unique, so the
    /// scheme is always greedy and contention is FIFO.
    Butterfly {
        /// Butterfly dimension `d` (1..=24).
        dim: usize,
    },
    /// An abstract levelled queueing network (paper §3.1 / §4.3 / Fig. 2)
    /// under FIFO or PS service ([`Policy::discipline`]).
    EqNet {
        /// Which concrete network to build.
        net: EqNetSpec,
        /// Record every departure epoch (for `B(t)` dominance checks).
        record_departures: bool,
        /// Track per-server occupancy histograms up to this many customers
        /// (0 disables tracking).
        occupancy_cap: usize,
    },
    /// The §2.3 non-greedy pipelined Valiant–Brebner scheme on the
    /// hypercube. Runs for a round count instead of a time horizon.
    Pipelined {
        /// Hypercube dimension `d` (1..=16).
        dim: usize,
        /// Number of routing rounds (≥ 2).
        rounds: usize,
    },
    /// The `n`-node ring under greedy shortest-way-around routing
    /// (Papillon-style; destinations default to uniform over all nodes,
    /// so the workload's `p` is ignored — skew with
    /// [`DestinationSpec::RingPowerLaw`] or [`DestinationSpec::NodePmf`]).
    Ring {
        /// Number of nodes (3..=2^26).
        nodes: usize,
        /// Whether counter-clockwise arcs exist (greedy then takes the
        /// shorter way around; ties break clockwise).
        bidirectional: bool,
    },
    /// The `k`-ary `d`-cube (torus) under dimension-ordered greedy
    /// routing — a trait-impl-only topology on the blanket
    /// [`GraphSpec`].
    Torus {
        /// Ring size `k` of every dimension (>= 3).
        radix: usize,
        /// Number of dimensions `d` (>= 1; `k^d <= 2^26` nodes).
        dim: usize,
    },
    /// The binary de Bruijn graph `B(2, n)` under shift-register greedy
    /// routing — constant degree 2, diameter `n`; also trait-impl-only.
    DeBruijn {
        /// Shift-register width `n` (1..=26; `2^n` nodes).
        dim: usize,
    },
    /// The `L`-level binary fat tree under up/down routing — `2^L`
    /// leaves inject, packets climb to the least common ancestor level
    /// and descend; also trait-impl-only. Two parallel up arcs per
    /// switch give every ascent a same-cost alternate, so Multipath and
    /// Retry route around most single faults with zero stretch.
    FatTree {
        /// Number of switching levels `L` above the leaves (1..=20;
        /// `2^L` leaves).
        levels: usize,
    },
    /// A Kleinberg small-world lattice: a `dims`-dimensional circular
    /// grid of side `side` plus `links` long-range contacts per node
    /// drawn from the harmonic law `P(ℓ) ∝ ℓ^{-alpha}`. Greedy routes on
    /// the lattice's circular L1 metric — sparse CSR, seeded generator
    /// (E28's Θ(log²n) regime at `alpha = dims`).
    SmallWorld {
        /// Lattice side per dimension (≥ 3; `side^dims ≤ 2^26`).
        side: u32,
        /// Lattice dimensionality (1..=4).
        dims: u32,
        /// Long-range contacts per node (0..=16).
        links: u32,
        /// Harmonic-law exponent (finite, ≥ 0; `alpha = dims` is the
        /// navigable point).
        alpha: f64,
        /// Generator seed (independent of the run seed).
        seed: u64,
    },
    /// A hyperbolic random graph (Krioukov et al.): nodes in the native
    /// disk of radius `R = 2 ln n + radius_offset`, connected below
    /// hyperbolic distance `R`. Greedy routes on the exact hyperbolic
    /// metric and can stall — the `LOCAL_MINIMUM`/`DEAD_END` outcome
    /// taxonomy is always reported (E29).
    Hyperbolic {
        /// Number of nodes (2..=2^26).
        nodes: u32,
        /// Radial density exponent (> 0, finite; degree law exponent is
        /// `2·alpha + 1`).
        alpha: f64,
        /// Added to the canonical disk radius `2 ln n` (finite; negative
        /// densifies).
        radius_offset: f64,
        /// Generator seed (independent of the run seed).
        seed: u64,
    },
    /// An erased-configuration-model scale-free graph with power-law
    /// degree exponent `gamma`. No geometric embedding — greedy routes
    /// on the circular node-id metric, mostly to exercise the outcome
    /// taxonomy.
    ScaleFree {
        /// Number of nodes (4..=2^26).
        nodes: u32,
        /// Power-law exponent (> 1, finite).
        gamma: f64,
        /// Minimum degree of the law (1..=64, below `nodes`).
        min_degree: u32,
        /// Generator seed (independent of the run seed).
        seed: u64,
    },
    /// A seeded random `degree`-regular graph (an expander whp) via the
    /// erased configuration model; greedy routes on the circular node-id
    /// metric. Extends E27's fault-survivability comparison.
    Expander {
        /// Number of nodes (4..=2^26; `nodes · degree` even).
        nodes: u32,
        /// Uniform degree (3..=64, below `nodes`).
        degree: u32,
        /// Generator seed (independent of the run seed).
        seed: u64,
    },
}

impl Topology {
    /// Short name used in error messages and tables.
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Hypercube { .. } => "hypercube",
            Topology::Butterfly { .. } => "butterfly",
            Topology::EqNet { .. } => "eqnet",
            Topology::Pipelined { .. } => "pipelined",
            Topology::Ring { .. } => "ring",
            Topology::Torus { .. } => "torus",
            Topology::DeBruijn { .. } => "debruijn",
            Topology::FatTree { .. } => "fattree",
            Topology::SmallWorld { .. } => "smallworld",
            Topology::Hyperbolic { .. } => "hyperbolic",
            Topology::ScaleFree { .. } => "scalefree",
            Topology::Expander { .. } => "expander",
        }
    }
}

/// Concrete levelled network for [`Topology::EqNet`]. The workload's `λ`
/// and `p` parameterise the network's external rates and routing
/// probabilities.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum EqNetSpec {
    /// Network `Q`: equivalent to the `d`-cube under greedy routing
    /// (paper §3.1, Fig. 1b).
    HypercubeQ {
        /// Hypercube dimension `d`.
        dim: usize,
    },
    /// Network `R`: equivalent to the `d`-dimensional butterfly
    /// (paper §4.3, Fig. 3b).
    ButterflyR {
        /// Butterfly dimension `d`.
        dim: usize,
    },
    /// The three-server network `G` of Lemma 9 (paper Fig. 2a). Ignores
    /// the workload's `λ` and `p`: all parameters are explicit.
    Fig2 {
        /// External arrival rate at `S1`.
        rate1: f64,
        /// External arrival rate at `S2`.
        rate2: f64,
        /// External arrival rate at `S3`.
        rate3: f64,
        /// Forwarding probability `S1 → S3`.
        q1: f64,
        /// Forwarding probability `S2 → S3`.
        q2: f64,
    },
}

impl EqNetSpec {
    /// Materialise the levelled network for a workload's `(λ, p)`.
    pub fn build(&self, lambda: f64, p: f64) -> LevelledNetwork {
        match *self {
            EqNetSpec::HypercubeQ { dim } => {
                LevelledNetwork::equivalent_q(Hypercube::new(dim), lambda, p)
            }
            EqNetSpec::ButterflyR { dim } => {
                LevelledNetwork::equivalent_r(Butterfly::new(dim), lambda, p)
            }
            EqNetSpec::Fig2 {
                rate1,
                rate2,
                rate3,
                q1,
                q2,
            } => LevelledNetwork::fig2_network(rate1, rate2, rate3, q1, q2),
        }
    }
}

/// The traffic a [`Scenario`] offers: arrival process, intensity, and
/// destination distribution.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Per-node (hypercube/pipelined) or per-row (butterfly) Poisson
    /// generation rate `λ`; scales the external rates of an `EqNet`.
    pub lambda: f64,
    /// Bit-flip probability `p` of the Eq. (1) destination distribution.
    pub p: f64,
    /// Continuous (Poisson) or slotted-batch arrivals (§3.4).
    pub arrivals: ArrivalModel,
    /// Destination distribution: Eq. (1) bit-flips, an arbitrary
    /// translation-invariant mask pmf (§2.2; hypercube only), a
    /// weighted-node pmf, or a power-law ring demand (graph topologies).
    pub dest: DestinationSpec,
    /// Optional arc-failure mask (Angel et al.): dead arcs plus a
    /// dead-greedy-arc fallback. Supported on the graph-routed
    /// topologies (ring, torus, de Bruijn, greedy hypercube); `None`
    /// (the default, and what an absent JSON key parses to) is the
    /// fault-free network.
    pub faults: Option<FaultSpec>,
    /// Attach per-delivery stretch accounting (mean deflections,
    /// per-outcome hop stretch vs the initial greedy distance) to the
    /// graph report extension. `None`/absent (the default) keeps
    /// pre-existing reports byte-identical; only blanket-graph-spec
    /// topologies honour it.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stretch: Option<bool>,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            lambda: 1.0,
            p: 0.5,
            arrivals: ArrivalModel::Poisson,
            dest: DestinationSpec::BitFlip,
            faults: None,
            stretch: None,
        }
    }
}

/// How routing and contention decisions are made.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Policy {
    /// Routing scheme (hypercube only; the butterfly path is unique).
    pub scheme: Scheme,
    /// Which waiting packet an arc serves next (hypercube only).
    pub contention: ContentionPolicy,
    /// FIFO or PS service (equivalent networks only).
    pub discipline: Discipline,
}

/// Execution control: measurement window, determinism, backend.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunControl {
    /// Generation stops at this time (ignored by `Pipelined`, which runs
    /// for its round count).
    pub horizon: f64,
    /// Packets born before this time are not measured.
    pub warmup: f64,
    /// RNG seed; every run is a deterministic function of it.
    pub seed: u64,
    /// Future-event-list backend (bit-identical results either way).
    pub scheduler: SchedulerKind,
    /// After the horizon, keep serving until every in-flight packet is
    /// delivered. Disable for instability probes.
    pub drain: bool,
    /// Shard this one run across this many OS threads sharing a single
    /// simulated clock ([`crate::parallel::ParallelEngine`]). `None`
    /// (the default) and `Some(1)` run the classic single-threaded
    /// engine; any value yields byte-identical reports. Only
    /// engine-backed topologies under Poisson arrivals shard — see the
    /// [`crate::parallel`] module docs for the exact gate.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub workers: Option<std::num::NonZeroUsize>,
}

impl RunControl {
    /// The effective intra-run worker count (`1` when unset).
    pub fn intra_workers(&self) -> usize {
        self.workers.map_or(1, |w| w.get())
    }
}

impl Default for RunControl {
    fn default() -> Self {
        RunControl {
            horizon: 1_000.0,
            warmup: 200.0,
            seed: 0x5CE9A810,
            scheduler: SchedulerKind::default(),
            drain: true,
            workers: None,
        }
    }
}

/// One fully-specified simulation: topology + workload + policy + run
/// control. Construct through [`Scenario::builder`] (which validates) or
/// deserialise from a JSON scenario file with [`Scenario::from_json`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// What is simulated.
    pub topology: Topology,
    /// The offered traffic.
    pub workload: Workload,
    /// Routing / contention / service discipline choices.
    pub policy: Policy,
    /// Measurement window, seed, scheduler backend.
    pub run: RunControl,
}

impl Scenario {
    /// Start building a scenario for `topology` with default workload,
    /// policy and run control.
    pub fn builder(topology: Topology) -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Scenario {
                topology,
                workload: Workload::default(),
                policy: Policy::default(),
                run: RunControl::default(),
            },
        }
    }

    /// Validate every field combination, returning the first problem.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let w = &self.workload;
        let pol = &self.policy;
        let unsupported = |feature: &str| {
            Err(ConfigError::Unsupported {
                topology: self.topology.name().to_string(),
                feature: feature.to_string(),
            })
        };
        if self.run.intra_workers() > 1 {
            // Sharded execution keeps reports byte-identical by replaying
            // shard records in a deterministic merge order; combinations
            // whose tie-breaking or randomness is inherently sequential
            // are rejected rather than silently diverging (the gate is
            // documented in the `parallel` module).
            if matches!(
                self.topology,
                Topology::EqNet { .. } | Topology::Pipelined { .. }
            ) {
                return unsupported("sharded execution (run.workers > 1; no engine backend)");
            }
            if matches!(self.topology, Topology::Butterfly { .. }) && w.faults.is_some() {
                return unsupported(
                    "fault masks under sharded execution (ranked alternates re-enter \
                     foreign rows, breaking shard-local arc ownership)",
                );
            }
            if w.arrivals != ArrivalModel::Poisson {
                return unsupported(
                    "slotted arrivals under sharded execution (batch ties have no \
                     deterministic cross-shard order)",
                );
            }
            if pol.contention == ContentionPolicy::Random {
                return unsupported("Random contention under sharded execution");
            }
            if pol.scheme == Scheme::RandomOrder {
                return unsupported(
                    "the RandomOrder scheme under sharded execution (per-hop route \
                     randomness is drawn in pop order)",
                );
            }
            if !self.run.drain {
                return unsupported("drain = false under sharded execution");
            }
        }
        match &self.topology {
            Topology::Hypercube { dim } => {
                if pol.discipline != Discipline::Fifo {
                    return unsupported("processor-sharing service (use Topology::EqNet)");
                }
                if let Some(faults) = &w.faults {
                    // The faulty hypercube routes through the blanket
                    // graph spec, which follows the trait's canonical
                    // greedy arcs and Eq.-(1) destinations only.
                    if pol.scheme != Scheme::Greedy {
                        return unsupported("non-greedy schemes under fault masks");
                    }
                    if w.dest != DestinationSpec::BitFlip {
                        return unsupported("custom destination pmfs under fault masks");
                    }
                    if *dim >= 1 && *dim <= 26 {
                        faults.validate(dim << dim)?;
                    }
                }
                // The exact checks `HypercubeSimConfig::check` runs, via
                // the shared borrowed-field helper — no config assembly
                // (which would clone a possibly-2^d-entry destination
                // pmf), no possibility of drift.
                crate::config::check_sim_fields(
                    self.dim(),
                    26,
                    w.lambda,
                    w.p,
                    self.run.horizon,
                    self.run.warmup,
                    w.arrivals,
                    Some(&w.dest),
                )
            }
            Topology::Butterfly { dim } => {
                if pol.scheme != Scheme::Greedy {
                    return unsupported("non-greedy schemes (butterfly paths are unique)");
                }
                if pol.contention != ContentionPolicy::Fifo {
                    return unsupported("non-FIFO contention");
                }
                if pol.discipline != Discipline::Fifo {
                    return unsupported("processor-sharing service (use Topology::EqNet)");
                }
                if w.dest != DestinationSpec::BitFlip {
                    return unsupported("custom destination pmfs");
                }
                if let Some(faults) = &w.faults {
                    // Greedy butterfly paths are unique, so the Detour
                    // fallback has no same-kind arc to progress on and
                    // Drop discards every packet whose unique path is
                    // cut. The ranked-alternate fallbacks recover by
                    // back-routing through a fresh pass instead.
                    if matches!(faults.fallback, FaultFallback::Detour | FaultFallback::Drop) {
                        return unsupported(
                            "the Detour and Drop fault fallbacks (greedy paths are unique; \
                             use the Multipath or Retry fallback, which back-routes through \
                             an extra pass)",
                        );
                    }
                    if *dim >= 1 && *dim <= 24 {
                        faults.validate(dim << (dim + 1))?;
                    }
                }
                crate::config::check_sim_fields(
                    self.dim(),
                    24,
                    w.lambda,
                    w.p,
                    self.run.horizon,
                    self.run.warmup,
                    w.arrivals,
                    None,
                )
            }
            Topology::EqNet { net, .. } => {
                if pol.scheme != Scheme::Greedy {
                    return unsupported("routing schemes (routing is Markovian)");
                }
                if w.faults.is_some() {
                    return unsupported("fault masks (servers, not arcs)");
                }
                if pol.contention != ContentionPolicy::Fifo {
                    return unsupported("contention policies (per-server discipline instead)");
                }
                if w.arrivals != ArrivalModel::Poisson {
                    return unsupported("slotted arrivals");
                }
                if w.dest != DestinationSpec::BitFlip {
                    return unsupported("custom destination pmfs");
                }
                if let EqNetSpec::HypercubeQ { dim } | EqNetSpec::ButterflyR { dim } = net {
                    if *dim < 1 || *dim > 20 {
                        return Err(ConfigError::Dimension {
                            dim: *dim,
                            min: 1,
                            max: 20,
                        });
                    }
                }
                crate::config::check_workload_window(
                    w.lambda,
                    w.p,
                    self.run.horizon,
                    self.run.warmup,
                    w.arrivals,
                )
            }
            Topology::Pipelined { .. } => {
                if pol.scheme != Scheme::Greedy {
                    return unsupported("schemes (rounds are routed as greedy batches)");
                }
                if w.faults.is_some() {
                    return unsupported("fault masks");
                }
                if pol.contention != ContentionPolicy::Fifo {
                    return unsupported("non-FIFO contention");
                }
                if pol.discipline != Discipline::Fifo {
                    return unsupported("processor-sharing service");
                }
                if w.arrivals != ArrivalModel::Poisson {
                    return unsupported("slotted arrivals");
                }
                if w.dest != DestinationSpec::BitFlip {
                    return unsupported("custom destination pmfs");
                }
                let Topology::Pipelined { dim, rounds } = &self.topology else {
                    unreachable!("matched above");
                };
                crate::pipelined::check_params(*dim, w.lambda, w.p, *rounds)
            }
            Topology::Ring {
                nodes,
                bidirectional,
            } => {
                if pol.scheme != Scheme::Greedy {
                    return unsupported("non-greedy schemes (ring paths are deterministic)");
                }
                if pol.discipline != Discipline::Fifo {
                    return unsupported("processor-sharing service (use Topology::EqNet)");
                }
                if matches!(w.dest, DestinationSpec::MaskPmf(_)) {
                    return unsupported("mask pmfs (use NodePmf or RingPowerLaw)");
                }
                if *nodes < 3 || *nodes > MAX_RING_NODES {
                    return Err(ConfigError::RingSize {
                        nodes: *nodes,
                        min: 3,
                        max: MAX_RING_NODES,
                    });
                }
                w.dest.validate_nodes(*nodes)?;
                if let Some(f) = &w.faults {
                    f.validate(if *bidirectional { 2 * nodes } else { *nodes })?;
                }
                crate::config::check_workload_window(
                    w.lambda,
                    w.p,
                    self.run.horizon,
                    self.run.warmup,
                    w.arrivals,
                )
            }
            Topology::Torus { radix, dim } => {
                if pol.scheme != Scheme::Greedy {
                    return unsupported("non-greedy schemes (torus paths are deterministic)");
                }
                if pol.discipline != Discipline::Fifo {
                    return unsupported("processor-sharing service (use Topology::EqNet)");
                }
                if matches!(
                    w.dest,
                    DestinationSpec::MaskPmf(_) | DestinationSpec::RingPowerLaw { .. }
                ) {
                    return unsupported("this destination law (use BitFlip=uniform or NodePmf)");
                }
                let Some(nodes) = torus_nodes(*radix, *dim) else {
                    return Err(ConfigError::TorusShape {
                        radix: *radix,
                        dim: *dim,
                    });
                };
                w.dest.validate_nodes(nodes)?;
                if let Some(f) = &w.faults {
                    f.validate(nodes * 2 * dim)?;
                }
                crate::config::check_workload_window(
                    w.lambda,
                    w.p,
                    self.run.horizon,
                    self.run.warmup,
                    w.arrivals,
                )
            }
            Topology::DeBruijn { dim } => {
                if pol.scheme != Scheme::Greedy {
                    return unsupported("non-greedy schemes (shift paths are deterministic)");
                }
                if pol.discipline != Discipline::Fifo {
                    return unsupported("processor-sharing service (use Topology::EqNet)");
                }
                if matches!(
                    w.dest,
                    DestinationSpec::MaskPmf(_) | DestinationSpec::RingPowerLaw { .. }
                ) {
                    return unsupported("this destination law (use BitFlip=uniform or NodePmf)");
                }
                if *dim < 1 || *dim > MAX_DEBRUIJN_DIM {
                    return Err(ConfigError::Dimension {
                        dim: *dim,
                        min: 1,
                        max: MAX_DEBRUIJN_DIM,
                    });
                }
                w.dest.validate_nodes(1 << dim)?;
                if let Some(f) = &w.faults {
                    f.validate((1 << (dim + 1)) - 2)?;
                }
                crate::config::check_workload_window(
                    w.lambda,
                    w.p,
                    self.run.horizon,
                    self.run.warmup,
                    w.arrivals,
                )
            }
            Topology::FatTree { levels } => {
                if pol.scheme != Scheme::Greedy {
                    return unsupported("non-greedy schemes (up/down paths are deterministic)");
                }
                if pol.discipline != Discipline::Fifo {
                    return unsupported("processor-sharing service (use Topology::EqNet)");
                }
                if w.dest != DestinationSpec::BitFlip {
                    return unsupported("custom destination pmfs (leaves are drawn uniformly)");
                }
                if *levels < 1 || *levels > MAX_FATTREE_LEVELS {
                    return Err(ConfigError::Dimension {
                        dim: *levels,
                        min: 1,
                        max: MAX_FATTREE_LEVELS,
                    });
                }
                if let Some(f) = &w.faults {
                    // 2·2^L up arcs and 2·2^L down arcs per boundary,
                    // over L boundaries: 4L·2^L arcs in total.
                    f.validate((4 * levels) << levels)?;
                }
                crate::config::check_workload_window(
                    w.lambda,
                    w.p,
                    self.run.horizon,
                    self.run.warmup,
                    w.arrivals,
                )
            }
            Topology::SmallWorld {
                side,
                dims,
                links,
                alpha,
                ..
            } => {
                self.check_sparse_common()?;
                check_generator_param(*side as f64, "side", 3.0, f64::MAX, "at least 3")?;
                check_generator_param(*dims as f64, "dims", 1.0, 4.0, "in 1..=4")?;
                check_generator_param(*links as f64, "links", 0.0, 16.0, "at most 16")?;
                check_generator_param(*alpha, "alpha", 0.0, f64::MAX, "finite and non-negative")?;
                if (*side as u64)
                    .checked_pow(*dims)
                    .is_none_or(|n| n > MAX_SPARSE_NODES as u64)
                {
                    return Err(ConfigError::GeneratorParam {
                        param: "side^dims".to_string(),
                        value: (*side as f64).powi(*dims as i32),
                        requirement: format!("at most {MAX_SPARSE_NODES} nodes"),
                    });
                }
                Ok(())
            }
            Topology::Hyperbolic {
                nodes,
                alpha,
                radius_offset,
                ..
            } => {
                self.check_sparse_common()?;
                check_sparse_nodes(*nodes, 2)?;
                check_generator_param(*alpha, "alpha", f64::MIN_POSITIVE, f64::MAX, "positive")?;
                check_generator_param(
                    *radius_offset,
                    "radius_offset",
                    f64::MIN,
                    f64::MAX,
                    "finite",
                )?;
                Ok(())
            }
            Topology::ScaleFree {
                nodes,
                gamma,
                min_degree,
                ..
            } => {
                self.check_sparse_common()?;
                check_sparse_nodes(*nodes, 4)?;
                check_generator_param(*gamma, "gamma", 1.0 + f64::EPSILON, f64::MAX, "above 1")?;
                check_generator_param(
                    *min_degree as f64,
                    "min_degree",
                    1.0,
                    64.0f64.min(*nodes as f64 - 1.0),
                    "in 1..=64 and below the node count",
                )?;
                Ok(())
            }
            Topology::Expander { nodes, degree, .. } => {
                self.check_sparse_common()?;
                check_sparse_nodes(*nodes, 4)?;
                check_generator_param(
                    *degree as f64,
                    "degree",
                    3.0,
                    64.0f64.min(*nodes as f64 - 1.0),
                    "in 3..=64 and below the node count",
                )?;
                if (*nodes as u64 * *degree as u64) % 2 == 1 {
                    return Err(ConfigError::GeneratorParam {
                        param: "nodes * degree".to_string(),
                        value: *nodes as f64 * *degree as f64,
                        requirement: "an even stub total".to_string(),
                    });
                }
                Ok(())
            }
        }
    }

    /// The workload/policy checks every sparse generated topology
    /// shares: greedy routing on the embedding metric, FIFO service,
    /// uniform destinations, and any fault mode except `Explicit`
    /// (whose dense arc indices are generator-dependent).
    fn check_sparse_common(&self) -> Result<(), ConfigError> {
        let w = &self.workload;
        let unsupported = |feature: &str| {
            Err(ConfigError::Unsupported {
                topology: self.topology.name().to_string(),
                feature: feature.to_string(),
            })
        };
        if self.policy.scheme != Scheme::Greedy {
            return unsupported("non-greedy schemes (greedy is the embedding metric)");
        }
        if self.policy.discipline != Discipline::Fifo {
            return unsupported("processor-sharing service (use Topology::EqNet)");
        }
        if w.dest != DestinationSpec::BitFlip {
            return unsupported("custom destination pmfs (destinations are uniform)");
        }
        if let Some(f) = &w.faults {
            if matches!(f.mode, crate::config::FaultMode::Explicit { .. }) {
                return unsupported(
                    "explicit dead-arc lists (arc indices are generator-dependent)",
                );
            }
            f.validate(usize::MAX)?;
        }
        crate::config::check_workload_window(
            w.lambda,
            w.p,
            self.run.horizon,
            self.run.warmup,
            w.arrivals,
        )
    }

    /// Instantiate the engine behind this scenario.
    pub fn into_simulator(&self) -> Result<Box<dyn Simulator>, ConfigError> {
        self.validate()?;
        let w = &self.workload;
        Ok(match &self.topology {
            // A fault mask sends the hypercube through the blanket graph
            // spec (trait-canonical greedy arcs + the detour/drop hook);
            // fault-free runs keep the packed fast-path spec.
            Topology::Hypercube { dim } if w.faults.is_some() => Box::new(GraphSim::from_parts(
                Hypercube::new(*dim),
                GraphDestination::FlipMask { dim: *dim, p: w.p },
                self,
                graph_ext,
            )),
            Topology::Hypercube { .. } => Box::new(HypercubeSim::from_scenario(self)),
            // A faulty butterfly likewise routes through the blanket
            // graph spec: level-0 rows inject, Eq.-(1) row flips pick a
            // level-`d` output, and the ranked-alternate fallbacks
            // (validation admits only Multipath/Retry here) back-route
            // around dead arcs via an extra pass.
            Topology::Butterfly { dim } if w.faults.is_some() => Box::new(GraphSim::from_parts(
                Butterfly::new(*dim),
                GraphDestination::RowFlip { dim: *dim, p: w.p },
                self,
                graph_ext,
            )),
            Topology::Butterfly { .. } => Box::new(ButterflySim::from_scenario(self)),
            Topology::EqNet { net, .. } => {
                let network = net.build(w.lambda, w.p);
                Box::new(EqNetSim::from_scenario(&network, self))
            }
            Topology::Pipelined { .. } => Box::new(PipelinedRunner {
                scenario: self.clone(),
            }),
            Topology::Ring {
                nodes,
                bidirectional,
            } => {
                let ring = Ring::new(*nodes, *bidirectional);
                // The legacy combination (uniform destinations, no
                // faults) keeps its byte-compatible RingExt; any new
                // workload feature reports the generic graph extension.
                let plain = w.faults.is_none() && w.dest == DestinationSpec::BitFlip;
                let ext = if plain { ring_ext } else { graph_ext };
                Box::new(GraphSim::from_parts(
                    ring,
                    graph_destination(&w.dest, *nodes),
                    self,
                    ext,
                ))
            }
            Topology::Torus { radix, dim } => {
                let torus = Torus::new(*radix, *dim);
                let dest = graph_destination(&w.dest, torus.num_nodes());
                Box::new(GraphSim::from_parts(torus, dest, self, graph_ext))
            }
            Topology::DeBruijn { dim } => Box::new(GraphSim::from_parts(
                DeBruijn::new(*dim),
                graph_destination(&w.dest, 1 << dim),
                self,
                graph_ext,
            )),
            Topology::FatTree { levels } => Box::new(GraphSim::from_parts(
                FatTree::new(*levels),
                // Only the 2^L leaves send and receive; internal
                // switches are transit-only.
                GraphDestination::LeafUniform(1 << levels),
                self,
                graph_ext,
            )),
            // The sparse generated topologies all route through the
            // blanket graph spec with the outcome-taxonomy extension:
            // metric greedy can stall even fault-free, so SUCCESS /
            // LOCAL_MINIMUM / DEAD_END is always reported.
            Topology::SmallWorld {
                side,
                dims,
                links,
                alpha,
                seed,
            } => Box::new(GraphSim::from_parts(
                small_world(*side, *dims, *links, *alpha, *seed),
                GraphDestination::Uniform,
                self,
                sparse_ext,
            )),
            Topology::Hyperbolic {
                nodes,
                alpha,
                radius_offset,
                seed,
            } => Box::new(GraphSim::from_parts(
                hyperbolic(*nodes, *alpha, *radius_offset, *seed),
                GraphDestination::Uniform,
                self,
                sparse_ext,
            )),
            Topology::ScaleFree {
                nodes,
                gamma,
                min_degree,
                seed,
            } => Box::new(GraphSim::from_parts(
                scale_free(*nodes, *gamma, *min_degree, *seed),
                GraphDestination::Uniform,
                self,
                sparse_ext,
            )),
            Topology::Expander {
                nodes,
                degree,
                seed,
            } => Box::new(GraphSim::from_parts(
                expander(*nodes, *degree, *seed),
                GraphDestination::Uniform,
                self,
                sparse_ext,
            )),
        })
    }

    /// Run the scenario to completion.
    pub fn run(&self) -> Result<Report, ConfigError> {
        // Monomorphised unobserved path: the engines' event loops see the
        // concrete `NullObserver`, not a `dyn` no-op per event.
        Ok(self.into_simulator()?.run_unobserved())
    }

    /// Run the scenario under a streaming [`Observer`]. The observer
    /// never changes the simulation; reports are bit-identical to
    /// [`Scenario::run`].
    pub fn run_observed(&self, obs: &mut dyn Observer) -> Result<Report, ConfigError> {
        Ok(self.into_simulator()?.run_boxed(obs))
    }

    /// Serialise to pretty JSON (the scenario-file format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenarios always serialise")
    }

    /// Parse a scenario file and validate it.
    ///
    /// Parse failures carry the 1-based line and column of the offending
    /// byte, so file-driven harnesses (the `hyperroute-grid` corpus
    /// runner) can report `file:line:column` locations.
    pub fn from_json(text: &str) -> Result<Scenario, ScenarioFileError> {
        let scenario: Scenario =
            serde_json::from_str(text).map_err(|e| ScenarioFileError::parse(text, e))?;
        scenario.validate().map_err(ScenarioFileError::Invalid)?;
        Ok(scenario)
    }

    /// Content hash of this scenario's **canonical form** — the exact
    /// [`Scenario::to_json`] rendering — folded with [`ENGINE_FINGERPRINT`].
    ///
    /// Because the hash is computed over the canonical re-rendering (not
    /// whatever JSON text the scenario was parsed from), two scenario
    /// files that differ only in field order, whitespace, or explicitly-
    /// `null` optional fields hash identically, while **any** semantic
    /// field change (a different seed, λ, `run.workers`, …) changes the
    /// key. Folding in the engine fingerprint invalidates every key when
    /// an engine change moves report bytes — a stale content-addressed
    /// cache can never serve reports from an older engine.
    pub fn canonical_hash(&self) -> ScenarioHash {
        let mut h = Fnv128::new();
        h.write(self.to_json().as_bytes());
        h.write(&[0]);
        h.write(ENGINE_FINGERPRINT.as_bytes());
        ScenarioHash(h.finish())
    }

    fn dim(&self) -> usize {
        match &self.topology {
            Topology::Hypercube { dim }
            | Topology::Butterfly { dim }
            | Topology::Pipelined { dim, .. } => *dim,
            Topology::EqNet { net, .. } => match net {
                EqNetSpec::HypercubeQ { dim } | EqNetSpec::ButterflyR { dim } => *dim,
                EqNetSpec::Fig2 { .. } => 0,
            },
            Topology::Ring { .. }
            | Topology::Torus { .. }
            | Topology::DeBruijn { .. }
            | Topology::FatTree { .. }
            | Topology::SmallWorld { .. }
            | Topology::Hyperbolic { .. }
            | Topology::ScaleFree { .. }
            | Topology::Expander { .. } => 0,
        }
    }
}

/// Fingerprint of every engine behaviour that can move report bytes.
///
/// [`Scenario::canonical_hash`] folds this string into the key, so a
/// content-addressed report cache (the `hyperroute-grid` service) is
/// invalidated wholesale whenever simulation output changes. **Bump the
/// version segment in the same PR as any intentional output change**
/// (the scenario-corpus baselines moving is the tell).
pub const ENGINE_FINGERPRINT: &str =
    "hyperroute-engine/v6 calendar+heap arrival-stream peek-prefetch blanket-graph \
     sparse-greedy escape-salt intra-shard";

/// The 128-bit content hash of a scenario's canonical form, as produced
/// by [`Scenario::canonical_hash`]. Displays as 32 lowercase hex digits
/// (the on-disk cache file stem).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScenarioHash(pub u128);

impl std::fmt::Display for ScenarioHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// FNV-1a, 128-bit variant: tiny, dependency-free, and stable across
/// platforms and std releases (unlike `DefaultHasher`), which is what a
/// cache shared between machines and CI runs needs. Not cryptographic —
/// the cache is a determinism optimisation, not a security boundary.
struct Fnv128 {
    state: u128,
}

impl Fnv128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

    fn new() -> Fnv128 {
        Fnv128 {
            state: Fnv128::OFFSET,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(Fnv128::PRIME);
        }
    }

    fn finish(&self) -> u128 {
        self.state
    }
}

/// Reject a sparse-generator parameter outside `[min, max]` (or not
/// finite) with a structured [`ConfigError::GeneratorParam`].
fn check_generator_param(
    value: f64,
    param: &str,
    min: f64,
    max: f64,
    requirement: &str,
) -> Result<(), ConfigError> {
    if value.is_finite() && (min..=max).contains(&value) {
        Ok(())
    } else {
        Err(ConfigError::GeneratorParam {
            param: param.to_string(),
            value,
            requirement: requirement.to_string(),
        })
    }
}

/// Reject a sparse node count below `min` or above the CSR ceiling.
fn check_sparse_nodes(nodes: u32, min: u32) -> Result<(), ConfigError> {
    check_generator_param(
        nodes as f64,
        "nodes",
        min as f64,
        MAX_SPARSE_NODES as f64,
        "within the sparse node ceiling",
    )
}

/// Node count of a `k`-ary `d`-cube, or `None` when the shape is out of
/// range (`k < 3`, `d < 1`, or more than `2^26` nodes).
fn torus_nodes(radix: usize, dim: usize) -> Option<usize> {
    if radix < 3 || dim < 1 {
        return None;
    }
    let mut nodes = 1usize;
    for _ in 0..dim {
        nodes = nodes.checked_mul(radix).filter(|&n| n <= MAX_TORUS_NODES)?;
    }
    Some(nodes)
}

/// Lower a validated [`DestinationSpec`] into the graph engine's sampler
/// (`BitFlip` means uniform on node-addressed topologies; `MaskPmf` never
/// reaches this — validation rejects it).
fn graph_destination(dest: &DestinationSpec, nodes: usize) -> GraphDestination {
    match dest {
        DestinationSpec::BitFlip => GraphDestination::Uniform,
        DestinationSpec::MaskPmf(_) => unreachable!("mask pmfs are hypercube-only"),
        DestinationSpec::NodePmf(pmf) => GraphDestination::from_node_pmf(pmf),
        DestinationSpec::RingPowerLaw { alpha } => GraphDestination::ring_power_law(nodes, *alpha),
    }
}

/// The ring's byte-compatible report extension over the blanket graph
/// spec: identical numbers to the retired hand-written `RingSpec` (the
/// per-direction arrival sums fall out of the per-arc counters — even
/// dense indices are clockwise on bidirectional rings).
fn ring_ext(spec: &GraphSpec<Ring>, cfg: &EngineCfg, collector: &MetricsCollector) -> ReportExt {
    let ring = *spec.topology();
    let span = cfg.horizon - cfg.warmup;
    let arcs_per_direction = ring.num_nodes() as f64;
    let (mut cw, mut ccw) = (0u64, 0u64);
    for (arc, count) in spec.arc_arrivals().iter().enumerate() {
        if !ring.bidirectional() || arc & 1 == 0 {
            cw += count as u64;
        } else {
            ccw += count as u64;
        }
    }
    ReportExt::Ring(RingExt {
        rho: ring.load_factor(cfg.lambda),
        mean_hops: collector.mean_hops(),
        zero_hop_fraction: collector.zero_hop_fraction(),
        clockwise_arc_rate: cw as f64 / (span * arcs_per_direction),
        counter_clockwise_arc_rate: if ring.bidirectional() {
            ccw as f64 / (span * arcs_per_direction)
        } else {
            0.0
        },
    })
}

/// Why a scenario file was rejected: malformed JSON, or well-formed JSON
/// describing an invalid combination. Keeping the two sources distinct
/// (and the [`ConfigError`] structured) lets file-driven harnesses report
/// precisely.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioFileError {
    /// The text is not valid JSON for a `Scenario`.
    Parse {
        /// The underlying JSON error.
        error: serde_json::Error,
        /// 1-based line of the offending byte. Shape errors (valid JSON
        /// that is not a `Scenario`) have no position and report `1:1`.
        line: usize,
        /// 1-based column (in bytes) of the offending byte.
        column: usize,
    },
    /// The parsed scenario fails validation.
    Invalid(ConfigError),
}

impl ScenarioFileError {
    /// Wrap a JSON error, resolving its byte offset into the 1-based
    /// line/column of `text` it points at.
    pub fn parse(text: &str, error: serde_json::Error) -> ScenarioFileError {
        let (line, column) = line_column(text, error.offset);
        ScenarioFileError::Parse {
            error,
            line,
            column,
        }
    }
}

/// 1-based (line, byte-column) of byte `offset` in `text`; offsets past
/// the end resolve to one past the final byte.
fn line_column(text: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(text.len());
    let before = &text.as_bytes()[..offset];
    let line = 1 + before.iter().filter(|&&b| b == b'\n').count();
    let line_start = before
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |p| p + 1);
    (line, offset - line_start + 1)
}

impl std::fmt::Display for ScenarioFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioFileError::Parse {
                error,
                line,
                column,
            } => write!(
                f,
                "scenario file does not parse at line {line}, column {column}: {error}"
            ),
            ScenarioFileError::Invalid(e) => write!(f, "scenario file is invalid: {e}"),
        }
    }
}

impl std::error::Error for ScenarioFileError {}

/// Fluent fallible construction of a [`Scenario`].
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Set the per-node/per-row arrival rate `λ`.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.scenario.workload.lambda = lambda;
        self
    }

    /// Set the bit-flip probability `p`.
    pub fn p(mut self, p: f64) -> Self {
        self.scenario.workload.p = p;
        self
    }

    /// Set the arrival model.
    pub fn arrivals(mut self, arrivals: ArrivalModel) -> Self {
        self.scenario.workload.arrivals = arrivals;
        self
    }

    /// Set the destination distribution.
    pub fn dest(mut self, dest: DestinationSpec) -> Self {
        self.scenario.workload.dest = dest;
        self
    }

    /// Set (or clear) the arc-failure mask.
    pub fn faults(mut self, faults: Option<FaultSpec>) -> Self {
        self.scenario.workload.faults = faults;
        self
    }

    /// Enable per-delivery stretch accounting in the graph extension.
    pub fn stretch(mut self, stretch: bool) -> Self {
        self.scenario.workload.stretch = Some(stretch);
        self
    }

    /// Set the routing scheme.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.scenario.policy.scheme = scheme;
        self
    }

    /// Set the contention policy.
    pub fn contention(mut self, contention: ContentionPolicy) -> Self {
        self.scenario.policy.contention = contention;
        self
    }

    /// Set the service discipline (equivalent networks).
    pub fn discipline(mut self, discipline: Discipline) -> Self {
        self.scenario.policy.discipline = discipline;
        self
    }

    /// Set the generation horizon.
    pub fn horizon(mut self, horizon: f64) -> Self {
        self.scenario.run.horizon = horizon;
        self
    }

    /// Set the warm-up cutoff.
    pub fn warmup(mut self, warmup: f64) -> Self {
        self.scenario.run.warmup = warmup;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.run.seed = seed;
        self
    }

    /// Select the future-event-list backend.
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scenario.run.scheduler = scheduler;
        self
    }

    /// Enable or disable the post-horizon drain.
    pub fn drain(mut self, drain: bool) -> Self {
        self.scenario.run.drain = drain;
        self
    }

    /// Shard the run across `workers` threads (`1` restores the
    /// single-threaded engine; reports are byte-identical either way).
    pub fn workers(mut self, workers: usize) -> Self {
        self.scenario.run.workers = std::num::NonZeroUsize::new(workers);
        self
    }

    /// Validate and produce the scenario.
    pub fn build(self) -> Result<Scenario, ConfigError> {
        self.scenario.validate()?;
        Ok(self.scenario)
    }
}

// ---------------------------------------------------------------------
// The unified report.
// ---------------------------------------------------------------------

/// Topology-independent summary of one scenario run, with a typed
/// per-topology extension in [`Report::ext`].
///
/// `PartialEq` is hand-written and bit-exact on every float (NaN equals
/// NaN), so differential tests can assert `==` between scenario and
/// legacy runs — including pipelined reports, whose fields without a
/// meaningful value are NaN and would poison a derived IEEE comparison.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Report {
    /// Per-packet delay statistics over the measurement window.
    pub delay: DelayStats,
    /// Time-averaged packets in the system over the measurement window.
    pub mean_in_system: f64,
    /// Peak packets in the system.
    pub peak_in_system: f64,
    /// Delivered packets per unit time in the measurement window.
    pub throughput: f64,
    /// Relative Little's-law discrepancy (NaN where not meaningful).
    pub little_error: f64,
    /// Total packets generated.
    pub generated: u64,
    /// Total packets delivered.
    pub delivered: u64,
    /// Discrete events processed (0 for the round-driven pipelined
    /// scheme, which has no event queue).
    pub events: u64,
    /// Topology-specific measurements.
    pub ext: ReportExt,
    /// Opt-in telemetry histograms and per-arc load, attached **after**
    /// the run by `hyperroute-telemetry`'s probe; absent keys serialise
    /// to nothing, keeping unobserved baselines byte-identical.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub telemetry: Option<TelemetryExt>,
}

/// The per-topology extension of a [`Report`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ReportExt {
    /// Hypercube-only measurements.
    Hypercube(HypercubeExt),
    /// Butterfly-only measurements.
    Butterfly(ButterflyExt),
    /// Equivalent-network-only measurements.
    EqNet(EqNetExt),
    /// Pipelined-scheme-only measurements.
    Pipelined(PipelinedExt),
    /// Ring-only measurements.
    Ring(RingExt),
    /// Generic graph-topology measurements (torus, de Bruijn, and any
    /// ring/hypercube run with fault masks or skewed destinations).
    Graph(GraphExt),
}

/// Hypercube-specific fields of a [`Report`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HypercubeExt {
    /// Load factor ρ = λp.
    pub rho: f64,
    /// Mean hops per measured packet (≈ dp for greedy, Lemma 1).
    pub mean_hops: f64,
    /// Fraction of measured packets with destination = origin.
    pub zero_hop_fraction: f64,
    /// Measured per-arc arrival rate for each dimension (Prop. 5).
    pub per_dim_arc_rate: Vec<f64>,
    /// Time-averaged packets at an arc of each dimension (Prop. 13).
    pub per_dim_mean_queue: Vec<f64>,
}

/// Butterfly-specific fields of a [`Report`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ButterflyExt {
    /// Load factor `λ·max{p, 1-p}` (Eq. (17)).
    pub rho: f64,
    /// Mean vertical arcs per packet (≈ dp).
    pub mean_vertical_hops: f64,
    /// Per-arc arrival rate of straight arcs, per level (Prop. 15).
    pub straight_rate_per_level: Vec<f64>,
    /// Per-arc arrival rate of vertical arcs, per level (Prop. 15).
    pub vertical_rate_per_level: Vec<f64>,
}

/// Equivalent-network-specific fields of a [`Report`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EqNetExt {
    /// All departure epochs in time order (empty unless
    /// `record_departures`).
    pub departures: Vec<f64>,
    /// Per-server fraction of time at each occupancy below the cap
    /// (empty unless `occupancy_cap > 0`).
    pub occupancy_fractions: Vec<Vec<f64>>,
}

/// Pipelined-scheme-specific fields of a [`Report`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PipelinedExt {
    /// Mean round length (empirical `R·d`).
    pub mean_round_length: f64,
    /// Empirical round constant `R` (mean round length / d).
    pub round_constant: f64,
    /// Mean stored backlog at round starts.
    pub mean_backlog: f64,
    /// Backlog remaining after the last round.
    pub final_backlog: u64,
    /// Least-squares backlog growth per round (positive ⇒ unstable).
    pub backlog_slope_per_round: f64,
}

impl PipelinedExt {
    /// Heuristic instability verdict: backlog grows by a noticeable
    /// fraction of the per-round input.
    pub fn looks_unstable(&self, per_round_input: f64) -> bool {
        self.backlog_slope_per_round > 0.1 * per_round_input
    }
}

/// Ring-specific fields of a [`Report`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RingExt {
    /// Per-arc load factor `λ·E[hops per direction]` (the ring's analogue
    /// of `ρ = λp`; stability needs it below 1).
    pub rho: f64,
    /// Mean hops per measured packet (`(n-1)/2` clockwise-only, `≈ n/4`
    /// bidirectional, under uniform destinations).
    pub mean_hops: f64,
    /// Fraction of measured packets with destination = origin (`1/n`).
    pub zero_hop_fraction: f64,
    /// Measured per-arc arrival rate over the clockwise arcs.
    pub clockwise_arc_rate: f64,
    /// Measured per-arc arrival rate over the counter-clockwise arcs
    /// (0 on unidirectional rings).
    pub counter_clockwise_arc_rate: f64,
}

/// Graph-topology fields of a [`Report`] — what every blanket-spec run
/// measures, including the delivered/dropped split of fault-mask
/// workloads.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GraphExt {
    /// Number of nodes.
    pub nodes: u64,
    /// Number of directed arcs (dense index space).
    pub arcs: u64,
    /// Number of dead arcs in the fault mask (0 without one).
    pub dead_arcs: u64,
    /// Mean hops per measured delivered packet.
    pub mean_hops: f64,
    /// Fraction of measured deliveries with destination = origin.
    pub zero_hop_fraction: f64,
    /// Mean in-window packet-arrival rate over the **live** arcs.
    pub mean_arc_rate: f64,
    /// The busiest arc's in-window arrival rate.
    pub max_arc_rate: f64,
    /// Packets dropped, all time (`generated = delivered + dropped` after
    /// a drained run).
    pub dropped: u64,
    /// Dropped packets born inside the measurement window.
    pub dropped_in_window: u64,
    /// Measured deliveries / (measured deliveries + measured drops) — the
    /// fault-tolerance headline; NaN when nothing was measured.
    pub delivery_fraction: f64,
    /// Route-outcome taxonomy (`SUCCESS | LOCAL_MINIMUM | DEAD_END` plus
    /// escape-recovery counters). Always present on sparse generated
    /// topologies; on dense topologies only under the Escape fallback.
    /// Absent (`None`) keys serialise to nothing, keeping pre-existing
    /// baselines byte-identical.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub outcomes: Option<OutcomeExt>,
    /// Per-delivery stretch accounting; present iff
    /// [`Workload::stretch`] asked for it.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stretch: Option<StretchExt>,
}

/// How measured routes ended: the `SUCCESS | LOCAL_MINIMUM | DEAD_END`
/// taxonomy of greedy routing on a metric embedding, plus the
/// escape-recovery counters of the GOAFR-style fallback.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OutcomeExt {
    /// Measured packets delivered (`SUCCESS`).
    pub success: u64,
    /// Measured packets dropped at a metric local minimum — a live
    /// out-neighbour existed but none improved (includes escape-TTL
    /// exhaustion).
    pub local_minimum: u64,
    /// Measured packets dropped with **no** live out-arc at all.
    pub dead_end: u64,
    /// Measured deliveries that entered escape mode at least once and
    /// still made it.
    pub recovered: u64,
    /// Mean paid (non-improving) escape hops per recovered delivery
    /// (NaN when nothing recovered).
    pub mean_escape_hops: f64,
}

/// Per-delivery stretch accounting over the measurement window: hops
/// relative to the packet's initial greedy distance, split by whether
/// the route ever deflected (paid a non-improving hop).
///
/// On the dense topologies the initial distance **is** the shortest
/// hop count, so `mean_stretch` is path stretch in the usual sense. On
/// the sparse generators the denominator is the quantised *embedding*
/// distance (ring offset, scaled hyperbolic distance), which is not a
/// hop count — the values are deterministic and comparable across runs
/// of the same scenario, but for true hop stretch on sparse graphs use
/// the BFS-baselined measurements in experiment E29.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StretchExt {
    /// Mean `hops / initial_distance` over measured deliveries.
    pub mean_stretch: f64,
    /// Mean paid deflections per measured delivery.
    pub mean_deflections: f64,
    /// Fraction of measured deliveries with at least one deflection.
    pub deflected_fraction: f64,
    /// Mean stretch over never-deflected deliveries (NaN if none).
    pub clean_stretch: f64,
    /// Mean stretch over deflected deliveries (NaN if none).
    pub deflected_stretch: f64,
    /// Mean `hops - initial_distance` over measured deliveries.
    pub mean_excess_hops: f64,
}

/// Bit-exact float comparison that also equates any two non-finite
/// values (a JSON round-trip maps every NaN *and infinity* through
/// `null` to the canonical `f64::NAN`, so non-finite values are
/// indistinguishable after persisting a report).
pub(crate) fn f64_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() || (!a.is_finite() && !b.is_finite())
}

pub(crate) fn f64_slice_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(&x, &y)| f64_eq(x, y))
}

impl PartialEq for Report {
    fn eq(&self, other: &Self) -> bool {
        self.delay == other.delay
            && f64_eq(self.mean_in_system, other.mean_in_system)
            && f64_eq(self.peak_in_system, other.peak_in_system)
            && f64_eq(self.throughput, other.throughput)
            && f64_eq(self.little_error, other.little_error)
            && self.generated == other.generated
            && self.delivered == other.delivered
            && self.events == other.events
            && self.ext == other.ext
            && self.telemetry == other.telemetry
    }
}

impl PartialEq for ReportExt {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ReportExt::Hypercube(a), ReportExt::Hypercube(b)) => a == b,
            (ReportExt::Butterfly(a), ReportExt::Butterfly(b)) => a == b,
            (ReportExt::EqNet(a), ReportExt::EqNet(b)) => a == b,
            (ReportExt::Pipelined(a), ReportExt::Pipelined(b)) => a == b,
            (ReportExt::Ring(a), ReportExt::Ring(b)) => a == b,
            (ReportExt::Graph(a), ReportExt::Graph(b)) => a == b,
            _ => false,
        }
    }
}

impl PartialEq for GraphExt {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes
            && self.arcs == other.arcs
            && self.dead_arcs == other.dead_arcs
            && f64_eq(self.mean_hops, other.mean_hops)
            && f64_eq(self.zero_hop_fraction, other.zero_hop_fraction)
            && f64_eq(self.mean_arc_rate, other.mean_arc_rate)
            && f64_eq(self.max_arc_rate, other.max_arc_rate)
            && self.dropped == other.dropped
            && self.dropped_in_window == other.dropped_in_window
            && f64_eq(self.delivery_fraction, other.delivery_fraction)
            && self.outcomes == other.outcomes
            && self.stretch == other.stretch
    }
}

impl PartialEq for OutcomeExt {
    fn eq(&self, other: &Self) -> bool {
        self.success == other.success
            && self.local_minimum == other.local_minimum
            && self.dead_end == other.dead_end
            && self.recovered == other.recovered
            && f64_eq(self.mean_escape_hops, other.mean_escape_hops)
    }
}

impl PartialEq for StretchExt {
    fn eq(&self, other: &Self) -> bool {
        f64_eq(self.mean_stretch, other.mean_stretch)
            && f64_eq(self.mean_deflections, other.mean_deflections)
            && f64_eq(self.deflected_fraction, other.deflected_fraction)
            && f64_eq(self.clean_stretch, other.clean_stretch)
            && f64_eq(self.deflected_stretch, other.deflected_stretch)
            && f64_eq(self.mean_excess_hops, other.mean_excess_hops)
    }
}

impl PartialEq for RingExt {
    fn eq(&self, other: &Self) -> bool {
        f64_eq(self.rho, other.rho)
            && f64_eq(self.mean_hops, other.mean_hops)
            && f64_eq(self.zero_hop_fraction, other.zero_hop_fraction)
            && f64_eq(self.clockwise_arc_rate, other.clockwise_arc_rate)
            && f64_eq(
                self.counter_clockwise_arc_rate,
                other.counter_clockwise_arc_rate,
            )
    }
}

impl PartialEq for HypercubeExt {
    fn eq(&self, other: &Self) -> bool {
        f64_eq(self.rho, other.rho)
            && f64_eq(self.mean_hops, other.mean_hops)
            && f64_eq(self.zero_hop_fraction, other.zero_hop_fraction)
            && f64_slice_eq(&self.per_dim_arc_rate, &other.per_dim_arc_rate)
            && f64_slice_eq(&self.per_dim_mean_queue, &other.per_dim_mean_queue)
    }
}

impl PartialEq for ButterflyExt {
    fn eq(&self, other: &Self) -> bool {
        f64_eq(self.rho, other.rho)
            && f64_eq(self.mean_vertical_hops, other.mean_vertical_hops)
            && f64_slice_eq(
                &self.straight_rate_per_level,
                &other.straight_rate_per_level,
            )
            && f64_slice_eq(
                &self.vertical_rate_per_level,
                &other.vertical_rate_per_level,
            )
    }
}

impl PartialEq for EqNetExt {
    fn eq(&self, other: &Self) -> bool {
        f64_slice_eq(&self.departures, &other.departures)
            && self.occupancy_fractions.len() == other.occupancy_fractions.len()
            && self
                .occupancy_fractions
                .iter()
                .zip(&other.occupancy_fractions)
                .all(|(a, b)| f64_slice_eq(a, b))
    }
}

impl PartialEq for PipelinedExt {
    fn eq(&self, other: &Self) -> bool {
        f64_eq(self.mean_round_length, other.mean_round_length)
            && f64_eq(self.round_constant, other.round_constant)
            && f64_eq(self.mean_backlog, other.mean_backlog)
            && self.final_backlog == other.final_backlog
            && f64_eq(self.backlog_slope_per_round, other.backlog_slope_per_round)
    }
}

impl Report {
    /// The hypercube extension, if this report came from a hypercube run.
    pub fn hypercube(&self) -> Option<&HypercubeExt> {
        match &self.ext {
            ReportExt::Hypercube(ext) => Some(ext),
            _ => None,
        }
    }

    /// The butterfly extension, if any.
    pub fn butterfly(&self) -> Option<&ButterflyExt> {
        match &self.ext {
            ReportExt::Butterfly(ext) => Some(ext),
            _ => None,
        }
    }

    /// The equivalent-network extension, if any.
    pub fn eqnet(&self) -> Option<&EqNetExt> {
        match &self.ext {
            ReportExt::EqNet(ext) => Some(ext),
            _ => None,
        }
    }

    /// The pipelined extension, if any.
    pub fn pipelined(&self) -> Option<&PipelinedExt> {
        match &self.ext {
            ReportExt::Pipelined(ext) => Some(ext),
            _ => None,
        }
    }

    /// The ring extension, if any.
    pub fn ring(&self) -> Option<&RingExt> {
        match &self.ext {
            ReportExt::Ring(ext) => Some(ext),
            _ => None,
        }
    }

    /// The generic graph extension, if any.
    pub fn graph(&self) -> Option<&GraphExt> {
        match &self.ext {
            ReportExt::Graph(ext) => Some(ext),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Uniform engine dispatch.
// ---------------------------------------------------------------------

/// A fully-constructed simulation engine, ready to run once.
///
/// Implemented by all four engines; [`Scenario::into_simulator`] is the
/// only constructor the unified API needs. The `Box<Self>` receiver keeps
/// the trait object-safe while letting engines consume themselves (their
/// legacy `run` methods take `self` by value).
pub trait Simulator {
    /// Drive the simulation to completion under `obs` and summarise.
    fn run_boxed(self: Box<Self>, obs: &mut dyn Observer) -> Report;

    /// Drive the simulation to completion unobserved.
    ///
    /// Separate from [`Simulator::run_boxed`] so implementations
    /// monomorphise their event loop over the concrete [`NullObserver`]
    /// (which compiles away) instead of paying a per-event virtual call
    /// to a no-op — `Scenario::run` goes through this path.
    fn run_unobserved(self: Box<Self>) -> Report;
}

impl Simulator for HypercubeSim {
    fn run_boxed(self: Box<Self>, obs: &mut dyn Observer) -> Report {
        self.run_observed(&mut &mut *obs)
    }

    fn run_unobserved(self: Box<Self>) -> Report {
        self.run()
    }
}

impl Simulator for ButterflySim {
    fn run_boxed(self: Box<Self>, obs: &mut dyn Observer) -> Report {
        self.run_observed(&mut &mut *obs)
    }

    fn run_unobserved(self: Box<Self>) -> Report {
        self.run()
    }
}

impl<T: RoutingTopology + Send + Sync> Simulator for GraphSim<T> {
    fn run_boxed(self: Box<Self>, obs: &mut dyn Observer) -> Report {
        self.run_observed(&mut &mut *obs)
    }

    fn run_unobserved(self: Box<Self>) -> Report {
        self.run()
    }
}

impl Simulator for EqNetSim {
    fn run_boxed(self: Box<Self>, obs: &mut dyn Observer) -> Report {
        self.run_observed(&mut &mut *obs)
    }

    fn run_unobserved(self: Box<Self>) -> Report {
        self.run()
    }
}

/// Adapter running the round-driven pipelined scheme behind the
/// [`Simulator`] trait.
struct PipelinedRunner {
    scenario: Scenario,
}

impl Simulator for PipelinedRunner {
    fn run_boxed(self: Box<Self>, obs: &mut dyn Observer) -> Report {
        simulate_pipelined_observed(&self.scenario, &mut &mut *obs)
    }

    fn run_unobserved(self: Box<Self>) -> Report {
        simulate_pipelined_observed(&self.scenario, &mut NullObserver)
    }
}

// ---------------------------------------------------------------------
// Deterministic sweeps.
// ---------------------------------------------------------------------

/// A parameter a [`Sweep`] axis can vary. Numeric grids are `f64`;
/// integer-valued parameters round to the nearest integer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepParam {
    /// Vary [`Workload::lambda`].
    Lambda,
    /// Vary [`Workload::p`].
    P,
    /// Vary the topology dimension (hypercube/butterfly/pipelined/eqnet).
    Dim,
    /// Vary [`RunControl::horizon`] (warm-up stays fixed).
    Horizon,
    /// Vary the pipelined round count.
    Rounds,
    /// Vary the sparse generator's law exponent: the small-world
    /// harmonic `alpha`, the hyperbolic radial `alpha`, or the
    /// scale-free `gamma`.
    Alpha,
}

/// One named grid axis of a [`Sweep`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Axis {
    /// Which parameter this axis varies.
    pub param: SweepParam,
    /// The grid values, in sweep order.
    pub values: Vec<f64>,
}

impl Axis {
    /// Axis over explicit values.
    pub fn new(param: SweepParam, values: Vec<f64>) -> Axis {
        Axis { param, values }
    }
}

/// A declarative parameter sweep: a base [`Scenario`] plus named grid
/// axes, expanded in row-major order (the **last** axis varies fastest).
///
/// With [`Sweep::derive_seeds`] set (the default), grid point `i` runs
/// with seed `splitmix64(base_seed + (i+1)·φ64)` — deterministic,
/// collision-free across points (splitmix64 is a bijection), and
/// independent of the thread schedule. Disable it to run every point with
/// the base seed (common-random-numbers comparisons).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Sweep {
    /// The scenario every grid point starts from.
    pub base: Scenario,
    /// The grid axes (row-major expansion, last axis fastest).
    pub axes: Vec<Axis>,
    /// Derive a distinct per-point seed from the base seed and grid index
    /// (`true`), or reuse the base seed everywhere (`false`).
    pub derive_seeds: bool,
}

/// The odd constant `⌊2^64/φ⌋` used by splitmix-style sequence seeding.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl Sweep {
    /// Sweep over `base` with the given axes and derived per-point seeds.
    pub fn new(base: Scenario, axes: Vec<Axis>) -> Sweep {
        Sweep {
            base,
            axes,
            derive_seeds: true,
        }
    }

    /// Number of grid points (product of axis lengths).
    pub fn len(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Whether the grid is empty (any axis without values).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The seed grid point `index` runs with.
    pub fn seed_for(&self, index: usize) -> u64 {
        if self.derive_seeds {
            splitmix64(
                self.base
                    .run
                    .seed
                    .wrapping_add((index as u64 + 1).wrapping_mul(GOLDEN_GAMMA)),
            )
        } else {
            self.base.run.seed
        }
    }

    /// Expand the grid into validated scenarios, in row-major order.
    pub fn scenarios(&self) -> Result<Vec<Scenario>, ConfigError> {
        self.slice_scenarios(0, self.len())
    }

    /// The validated scenario at grid point `index` (row-major), computed
    /// directly from the index without expanding the rest of the grid —
    /// the random-access hook distributed executors use to materialise one
    /// point of a sliced campaign.
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.len()`.
    pub fn scenario_at(&self, index: usize) -> Result<Scenario, ConfigError> {
        assert!(
            index < self.len(),
            "grid index {index} out of range (grid has {} points)",
            self.len()
        );
        let mut s = self.base.clone();
        // Row-major decode: last axis varies fastest.
        let mut rest = index;
        let mut value_idx = vec![0usize; self.axes.len()];
        for pos in (0..self.axes.len()).rev() {
            let n = self.axes[pos].values.len();
            value_idx[pos] = rest % n;
            rest /= n;
        }
        for (axis, &vi) in self.axes.iter().zip(&value_idx) {
            apply_param(&mut s, axis.param, axis.values[vi])?;
        }
        s.run.seed = self.seed_for(index);
        s.validate()?;
        Ok(s)
    }

    /// Expand the contiguous sub-grid `start..start + len` (row-major
    /// order) into validated scenarios — the slice-extraction hook behind
    /// `hyperroute-grid`'s `GridSlice` jobs. Equivalent to
    /// `self.scenarios()?[start..start + len]` without expanding points
    /// outside the slice.
    ///
    /// # Panics
    ///
    /// Panics when `start + len` overflows the grid.
    pub fn slice_scenarios(&self, start: usize, len: usize) -> Result<Vec<Scenario>, ConfigError> {
        assert!(
            start.checked_add(len).is_some_and(|end| end <= self.len()),
            "slice {start}..{} out of range (grid has {} points)",
            start + len,
            self.len()
        );
        (start..start + len).map(|i| self.scenario_at(i)).collect()
    }

    /// Run every grid point (fanning out over `threads` workers; 0 means
    /// hardware parallelism) and return reports in grid order.
    pub fn run(&self, threads: usize) -> Result<Vec<Report>, ConfigError> {
        let scenarios = self.scenarios()?;
        // Validation happened above, so per-point failures are impossible;
        // unwrap inside the workers keeps the output shape simple.
        Ok(parallel_map(scenarios, threads, |s| {
            s.run().expect("pre-validated scenario")
        }))
    }
}

fn apply_param(s: &mut Scenario, param: SweepParam, value: f64) -> Result<(), ConfigError> {
    let as_usize = |v: f64| v.round().max(0.0) as usize;
    match param {
        SweepParam::Lambda => s.workload.lambda = value,
        SweepParam::P => s.workload.p = value,
        SweepParam::Horizon => s.run.horizon = value,
        SweepParam::Dim => match &mut s.topology {
            Topology::Hypercube { dim }
            | Topology::Butterfly { dim }
            | Topology::Pipelined { dim, .. }
            // Torus: a Dim axis sweeps d at fixed radix; de Bruijn: the
            // shift-register width (both scale the node count).
            | Topology::Torus { dim, .. }
            | Topology::DeBruijn { dim } => *dim = as_usize(value),
            // The ring's size parameter: a Dim axis sweeps the node count.
            Topology::Ring { nodes, .. } => *nodes = as_usize(value),
            // The fat tree's level count: a Dim axis sweeps the tree
            // height (and with it the 2^L leaf count).
            Topology::FatTree { levels } => *levels = as_usize(value),
            // Sparse generators: a Dim axis sweeps the size knob (the
            // lattice side, or the node count) — the E28/E29 n-scaling
            // axis.
            Topology::SmallWorld { side, .. } => *side = as_usize(value) as u32,
            Topology::Hyperbolic { nodes, .. }
            | Topology::ScaleFree { nodes, .. }
            | Topology::Expander { nodes, .. } => *nodes = as_usize(value) as u32,
            Topology::EqNet { net, .. } => match net {
                EqNetSpec::HypercubeQ { dim } | EqNetSpec::ButterflyR { dim } => {
                    *dim = as_usize(value)
                }
                EqNetSpec::Fig2 { .. } => {
                    return Err(ConfigError::Unsupported {
                        topology: "eqnet".to_string(),
                        feature: "sweeping Dim on the Fig. 2 network".to_string(),
                    })
                }
            },
        },
        SweepParam::Rounds => match &mut s.topology {
            Topology::Pipelined { rounds, .. } => *rounds = as_usize(value),
            _ => {
                return Err(ConfigError::Unsupported {
                    topology: s.topology.name().to_string(),
                    feature: "sweeping Rounds (pipelined only)".to_string(),
                })
            }
        },
        SweepParam::Alpha => match &mut s.topology {
            Topology::SmallWorld { alpha, .. } | Topology::Hyperbolic { alpha, .. } => {
                *alpha = value
            }
            Topology::ScaleFree { gamma, .. } => *gamma = value,
            _ => {
                return Err(ConfigError::Unsupported {
                    topology: s.topology.name().to_string(),
                    feature: "sweeping Alpha (sparse generated topologies only)".to_string(),
                })
            }
        },
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hypercube_scenario() -> Scenario {
        Scenario::builder(Topology::Hypercube { dim: 4 })
            .lambda(1.2)
            .p(0.5)
            .horizon(400.0)
            .warmup(80.0)
            .seed(12)
            .build()
            .unwrap()
    }

    #[test]
    fn canonical_hash_ignores_representation_but_not_semantics() {
        let s = hypercube_scenario();
        let hash = s.canonical_hash();
        // The hash survives a JSON round trip: what gets parsed back is
        // semantically the same scenario, whatever its on-disk text was.
        assert_eq!(
            Scenario::from_json(&s.to_json()).unwrap().canonical_hash(),
            hash
        );
        // A semantic change — here the seed — moves the key.
        let mut reseeded = s.clone();
        reseeded.run.seed += 1;
        assert_ne!(reseeded.canonical_hash(), hash);
        // So does sharded execution: workers is a run-control field the
        // engine reads, so it belongs in the key even though reports are
        // proven byte-identical across worker counts.
        let mut sharded = s.clone();
        sharded.run.workers = std::num::NonZeroUsize::new(2);
        assert_ne!(sharded.canonical_hash(), hash);
    }

    #[test]
    fn scenario_hash_displays_as_32_hex_digits() {
        let rendered = hypercube_scenario().canonical_hash().to_string();
        assert_eq!(rendered.len(), 32);
        assert!(rendered.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(ScenarioHash(0).to_string(), "0".repeat(32));
    }

    #[test]
    fn builder_validates() {
        let err = Scenario::builder(Topology::Hypercube { dim: 0 })
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Dimension { dim: 0, .. }));
        let err = Scenario::builder(Topology::Hypercube { dim: 4 })
            .lambda(-1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Lambda(_)));
        let err = Scenario::builder(Topology::Hypercube { dim: 4 })
            .horizon(10.0)
            .warmup(20.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Window { .. }));
    }

    #[test]
    fn butterfly_rejects_hypercube_only_settings() {
        let err = Scenario::builder(Topology::Butterfly { dim: 4 })
            .scheme(Scheme::TwoPhaseValiant)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Unsupported { .. }));
        let err = Scenario::builder(Topology::Butterfly { dim: 4 })
            .contention(ContentionPolicy::Lifo)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Unsupported { .. }));
    }

    #[test]
    fn butterfly_fault_rejection_names_the_multipath_alternative() {
        use crate::config::{FaultMode, FaultSpec};
        let spec = |fallback| {
            Some(FaultSpec {
                mode: FaultMode::Seeded {
                    fraction: 0.1,
                    seed: 7,
                },
                fallback,
                dynamics: None,
            })
        };
        // Detour and Drop stay rejected, and the error text points at
        // the fallbacks that do work on unique-path topologies.
        for fallback in [FaultFallback::Detour, FaultFallback::Drop] {
            let err = Scenario::builder(Topology::Butterfly { dim: 3 })
                .faults(spec(fallback))
                .build()
                .unwrap_err();
            let text = err.to_string();
            assert!(
                text.contains("Multipath or Retry"),
                "error must name the working fallbacks: {text}"
            );
        }
        // The ranked-alternate fallbacks are accepted.
        for fallback in [FaultFallback::Multipath, FaultFallback::Retry { budget: 4 }] {
            Scenario::builder(Topology::Butterfly { dim: 3 })
                .faults(spec(fallback))
                .build()
                .expect("multipath-capable fallbacks pass validation");
        }
    }

    #[test]
    fn fattree_validates_and_sweeps_its_level_count() {
        let err = Scenario::builder(Topology::FatTree { levels: 0 })
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Dimension { dim: 0, .. }));
        let base = Scenario::builder(Topology::FatTree { levels: 2 })
            .lambda(0.2)
            .horizon(100.0)
            .warmup(10.0)
            .build()
            .unwrap();
        let sweep = Sweep::new(base, vec![Axis::new(SweepParam::Dim, vec![2.0, 3.0, 4.0])]);
        let levels: Vec<usize> = sweep
            .scenarios()
            .unwrap()
            .iter()
            .map(|s| match s.topology {
                Topology::FatTree { levels } => levels,
                _ => unreachable!("sweeping Dim keeps the topology"),
            })
            .collect();
        assert_eq!(levels, vec![2, 3, 4]);
    }

    #[test]
    fn eqnet_rejects_slotted_arrivals() {
        let err = Scenario::builder(Topology::EqNet {
            net: EqNetSpec::HypercubeQ { dim: 3 },
            record_departures: false,
            occupancy_cap: 0,
        })
        .arrivals(ArrivalModel::Slotted { slots_per_unit: 2 })
        .build()
        .unwrap_err();
        assert!(matches!(err, ConfigError::Unsupported { .. }));
    }

    #[test]
    fn scenario_runs_all_topologies() {
        let hc = hypercube_scenario().run().unwrap();
        assert!(hc.generated > 0);
        assert!(hc.hypercube().is_some());

        let bf = Scenario::builder(Topology::Butterfly { dim: 3 })
            .lambda(1.0)
            .horizon(300.0)
            .warmup(50.0)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(bf.butterfly().is_some());
        assert_eq!(bf.generated, bf.delivered);

        let eq = Scenario::builder(Topology::EqNet {
            net: EqNetSpec::HypercubeQ { dim: 3 },
            record_departures: false,
            occupancy_cap: 0,
        })
        .discipline(Discipline::Ps)
        .horizon(300.0)
        .warmup(50.0)
        .build()
        .unwrap()
        .run()
        .unwrap();
        assert!(eq.eqnet().is_some());
        assert!(eq.generated > 0);

        let pipe = Scenario::builder(Topology::Pipelined { dim: 3, rounds: 50 })
            .lambda(0.05)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(pipe.pipelined().is_some());
        assert!(pipe.delivered > 0);

        let ft = Scenario::builder(Topology::FatTree { levels: 3 })
            .lambda(0.3)
            .horizon(300.0)
            .warmup(50.0)
            .build()
            .unwrap()
            .run()
            .unwrap();
        let ft_ext = ft.graph().expect("fat tree reports GraphExt");
        assert_eq!(ft.generated, ft.delivered + ft_ext.dropped);
        assert!(ft.delivered > 0);
    }

    #[test]
    fn faulty_butterfly_routes_through_the_graph_engine() {
        use crate::config::{FaultMode, FaultSpec};
        let report = Scenario::builder(Topology::Butterfly { dim: 3 })
            .lambda(0.4)
            .horizon(300.0)
            .warmup(50.0)
            .faults(Some(FaultSpec {
                mode: FaultMode::Seeded {
                    fraction: 0.15,
                    seed: 9,
                },
                fallback: FaultFallback::Multipath,
                dynamics: None,
            }))
            .build()
            .unwrap()
            .run()
            .unwrap();
        let ext = report.graph().expect("faulty butterfly reports GraphExt");
        assert!(ext.dead_arcs > 0, "the seeded mask must kill arcs");
        assert_eq!(report.generated, report.delivered + ext.dropped);
        assert!(
            report.delivered > 0,
            "multipath back-routing keeps the butterfly delivering"
        );
    }

    #[test]
    fn pipelined_reports_with_nan_fields_compare_equal() {
        // Pipelined reports set fields without a meaningful value to NaN
        // (peak_in_system, throughput, little_error, delay quantiles);
        // the hand-written PartialEq must still see identical runs as
        // equal, including after a JSON round-trip (NaN → null → NaN).
        let scenario = Scenario::builder(Topology::Pipelined { dim: 3, rounds: 40 })
            .lambda(0.05)
            .build()
            .unwrap();
        let a = scenario.run().unwrap();
        let b = scenario.run().unwrap();
        assert!(a.peak_in_system.is_nan(), "fixture lost its NaN fields");
        assert_eq!(a, b);
        let text = serde_json::to_string(&a).unwrap();
        let back: Report = serde_json::from_str(&text).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn json_round_trip_preserves_scenario() {
        let scenario = hypercube_scenario();
        let text = scenario.to_json();
        let back = Scenario::from_json(&text).unwrap();
        assert_eq!(scenario, back);
    }

    #[test]
    fn from_json_rejects_invalid_scenarios() {
        let mut scenario = hypercube_scenario();
        scenario.workload.lambda = f64::NAN; // NaN serialises as null → NaN
        let text = scenario.to_json();
        assert!(Scenario::from_json(&text).is_err());
        assert!(Scenario::from_json("{").is_err());
    }

    #[test]
    fn sweep_row_major_order_and_seeds() {
        let sweep = Sweep::new(
            hypercube_scenario(),
            vec![
                Axis::new(SweepParam::Lambda, vec![0.5, 1.0]),
                Axis::new(SweepParam::P, vec![0.25, 0.5, 0.75]),
            ],
        );
        assert_eq!(sweep.len(), 6);
        let points = sweep.scenarios().unwrap();
        let got: Vec<(f64, f64)> = points
            .iter()
            .map(|s| (s.workload.lambda, s.workload.p))
            .collect();
        assert_eq!(
            got,
            vec![
                (0.5, 0.25),
                (0.5, 0.5),
                (0.5, 0.75),
                (1.0, 0.25),
                (1.0, 0.5),
                (1.0, 0.75),
            ]
        );
        // Seeds are pairwise distinct and reproducible.
        let seeds: Vec<u64> = (0..6).map(|i| sweep.seed_for(i)).collect();
        let set: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(set.len(), 6);
        assert_eq!(seeds, (0..6).map(|i| sweep.seed_for(i)).collect::<Vec<_>>());
    }

    #[test]
    fn scenario_at_matches_full_expansion() {
        let sweep = Sweep::new(
            hypercube_scenario(),
            vec![
                Axis::new(SweepParam::Lambda, vec![0.5, 1.0]),
                Axis::new(SweepParam::P, vec![0.25, 0.5, 0.75]),
                Axis::new(SweepParam::Dim, vec![3.0, 4.0]),
            ],
        );
        let all = sweep.scenarios().unwrap();
        for (i, expected) in all.iter().enumerate() {
            assert_eq!(&sweep.scenario_at(i).unwrap(), expected, "point {i}");
        }
    }

    #[test]
    fn slice_scenarios_extract_contiguous_subgrid() {
        let sweep = Sweep::new(
            hypercube_scenario(),
            vec![
                Axis::new(SweepParam::Lambda, vec![0.5, 1.0]),
                Axis::new(SweepParam::P, vec![0.25, 0.5, 0.75]),
            ],
        );
        let all = sweep.scenarios().unwrap();
        let slice = sweep.slice_scenarios(2, 3).unwrap();
        assert_eq!(slice, all[2..5]);
        assert!(sweep.slice_scenarios(6, 0).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_scenarios_rejects_overflow() {
        let sweep = Sweep::new(
            hypercube_scenario(),
            vec![Axis::new(SweepParam::Lambda, vec![0.5, 1.0])],
        );
        let _ = sweep.slice_scenarios(1, 2);
    }

    #[test]
    fn from_json_parse_errors_carry_line_and_column() {
        let text = "{\n  \"topology\": {\n    oops\n  }\n}";
        let err = Scenario::from_json(text).unwrap_err();
        let ScenarioFileError::Parse { line, column, .. } = err else {
            panic!("expected a parse error, got {err:?}");
        };
        assert_eq!((line, column), (3, 5), "{err}");
        // Single-line input: the column alone locates the byte.
        let err = Scenario::from_json("{\"topology\": !}").unwrap_err();
        let ScenarioFileError::Parse { line, column, .. } = err else {
            panic!("expected a parse error");
        };
        assert_eq!((line, column), (1, 14));
    }

    #[test]
    fn sweep_results_independent_of_thread_count() {
        let mut base = hypercube_scenario();
        base.run.horizon = 200.0;
        base.run.warmup = 40.0;
        let sweep = Sweep::new(
            base,
            vec![Axis::new(SweepParam::Lambda, vec![0.6, 1.0, 1.4])],
        );
        let serial = sweep.run(1).unwrap();
        let parallel = sweep.run(0).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 3);
    }

    #[test]
    fn sweep_without_derived_seeds_reuses_base_seed() {
        let mut sweep = Sweep::new(
            hypercube_scenario(),
            vec![Axis::new(SweepParam::Lambda, vec![0.5, 1.0])],
        );
        sweep.derive_seeds = false;
        let points = sweep.scenarios().unwrap();
        assert!(points.iter().all(|s| s.run.seed == 12));
    }

    #[test]
    fn sweep_rejects_invalid_grid_points() {
        let sweep = Sweep::new(
            hypercube_scenario(),
            vec![Axis::new(SweepParam::P, vec![0.5, 1.5])],
        );
        assert!(matches!(
            sweep.scenarios(),
            Err(ConfigError::FlipProbability(_))
        ));
    }

    #[test]
    fn dim_sweep_touches_topology() {
        let sweep = Sweep::new(
            hypercube_scenario(),
            vec![Axis::new(SweepParam::Dim, vec![3.0, 5.0])],
        );
        let points = sweep.scenarios().unwrap();
        assert_eq!(points[0].topology, Topology::Hypercube { dim: 3 });
        assert_eq!(points[1].topology, Topology::Hypercube { dim: 5 });
    }

    fn smallworld_scenario() -> Scenario {
        Scenario::builder(Topology::SmallWorld {
            side: 32,
            dims: 2,
            links: 2,
            alpha: 2.0,
            seed: 11,
        })
        .lambda(0.05)
        .horizon(400.0)
        .warmup(80.0)
        .seed(5)
        .build()
        .unwrap()
    }

    #[test]
    fn sparse_generator_bounds_are_validated() {
        let bad = |t: Topology| {
            let err = Scenario::builder(t).build().unwrap_err();
            assert!(
                matches!(err, ConfigError::GeneratorParam { .. }),
                "wanted GeneratorParam, got {err:?}"
            );
        };
        bad(Topology::SmallWorld {
            side: 2,
            dims: 2,
            links: 1,
            alpha: 2.0,
            seed: 0,
        });
        bad(Topology::SmallWorld {
            side: 9000,
            dims: 4,
            links: 1,
            alpha: 2.0,
            seed: 0,
        });
        bad(Topology::Hyperbolic {
            nodes: 128,
            alpha: 0.0,
            radius_offset: 0.0,
            seed: 0,
        });
        bad(Topology::Hyperbolic {
            nodes: 128,
            alpha: 0.8,
            radius_offset: f64::NAN,
            seed: 0,
        });
        bad(Topology::ScaleFree {
            nodes: 256,
            gamma: 1.0,
            min_degree: 2,
            seed: 0,
        });
        bad(Topology::Expander {
            nodes: 256,
            degree: 2,
            seed: 0,
        });
        // Odd stub total.
        bad(Topology::Expander {
            nodes: 255,
            degree: 3,
            seed: 0,
        });
    }

    #[test]
    fn sparse_topologies_reject_dense_only_features() {
        let err = Scenario::builder(Topology::Hyperbolic {
            nodes: 128,
            alpha: 0.8,
            radius_offset: 0.0,
            seed: 1,
        })
        .dest(DestinationSpec::RingPowerLaw { alpha: 1.0 })
        .build()
        .unwrap_err();
        assert!(matches!(err, ConfigError::Unsupported { .. }));
        // Explicit dead-arc lists are generator-dependent — rejected.
        use crate::config::FaultMode;
        let err = Scenario::builder(Topology::ScaleFree {
            nodes: 256,
            gamma: 2.5,
            min_degree: 2,
            seed: 1,
        })
        .faults(Some(FaultSpec {
            mode: FaultMode::Explicit { arcs: vec![0] },
            fallback: FaultFallback::Drop,
            dynamics: None,
        }))
        .build()
        .unwrap_err();
        assert!(matches!(err, ConfigError::Unsupported { .. }));
    }

    #[test]
    fn smallworld_runs_end_to_end_with_outcome_taxonomy() {
        let r = smallworld_scenario().run().unwrap();
        let g = r.graph().expect("sparse runs report the graph extension");
        assert_eq!(g.nodes, 1024);
        let o = g.outcomes.as_ref().expect("sparse always reports outcomes");
        // The fault-free lattice with long links never stalls: the
        // lattice arcs alone always improve the L1 metric.
        assert_eq!(o.local_minimum + o.dead_end, 0);
        assert_eq!(r.generated, r.delivered);
        assert!(o.success > 0);
        // Bit-identical reruns across schedulers.
        let mut alt = smallworld_scenario();
        alt.run.scheduler = SchedulerKind::Heap;
        assert_eq!(r, alt.run().unwrap());
    }

    #[test]
    fn sparse_scenario_json_round_trips() {
        let s = smallworld_scenario();
        let parsed = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(s, parsed);
        assert_eq!(s.run().unwrap(), parsed.run().unwrap());
        // Absent stretch key parses to None and emits no block.
        assert!(!s.to_json().contains("stretch"));
    }

    #[test]
    fn alpha_sweep_touches_the_law_exponent() {
        let sweep = Sweep::new(
            smallworld_scenario(),
            vec![Axis::new(SweepParam::Alpha, vec![1.0, 2.0, 3.0])],
        );
        let alphas: Vec<f64> = sweep
            .scenarios()
            .unwrap()
            .iter()
            .map(|s| match s.topology {
                Topology::SmallWorld { alpha, .. } => alpha,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(alphas, vec![1.0, 2.0, 3.0]);
        // Alpha on a dense topology is a structured error.
        let err = Sweep::new(
            hypercube_scenario(),
            vec![Axis::new(SweepParam::Alpha, vec![1.0])],
        )
        .scenarios()
        .unwrap_err();
        assert!(matches!(err, ConfigError::Unsupported { .. }));
    }

    #[test]
    fn hyperbolic_reports_stalls_in_the_taxonomy() {
        // A sparse disk at alpha close to 1 leaves some node pairs
        // without a greedy path — those must surface as LOCAL_MINIMUM
        // or DEAD_END drops, conserving the packet count.
        let r = Scenario::builder(Topology::Hyperbolic {
            nodes: 256,
            alpha: 0.9,
            radius_offset: 0.0,
            seed: 3,
        })
        .lambda(0.05)
        .horizon(400.0)
        .warmup(80.0)
        .seed(9)
        .build()
        .unwrap()
        .run()
        .unwrap();
        let g = r.graph().unwrap();
        let o = g.outcomes.as_ref().unwrap();
        assert!(
            o.local_minimum + o.dead_end > 0,
            "a sparse disk should stall somewhere"
        );
        assert_eq!(r.generated, r.delivered + g.dropped, "conservation");
        assert_eq!(o.local_minimum + o.dead_end, g.dropped_in_window);
    }
}
