//! Parallel execution of independent simulation points.
//!
//! Sweeps are embarrassingly parallel; this runner fans work items over a
//! scoped thread pool with an atomic work-stealing counter, preserving the
//! input order of results. It uses `std::thread::scope` for data-race-free
//! borrowing of the worker closure and `std::sync::Mutex` for result
//! collection — every slot is touched by exactly one worker, so the locks
//! are uncontended and poisoning cannot occur outside a worker panic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` on up to `threads` worker threads, returning
/// results in input order. `threads = 0` means "hardware parallelism".
pub fn parallel_map<T, O, F>(items: Vec<T>, threads: usize, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work mutex poisoned")
                    .take()
                    .expect("work item taken twice");
                let out = f(item);
                *results[i].lock().expect("result mutex poisoned") = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result mutex poisoned")
                .expect("missing result")
        })
        .collect()
}

fn effective_threads(requested: usize, items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let t = if requested == 0 { hw } else { requested };
    t.min(items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, 4, |x| x * x);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn single_thread_fallback() {
        let out = parallel_map(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 0, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn each_item_processed_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let out = parallel_map((0..1000).collect::<Vec<_>>(), 0, |x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn heavier_work_than_threads() {
        // More items than threads exercises the stealing loop.
        let out = parallel_map((0..37).collect::<Vec<_>>(), 2, |x: u64| {
            // Busy-ish work.
            (0..1000u64).fold(x, |a, b| a.wrapping_add(b))
        });
        assert_eq!(out.len(), 37);
    }
}
