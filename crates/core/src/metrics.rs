//! Measurement collection shared by the simulators.

use hyperroute_desim::{BatchMeans, Reservoir, Tally, TimeWeighted};
use hyperroute_queueing::little::LittleCheck;
use serde::{Deserialize, Serialize};

/// Summary statistics of per-packet delay.
///
/// `PartialEq` is bit-exact (no tolerance): it exists for the
/// scheduler-equivalence tests, which demand identical reports from both
/// event-queue backends. It compares floats by bit pattern, except that
/// any two non-finite values are equal: JSON maps every non-finite `f64`
/// through `null` (read back as the canonical NaN), so the NaN quantiles
/// of an empty measurement window — and the infinite `ci95` of a
/// too-short one — must compare equal across a baseline round-trip
/// instead of poisoning `Report == Report` with IEEE `NaN != NaN`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DelayStats {
    /// Mean delay over measured packets.
    pub mean: f64,
    /// ~95% batch-means confidence half-width on the mean.
    pub ci95: f64,
    /// Median delay.
    pub p50: f64,
    /// 90th percentile delay.
    pub p90: f64,
    /// 99th percentile delay.
    pub p99: f64,
    /// Number of packets measured.
    pub count: u64,
}

impl PartialEq for DelayStats {
    fn eq(&self, other: &Self) -> bool {
        fn feq(a: f64, b: f64) -> bool {
            a.to_bits() == b.to_bits() || (!a.is_finite() && !b.is_finite())
        }
        feq(self.mean, other.mean)
            && feq(self.ci95, other.ci95)
            && feq(self.p50, other.p50)
            && feq(self.p90, other.p90)
            && feq(self.p99, other.p99)
            && self.count == other.count
    }
}

/// Collects delay / occupancy / throughput measurements with warm-up
/// truncation. All simulators in this crate drive one of these.
#[derive(Debug)]
pub struct MetricsCollector {
    warmup: f64,
    horizon: f64,
    delays: Tally,
    delay_batches: BatchMeans,
    reservoir: Reservoir,
    hops: Tally,
    zero_hop: u64,
    in_system: TimeWeighted,
    in_system_reset_done: bool,
    in_system_frozen: bool,
    generated: u64,
    delivered_measured: u64,
    delivered_total: u64,
    dropped_total: u64,
}

impl MetricsCollector {
    /// Collector measuring packets born in `[warmup, horizon)`.
    ///
    /// `batch_size` controls the batch-means CI granularity (packets per
    /// batch); `seed` feeds the quantile reservoir.
    pub fn new(warmup: f64, horizon: f64, batch_size: u64, seed: u64) -> MetricsCollector {
        assert!(horizon > warmup && warmup >= 0.0);
        MetricsCollector {
            warmup,
            horizon,
            delays: Tally::new(),
            delay_batches: BatchMeans::new(batch_size.max(1)),
            reservoir: Reservoir::new(4096, seed ^ 0x5EED_5EED),
            hops: Tally::new(),
            zero_hop: 0,
            in_system: TimeWeighted::new(0.0, 0.0),
            in_system_reset_done: warmup == 0.0,
            in_system_frozen: false,
            generated: 0,
            delivered_measured: 0,
            delivered_total: 0,
            dropped_total: 0,
        }
    }

    /// Record a packet generation at time `t`; updates the number-in-system
    /// trajectory (restarting its integral at the warm-up boundary).
    #[inline]
    pub fn on_generated(&mut self, t: f64) {
        self.generated += 1;
        self.bump_in_system(t, 1.0);
    }

    /// Record a delivery at `t` of a packet born at `born` having taken
    /// `hops` arcs.
    #[inline]
    pub fn on_delivered(&mut self, t: f64, born: f64, hops: u16) {
        self.delivered_total += 1;
        self.bump_in_system(t, -1.0);
        if born >= self.warmup && born < self.horizon {
            let delay = t - born;
            self.delays.push(delay);
            self.delay_batches.push(delay);
            self.reservoir.push(delay);
            self.hops.push(hops as f64);
            if hops == 0 {
                self.zero_hop += 1;
            }
            self.delivered_measured += 1;
        }
    }

    /// Record a drop at `t` (fault-mask workloads): the packet leaves the
    /// system undelivered. Keeps the number-in-system trajectory exact and
    /// the conservation identity `generated == delivered + dropped +
    /// in_flight` intact; dropped packets never enter the delay
    /// statistics.
    #[inline]
    pub fn on_dropped(&mut self, t: f64) {
        self.dropped_total += 1;
        self.bump_in_system(t, -1.0);
    }

    fn bump_in_system(&mut self, t: f64, delta: f64) {
        // Restart the time-average at the warm-up boundary exactly once, so
        // mean_in_system() covers only the measurement window, and freeze
        // it at the horizon so a drain phase does not bias it.
        if self.in_system_frozen {
            return;
        }
        if !self.in_system_reset_done && t >= self.warmup {
            self.in_system.set(self.warmup, self.in_system.current());
            self.in_system.reset(self.warmup);
            self.in_system_reset_done = true;
        }
        if t >= self.horizon {
            self.in_system.set(self.horizon, self.in_system.current());
            self.in_system_frozen = true;
            return;
        }
        self.in_system.add(t, delta);
    }

    /// Number of packets generated (all time).
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Number of packets delivered (all time).
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }

    /// Number of packets dropped (all time; fault-mask workloads only).
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total
    }

    /// Packets currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.generated - self.delivered_total - self.dropped_total
    }

    /// Current number-in-system value.
    pub fn current_in_system(&self) -> f64 {
        self.in_system.current()
    }

    /// Peak number-in-system seen.
    pub fn peak_in_system(&self) -> f64 {
        self.in_system.peak()
    }

    /// Time-averaged number-in-system over the measurement window ending at
    /// `t_end`.
    pub fn mean_in_system(&self, t_end: f64) -> f64 {
        self.in_system.mean(t_end)
    }

    /// Delay statistics for measured packets.
    pub fn delay_stats(&self) -> DelayStats {
        DelayStats {
            mean: self.delays.mean(),
            ci95: self.delay_batches.ci95_half_width(),
            p50: self.reservoir.quantile(0.5).unwrap_or(f64::NAN),
            p90: self.reservoir.quantile(0.9).unwrap_or(f64::NAN),
            p99: self.reservoir.quantile(0.99).unwrap_or(f64::NAN),
            count: self.delays.count(),
        }
    }

    /// Mean hops per measured packet.
    pub fn mean_hops(&self) -> f64 {
        self.hops.mean()
    }

    /// Fraction of measured packets delivered with zero hops (destination =
    /// origin, probability `(1-p)^d` under Eq. (1)).
    pub fn zero_hop_fraction(&self) -> f64 {
        if self.delivered_measured == 0 {
            0.0
        } else {
            self.zero_hop as f64 / self.delivered_measured as f64
        }
    }

    /// Measured delivery throughput over the measurement window ending at
    /// `t_end` (packets per unit time).
    pub fn throughput(&self, t_end: f64) -> f64 {
        let span = t_end - self.warmup;
        if span <= 0.0 {
            0.0
        } else {
            self.delivered_measured as f64 / span
        }
    }

    /// Little's-law consistency report over the measurement window.
    pub fn little_check(&self, t_end: f64) -> LittleCheck {
        LittleCheck {
            mean_in_system: self.mean_in_system(t_end),
            mean_delay: self.delays.mean(),
            throughput: self.throughput(t_end),
        }
    }
}

/// Arcs per [`ShardedArcTally`] shard (2¹⁶ × 4 B = 256 KiB): one shard
/// spans the arcs of a contiguous node range, so a run that only loads
/// part of a huge graph only allocates counters for the ranges it
/// touches.
const ARC_SHARD_BITS: u32 = 16;

/// Per-arc arrival counters sharded by node range.
///
/// The flat `Vec<u32>` this replaces allocated (and zeroed, and walked)
/// four bytes for *every* arc up front — fine at 10⁵ arcs, a 40 MB
/// eager allocation at the ≥10⁷-arc scale the sparse-topology follow-up
/// targets, where skewed demand leaves most ranges untouched. Shards are
/// allocated lazily on first increment; counters saturate at `u32::MAX`
/// instead of wrapping, so arbitrarily long horizons degrade gracefully
/// (the summary rates read "at least this", never garbage).
///
/// Totals, maxima and iteration order are exactly those of the flat
/// vector (missing shards read as zero), so reports are byte-identical
/// across the representation change.
#[derive(Clone, Debug)]
pub struct ShardedArcTally {
    /// `shards[i]` covers arcs `i·2¹⁶ .. min((i+1)·2¹⁶, len)`; `None`
    /// until the first increment in that range. The tail shard is sized
    /// exactly, so small graphs pay only their own footprint.
    shards: Vec<Option<Box<[u32]>>>,
    len: usize,
}

impl ShardedArcTally {
    /// Tally over dense arc indices `0..len`; allocates only the shard
    /// directory (one pointer per 2¹⁶ arcs).
    pub fn new(len: usize) -> ShardedArcTally {
        ShardedArcTally {
            shards: vec![None; len.div_ceil(1 << ARC_SHARD_BITS)],
            len,
        }
    }

    /// Number of arcs tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tally tracks no arcs.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn shard_span(&self, shard: usize) -> usize {
        (self.len - (shard << ARC_SHARD_BITS)).min(1 << ARC_SHARD_BITS)
    }

    /// Saturating increment of `arc`'s counter, allocating its node
    /// range's shard on first touch.
    #[inline]
    pub fn bump(&mut self, arc: usize) {
        debug_assert!(arc < self.len);
        let shard = arc >> ARC_SHARD_BITS;
        let span = self.shard_span(shard);
        let counters =
            self.shards[shard].get_or_insert_with(|| vec![0u32; span].into_boxed_slice());
        let c = &mut counters[arc & ((1 << ARC_SHARD_BITS) - 1)];
        *c = c.saturating_add(1);
    }

    /// The counter of `arc` (0 if its shard was never touched).
    #[inline]
    pub fn get(&self, arc: usize) -> u32 {
        debug_assert!(arc < self.len);
        match &self.shards[arc >> ARC_SHARD_BITS] {
            Some(counters) => counters[arc & ((1 << ARC_SHARD_BITS) - 1)],
            None => 0,
        }
    }

    /// Sum over all arcs (untouched shards contribute nothing).
    pub fn total(&self) -> u64 {
        self.shards
            .iter()
            .flatten()
            .flat_map(|counters| counters.iter())
            .map(|&c| c as u64)
            .sum()
    }

    /// Largest single-arc counter (0 when no arc was ever bumped, like
    /// `max().unwrap_or(0)` over the flat vector).
    pub fn max(&self) -> u32 {
        self.shards
            .iter()
            .flatten()
            .flat_map(|counters| counters.iter())
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Counters in dense arc order, zeros for untouched shards — the
    /// flat-vector view the report assemblers iterate.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len).map(move |arc| self.get(arc))
    }

    /// Saturating element-wise merge of a worker's tally into this one.
    ///
    /// Shards the other tally never touched stay untouched here too, so
    /// merging preserves the lazy-allocation footprint; counters saturate
    /// exactly as repeated [`bump`](Self::bump)s would.
    pub fn absorb(&mut self, other: &ShardedArcTally) {
        assert_eq!(self.len, other.len, "absorbing tally of different size");
        for (shard, counters) in other.shards.iter().enumerate() {
            let Some(theirs) = counters else { continue };
            let span = self.shard_span(shard);
            let ours =
                self.shards[shard].get_or_insert_with(|| vec![0u32; span].into_boxed_slice());
            for (o, &t) in ours.iter_mut().zip(theirs.iter()) {
                *o = o.saturating_add(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_truncation_filters_births() {
        let mut m = MetricsCollector::new(10.0, 100.0, 4, 1);
        // Born before warm-up: not measured.
        m.on_generated(5.0);
        m.on_delivered(12.0, 5.0, 3);
        assert_eq!(m.delay_stats().count, 0);
        // Born inside the window: measured.
        m.on_generated(20.0);
        m.on_delivered(23.5, 20.0, 2);
        let s = m.delay_stats();
        assert_eq!(s.count, 1);
        assert!((s.mean - 3.5).abs() < 1e-12);
    }

    #[test]
    fn throughput_counts_only_measured() {
        let mut m = MetricsCollector::new(0.0, 100.0, 4, 1);
        for i in 0..10 {
            let t = i as f64;
            m.on_generated(t);
            m.on_delivered(t + 1.0, t, 1);
        }
        assert!((m.throughput(10.0) - 1.0).abs() < 1e-12);
        assert_eq!(m.generated(), 10);
        assert_eq!(m.delivered_total(), 10);
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn zero_hop_fraction_tracks() {
        let mut m = MetricsCollector::new(0.0, 10.0, 4, 1);
        m.on_generated(1.0);
        m.on_delivered(1.0, 1.0, 0);
        m.on_generated(2.0);
        m.on_delivered(4.0, 2.0, 2);
        assert!((m.zero_hop_fraction() - 0.5).abs() < 1e-12);
        assert!((m.mean_hops() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn little_check_consistent_for_deterministic_flow() {
        // One packet in system at all times: N̄ = 1, λ = 1, T = 1.
        let mut m = MetricsCollector::new(0.0, 1000.0, 16, 2);
        let mut t = 0.0;
        for _ in 0..1000 {
            m.on_generated(t);
            m.on_delivered(t + 1.0, t, 1);
            t += 1.0;
        }
        let check = m.little_check(t);
        assert!(
            check.relative_error() < 0.01,
            "little error {}",
            check.relative_error()
        );
    }

    #[test]
    fn dropped_packets_leave_the_system_without_delay_stats() {
        let mut m = MetricsCollector::new(0.0, 100.0, 4, 1);
        m.on_generated(1.0);
        m.on_generated(2.0);
        m.on_dropped(3.0);
        m.on_delivered(4.0, 2.0, 1);
        assert_eq!(m.dropped_total(), 1);
        assert_eq!(m.in_flight(), 0);
        assert_eq!(m.current_in_system(), 0.0);
        assert_eq!(m.delay_stats().count, 1);
    }

    #[test]
    fn sharded_tally_matches_flat_vector() {
        // Spread bumps across three shards (arc indices straddling the
        // 2^16 boundary) and check every read-side view against a flat
        // model.
        let len = (3 << ARC_SHARD_BITS) - 17;
        let mut tally = ShardedArcTally::new(len);
        let mut flat = vec![0u32; len];
        let arcs = [0usize, 1, 65535, 65536, 65537, 131072, len - 1];
        for (i, &arc) in arcs.iter().enumerate() {
            for _ in 0..=i {
                tally.bump(arc);
                flat[arc] += 1;
            }
        }
        assert_eq!(tally.len(), len);
        assert_eq!(tally.total(), flat.iter().map(|&c| c as u64).sum::<u64>());
        assert_eq!(tally.max(), *flat.iter().max().unwrap());
        assert!(tally.iter().eq(flat.iter().copied()));
        for &arc in &arcs {
            assert_eq!(tally.get(arc), flat[arc]);
        }
    }

    #[test]
    fn sharded_tally_allocates_only_touched_ranges() {
        // 10^6 arcs = 16 shards; touching two ranges must leave the other
        // 14 directories empty (the lazy-allocation contract the ≥10^7-arc
        // follow-up depends on).
        let mut tally = ShardedArcTally::new(1_000_000);
        tally.bump(3);
        tally.bump(999_999);
        let allocated = tally.shards.iter().flatten().count();
        assert_eq!(allocated, 2);
        assert_eq!(tally.total(), 2);
        // Tail shard is sized exactly, not rounded up to 2^16.
        assert_eq!(
            tally.shards.last().unwrap().as_ref().unwrap().len(),
            1_000_000 - 15 * (1 << ARC_SHARD_BITS)
        );
    }

    #[test]
    fn sharded_tally_saturates_instead_of_wrapping() {
        let mut tally = ShardedArcTally::new(4);
        // Force the counter to the brink, then over it: it must pin at
        // u32::MAX, not wrap to 0 (the silent-overflow regression this
        // guards against).
        tally.bump(2);
        if let Some(counters) = &mut tally.shards[0] {
            counters[2] = u32::MAX - 1;
        }
        tally.bump(2);
        assert_eq!(tally.get(2), u32::MAX);
        tally.bump(2);
        assert_eq!(tally.get(2), u32::MAX, "must saturate, not wrap");
        assert_eq!(tally.max(), u32::MAX);
    }

    #[test]
    fn peak_in_system() {
        let mut m = MetricsCollector::new(0.0, 10.0, 4, 1);
        m.on_generated(0.0);
        m.on_generated(0.0);
        m.on_generated(0.0);
        m.on_delivered(1.0, 0.0, 1);
        assert_eq!(m.peak_in_system(), 3.0);
        assert_eq!(m.current_in_system(), 2.0);
    }
}
