//! Hypercube instantiation of the generic engine — the paper's model,
//! exactly (§1.1, §3).
//!
//! One deterministic unit-service FIFO queue per directed arc; packets
//! cross the dimensions their destination requires in the order the scheme
//! dictates; contention is resolved FIFO (or by the configured ablation
//! policy); no idling. Per-node Poisson sources are merged into one
//! network-wide Poisson process of rate `λ·2^d` with uniform node
//! assignment (superposition is exact, and keeps the event set small).
//!
//! Everything event-loop-shaped lives in [`crate::engine`]; this module is
//! only the hypercube's routing law ([`HypercubeSpec`]), its per-dimension
//! statistics, and its [`Report`] assembly. Construct through
//! [`crate::scenario::Scenario`] with
//! [`crate::scenario::Topology::Hypercube`].

use crate::config::{DestinationSpec, Scheme};
use crate::engine::{Advance, ArcChoice, Engine, EngineCfg, EnginePacket, EngineSpec, Spawn};
use crate::observe::{NullObserver, Observer};
use crate::packet::{next_dim, sample_flip_mask, MaskSampler, Packet, NO_SECOND_LEG};
use crate::parallel::{ParallelEngine, ShardSpec, ShardableSpec};
use crate::scenario::{HypercubeExt, Report, ReportExt, Scenario, Topology};
use hyperroute_desim::{SimRng, TimeIntegral};
use hyperroute_topology::Hypercube;

impl EnginePacket for Packet {
    #[inline]
    fn born(&self) -> f64 {
        self.born
    }

    #[inline]
    fn set_trace_id(&mut self, id: u32) {
        self.trace = id;
    }

    #[inline]
    fn trace_id(&self) -> u32 {
        self.trace
    }
}

/// Bits of the packed arc word holding the arc's target node (`d ≤ 26` ⇒
/// nodes fit in 26 bits, below the dimension field and the engine's busy
/// bit).
const ARC_NODE_MASK: u32 = (1 << 26) - 1;

/// Bit offset of the arc's dimension in the packed arc word (bits 26..31).
const ARC_DIM_SHIFT: u32 = 26;

/// The hypercube's per-topology half of the generic engine: destination
/// law (Eq. (1) bit-flips or a mask pmf), scheme-ordered dimension
/// crossing (greedy / random-order / two-phase Valiant), and the Prop. 5 /
/// Prop. 13 per-dimension measurements.
pub struct HypercubeSpec {
    dim: usize,
    p: f64,
    scheme: Scheme,
    mask_sampler: Option<MaskSampler>,
    warmup: f64,
    horizon: f64,
    dim_arrivals: Vec<u64>,
    /// Time-weighted total occupancy per dimension (all 2^d arcs pooled).
    dim_occupancy: Vec<TimeIntegral>,
    dim_occ_reset_done: bool,
}

impl HypercubeSpec {
    /// Track the pooled occupancy of one dimension's arcs; integration
    /// restarts at the warm-up boundary and freezes at the horizon, like
    /// the main collector's number-in-system signal.
    fn bump_dim_occupancy(&mut self, t: f64, dim: usize, delta: f64) {
        if !self.dim_occ_reset_done && t >= self.warmup {
            let w = self.warmup;
            for tw in &mut self.dim_occupancy {
                tw.add(w, 0.0);
                tw.reset(w);
            }
            self.dim_occ_reset_done = true;
        }
        if t < self.horizon {
            self.dim_occupancy[dim].add(t, delta);
        }
    }

    /// One destination mask from the configured distribution.
    fn sample_dest_mask(&mut self, rng: &mut SimRng) -> u32 {
        match &self.mask_sampler {
            Some(sampler) => sampler.sample(rng),
            None => sample_flip_mask(rng, self.dim, self.p),
        }
    }
}

impl EngineSpec for HypercubeSpec {
    type Pkt = Packet;

    fn num_sources(&self) -> usize {
        1 << self.dim
    }

    fn num_arcs(&self) -> usize {
        self.dim << self.dim
    }

    fn arc_meta(&self, arc: usize) -> u32 {
        let (node, d) = ((arc / self.dim) as u32, arc % self.dim);
        (node ^ (1 << d)) | ((d as u32) << ARC_DIM_SHIFT)
    }

    fn mean_hops_hint(&self) -> f64 {
        self.dim as f64
    }

    fn generate(&mut self, t: f64, source: u32, dest_rng: &mut SimRng) -> Spawn<Packet> {
        match self.scheme {
            Scheme::Greedy | Scheme::RandomOrder => {
                let mask = self.sample_dest_mask(dest_rng);
                if mask == 0 {
                    Spawn::SelfDeliver
                } else {
                    Spawn::Route(Packet::new(t, mask, NO_SECOND_LEG))
                }
            }
            Scheme::TwoPhaseValiant => {
                // Leg 1: uniformly random intermediate node ⇒ the leg mask
                // flips each bit with probability 1/2.
                let inter_mask = sample_flip_mask(dest_rng, self.dim, 0.5);
                let dest_mask = self.sample_dest_mask(dest_rng);
                let final_dest = source ^ dest_mask;
                if inter_mask == 0 && source == final_dest {
                    Spawn::SelfDeliver
                } else if inter_mask == 0 {
                    // Degenerate leg 1; go straight to leg 2.
                    Spawn::Route(Packet::new(t, source ^ final_dest, NO_SECOND_LEG))
                } else {
                    Spawn::Route(Packet::new(t, inter_mask, final_dest))
                }
            }
        }
    }

    fn choose_arc(
        &mut self,
        t: f64,
        in_window: bool,
        node: u32,
        pkt: &mut Packet,
        route_rng: &mut SimRng,
    ) -> ArcChoice {
        debug_assert!(pkt.remaining != 0);
        let dim = next_dim(self.scheme, pkt.remaining, route_rng);
        pkt.remaining &= !(1u32 << dim);
        if in_window {
            self.dim_arrivals[dim] += 1;
        }
        self.bump_dim_occupancy(t, dim, 1.0);
        ArcChoice::Arc((node as usize * self.dim + dim) as u32)
    }

    fn note_service_end(&mut self, t: f64, meta: u32) {
        self.bump_dim_occupancy(t, (meta >> ARC_DIM_SHIFT) as usize, -1.0);
    }

    fn advance(&mut self, meta: u32, pkt: &mut Packet) -> Advance {
        pkt.hops += 1;
        let node = meta & ARC_NODE_MASK;
        if pkt.remaining != 0 {
            Advance::Forward(node)
        } else if pkt.second_leg_dest != NO_SECOND_LEG {
            let mask = node ^ pkt.second_leg_dest;
            pkt.second_leg_dest = NO_SECOND_LEG;
            if mask == 0 {
                Advance::Deliver(pkt.hops)
            } else {
                pkt.remaining = mask;
                Advance::Forward(node)
            }
        } else {
            Advance::Deliver(pkt.hops)
        }
    }

    fn note_deliver(&mut self, _pkt: &Packet, _in_window: bool) {}
}

impl ShardSpec for HypercubeSpec {}

impl ShardableSpec for HypercubeSpec {
    type Shard = HypercubeSpec;

    fn shard(&self) -> HypercubeSpec {
        HypercubeSpec {
            dim: self.dim,
            p: self.p,
            scheme: self.scheme,
            // Shards never generate packets (the coordinator owns the
            // destination law), so the sampler stays primary-side.
            mask_sampler: None,
            warmup: self.warmup,
            horizon: self.horizon,
            dim_arrivals: vec![0; self.dim],
            dim_occupancy: (0..self.dim).map(|_| TimeIntegral::new(0.0, 0.0)).collect(),
            dim_occ_reset_done: self.dim_occ_reset_done,
        }
    }

    fn num_nodes(&self) -> usize {
        1 << self.dim
    }

    fn arc_tail(&self, arc: usize) -> u32 {
        (arc / self.dim) as u32
    }

    fn replay_hop(&mut self, t: f64, arc: u32) {
        // Per-dimension arrival counts are absorbed shard-side; only the
        // order-dependent occupancy integral replays here.
        self.bump_dim_occupancy(t, arc as usize % self.dim, 1.0);
    }

    fn replay_service_end(&mut self, t: f64, arc: u32) {
        self.bump_dim_occupancy(t, arc as usize % self.dim, -1.0);
    }

    fn absorb(&mut self, shard: &HypercubeSpec) {
        for (total, &part) in self.dim_arrivals.iter_mut().zip(&shard.dim_arrivals) {
            *total += part;
        }
    }
}

/// The hypercube simulator: a [`HypercubeSpec`] driven by the generic
/// [`Engine`]. Built by the scenario layer; run with [`HypercubeSim::run`]
/// or [`HypercubeSim::run_observed`].
pub struct HypercubeSim {
    engine: Engine<HypercubeSpec>,
    workers: usize,
}

impl HypercubeSim {
    /// Build the simulator from a validated hypercube scenario.
    pub(crate) fn from_scenario(s: &Scenario) -> HypercubeSim {
        let Topology::Hypercube { dim } = s.topology else {
            unreachable!("hypercube simulator on a non-hypercube scenario");
        };
        let cube = Hypercube::new(dim);
        let mask_sampler = match &s.workload.dest {
            DestinationSpec::BitFlip => None,
            DestinationSpec::MaskPmf(pmf) => Some(MaskSampler::new(pmf)),
            DestinationSpec::NodePmf(_) | DestinationSpec::RingPowerLaw { .. } => {
                unreachable!("node-addressed laws are rejected for the hypercube")
            }
        };
        let spec = HypercubeSpec {
            dim,
            p: s.workload.p,
            scheme: s.policy.scheme,
            mask_sampler,
            warmup: s.run.warmup,
            horizon: s.run.horizon,
            dim_arrivals: vec![0; dim],
            dim_occupancy: (0..dim).map(|_| TimeIntegral::new(0.0, 0.0)).collect(),
            dim_occ_reset_done: s.run.warmup == 0.0,
        };
        let cfg = EngineCfg {
            lambda: s.workload.lambda,
            arrivals: s.workload.arrivals,
            contention: s.policy.contention,
            scheduler: s.run.scheduler,
            horizon: s.run.horizon,
            warmup: s.run.warmup,
            seed: s.run.seed,
            drain: s.run.drain,
        };
        debug_assert_eq!(cube.num_arcs(), dim << dim);
        HypercubeSim {
            engine: Engine::new(spec, cfg),
            workers: s.run.intra_workers(),
        }
    }

    /// Run to completion and summarise.
    pub fn run(self) -> Report {
        self.run_observed(&mut NullObserver)
    }

    /// Run to completion under a streaming [`Observer`] and summarise.
    ///
    /// The observer sees every event (before it is applied) and every
    /// delivery; it never changes the simulation — reports are
    /// bit-identical to an unobserved [`HypercubeSim::run`].
    pub fn run_observed<O: Observer>(mut self, obs: &mut O) -> Report {
        if self.workers > 1 {
            let (spec, cfg) = self.engine.into_spec_cfg();
            let mut par = ParallelEngine::new(spec, cfg, self.workers);
            par.drive(obs);
            return Self::assemble(
                par.spec(),
                par.cfg(),
                par.collector(),
                par.events_processed(),
            );
        }
        self.engine.drive(obs);
        self.report()
    }

    fn report(&self) -> Report {
        let engine = &self.engine;
        Self::assemble(
            engine.spec(),
            engine.cfg(),
            engine.collector(),
            engine.events_processed(),
        )
    }

    fn assemble(
        spec: &HypercubeSpec,
        cfg: &EngineCfg,
        collector: &crate::metrics::MetricsCollector,
        events: u64,
    ) -> Report {
        let span = cfg.horizon - cfg.warmup;
        let arcs_per_dim = (1usize << spec.dim) as f64;
        let per_dim_arc_rate: Vec<f64> = spec
            .dim_arrivals
            .iter()
            .map(|&c| c as f64 / (span * arcs_per_dim))
            .collect();
        let per_dim_mean_queue: Vec<f64> = spec
            .dim_occupancy
            .iter()
            .map(|tw| tw.mean(cfg.horizon) / arcs_per_dim)
            .collect();
        Report {
            delay: collector.delay_stats(),
            mean_in_system: collector.mean_in_system(cfg.horizon),
            peak_in_system: collector.peak_in_system(),
            throughput: collector.throughput(cfg.horizon),
            little_error: collector.little_check(cfg.horizon).relative_error(),
            generated: collector.generated(),
            delivered: collector.delivered_total(),
            events,
            ext: ReportExt::Hypercube(HypercubeExt {
                rho: cfg.lambda * spec.p,
                mean_hops: collector.mean_hops(),
                zero_hop_fraction: collector.zero_hop_fraction(),
                per_dim_arc_rate,
                per_dim_mean_queue,
            }),
            telemetry: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArrivalModel, ConfigError, ContentionPolicy};
    use crate::scenario::Scenario;
    use hyperroute_analysis::hypercube_bounds;

    fn base_scenario() -> Scenario {
        Scenario::builder(Topology::Hypercube { dim: 4 })
            .lambda(1.2)
            .p(0.5) // ρ = 0.6
            .horizon(3_000.0)
            .warmup(500.0)
            .seed(12)
            .build()
            .expect("valid scenario")
    }

    fn run(s: &Scenario) -> Report {
        HypercubeSim::from_scenario(s).run()
    }

    fn hc(r: &Report) -> &HypercubeExt {
        let ReportExt::Hypercube(ext) = &r.ext else {
            panic!("wrong report extension");
        };
        ext
    }

    #[test]
    fn everything_generated_is_delivered_with_drain() {
        let r = run(&base_scenario());
        assert_eq!(r.generated, r.delivered);
        assert!(r.generated > 50_000, "generated {}", r.generated);
    }

    #[test]
    fn delay_within_paper_bracket() {
        let r = run(&base_scenario());
        let lb = hypercube_bounds::greedy_lower_bound(4, 1.2, 0.5);
        let ub = hypercube_bounds::greedy_upper_bound(4, 1.2, 0.5);
        assert!(
            r.delay.mean >= lb * 0.97 && r.delay.mean <= ub * 1.03,
            "measured {} outside [{lb}, {ub}]",
            r.delay.mean
        );
    }

    #[test]
    fn mean_hops_matches_dp_and_zero_hop_fraction() {
        let r = run(&base_scenario());
        assert!(
            (hc(&r).mean_hops - 2.0).abs() < 0.05,
            "mean hops {} vs dp = 2",
            hc(&r).mean_hops
        );
        // (1-p)^d = 0.0625.
        assert!(
            (hc(&r).zero_hop_fraction - 0.0625).abs() < 0.01,
            "zero-hop {}",
            hc(&r).zero_hop_fraction
        );
    }

    #[test]
    fn proposition_5_arc_rates() {
        let r = run(&base_scenario());
        for (dim, &rate) in hc(&r).per_dim_arc_rate.iter().enumerate() {
            assert!(
                (rate - 0.6).abs() < 0.03,
                "dimension {dim}: per-arc rate {rate} vs ρ=0.6"
            );
        }
    }

    #[test]
    fn little_law_holds() {
        let r = run(&base_scenario());
        assert!(r.little_error < 0.05, "little error {}", r.little_error);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&base_scenario());
        let b = run(&base_scenario());
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.delay.mean, b.delay.mean);
        let mut s2 = base_scenario();
        s2.run.seed ^= 1;
        let c = run(&s2);
        assert_ne!(a.delay.mean, c.delay.mean);
    }

    #[test]
    fn p_one_matches_exact_formula() {
        // §3.3 end: p = 1 ⇒ T = d + ρ/(2(1-ρ)) exactly (disjoint paths).
        let s = Scenario::builder(Topology::Hypercube { dim: 4 })
            .lambda(0.7)
            .p(1.0)
            .horizon(4_000.0)
            .warmup(500.0)
            .seed(5)
            .build()
            .unwrap();
        let r = run(&s);
        let exact = hypercube_bounds::p_one_exact_delay(4, 0.7);
        assert!(
            (r.delay.mean - exact).abs() / exact < 0.02,
            "measured {} vs exact {exact}",
            r.delay.mean
        );
        // Every packet takes exactly d hops.
        assert!((hc(&r).mean_hops - 4.0).abs() < 1e-9);
        assert_eq!(hc(&r).zero_hop_fraction, 0.0);
    }

    #[test]
    fn rejects_zero_slots_per_unit() {
        let err = Scenario::builder(Topology::Hypercube { dim: 4 })
            .arrivals(ArrivalModel::Slotted { slots_per_unit: 0 })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::SlotsPerUnit);
    }

    #[test]
    fn p_zero_all_packets_self_delivered() {
        let s = Scenario::builder(Topology::Hypercube { dim: 5 })
            .lambda(1.0)
            .p(0.0)
            .horizon(200.0)
            .warmup(10.0)
            .seed(8)
            .build()
            .unwrap();
        let r = run(&s);
        assert_eq!(hc(&r).zero_hop_fraction, 1.0);
        assert_eq!(r.delay.mean, 0.0);
        assert_eq!(hc(&r).mean_hops, 0.0);
    }

    #[test]
    fn random_order_scheme_also_stable_and_shortest_path() {
        let mut s = base_scenario();
        s.policy.scheme = Scheme::RandomOrder;
        s.run.horizon = 2_000.0;
        let r = run(&s);
        assert_eq!(r.generated, r.delivered);
        // Shortest paths: mean hops still dp.
        assert!(
            (hc(&r).mean_hops - 2.0).abs() < 0.06,
            "hops {}",
            hc(&r).mean_hops
        );
    }

    #[test]
    fn valiant_doubles_path_length() {
        let mut s = base_scenario();
        s.policy.scheme = Scheme::TwoPhaseValiant;
        s.workload.lambda = 0.4; // keep effective load below 1
        s.run.horizon = 2_000.0;
        let r = run(&s);
        assert_eq!(r.generated, r.delivered);
        // Expected hops = d/2 (leg 1) + dp (leg 2) = 2 + 2 = 4.
        assert!(
            (hc(&r).mean_hops - 4.0).abs() < 0.1,
            "hops {}",
            hc(&r).mean_hops
        );
        // Delay strictly worse than direct greedy at the same (λ, p).
        let mut direct = s.clone();
        direct.policy.scheme = Scheme::Greedy;
        assert!(r.delay.mean > run(&direct).delay.mean);
    }

    #[test]
    fn slotted_arrivals_obey_slotted_bound() {
        let s = Scenario::builder(Topology::Hypercube { dim: 4 })
            .lambda(1.0)
            .p(0.5)
            .arrivals(ArrivalModel::Slotted { slots_per_unit: 2 })
            .horizon(3_000.0)
            .warmup(500.0)
            .seed(77)
            .build()
            .unwrap();
        let r = run(&s);
        let ub = hypercube_bounds::slotted_upper_bound(4, 1.0, 0.5, 0.5);
        assert!(
            r.delay.mean <= ub * 1.03,
            "slotted delay {} above bound {ub}",
            r.delay.mean
        );
        assert_eq!(r.generated, r.delivered);
    }

    #[test]
    fn proposition_13_per_dimension_occupancy() {
        // Eq. (16): dimension-0 arcs are exactly M/D/1, so their mean
        // occupancy is ρ + ρ²/(2(1-ρ)); Eq. (15) machinery: every deeper
        // dimension holds at least ρ (service alone) and at most the
        // product-form ρ/(1-ρ).
        let rho: f64 = 0.6;
        let r = run(&base_scenario());
        let queue = &hc(&r).per_dim_mean_queue;
        let md1_exact = rho + rho * rho / (2.0 * (1.0 - rho));
        assert!(
            (queue[0] - md1_exact).abs() < 0.02,
            "dim 0 occupancy {} vs M/D/1 {md1_exact}",
            queue[0]
        );
        for (dim, &n) in queue.iter().enumerate().skip(1) {
            assert!(n >= rho * 0.97, "dim {dim} occupancy {n} below ρ = {rho}");
            assert!(
                n <= rho / (1.0 - rho) * 1.05,
                "dim {dim} occupancy {n} above product-form cap"
            );
        }
        // Deterministic unit service smooths traffic, so deeper dimensions
        // see a stream more regular than Poisson and queue less than the
        // M/D/1 first dimension.
        assert!(queue[3] <= queue[0] + 0.02, "{queue:?}");
    }

    #[test]
    fn contention_policies_share_mean_but_not_tail() {
        // Non-preemptive work-conserving policies that ignore service
        // times have (near-)identical mean delay; LIFO fattens the tail.
        let run_policy = |contention| {
            let mut s = base_scenario();
            s.policy.contention = contention;
            s.run.horizon = 6_000.0;
            s.run.warmup = 1_000.0;
            run(&s)
        };
        let fifo = run_policy(ContentionPolicy::Fifo);
        let lifo = run_policy(ContentionPolicy::Lifo);
        let rand = run_policy(ContentionPolicy::Random);
        let rel = |a: f64, b: f64| (a - b).abs() / a;
        assert!(
            rel(fifo.delay.mean, lifo.delay.mean) < 0.06,
            "means diverge: fifo {} lifo {}",
            fifo.delay.mean,
            lifo.delay.mean
        );
        assert!(rel(fifo.delay.mean, rand.delay.mean) < 0.06);
        assert!(
            lifo.delay.p99 > fifo.delay.p99,
            "LIFO p99 {} not above FIFO p99 {}",
            lifo.delay.p99,
            fifo.delay.p99
        );
    }

    #[test]
    fn custom_destination_equivalent_to_bitflip() {
        // A product-of-flips pmf with uniform q must match BitFlip(q) in
        // law; same seed gives close statistics (not identical draws: the
        // samplers consume different variates).
        let base = base_scenario();
        let bitflip = run(&base);
        let mut custom = base.clone();
        custom.workload.dest = DestinationSpec::product_of_flips(&[0.5; 4]);
        let custom = run(&custom);
        assert!(
            (bitflip.delay.mean - custom.delay.mean).abs() / bitflip.delay.mean < 0.05,
            "bitflip {} vs custom {}",
            bitflip.delay.mean,
            custom.delay.mean
        );
        assert!((hc(&bitflip).mean_hops - hc(&custom).mean_hops).abs() < 0.1);
    }

    #[test]
    fn skewed_destination_loads_bottleneck_dimension() {
        // Flip dim 0 always, others rarely: arc rate in dim 0 is λ, in the
        // others λ·0.1 (Prop. 5's generalisation: rate_j = λ·p_j).
        let lambda = 0.8;
        let s = Scenario::builder(Topology::Hypercube { dim: 4 })
            .lambda(lambda)
            .dest(DestinationSpec::product_of_flips(&[1.0, 0.1, 0.1, 0.1]))
            .horizon(3_000.0)
            .warmup(500.0)
            .seed(99)
            .build()
            .unwrap();
        let r = run(&s);
        let rates = &hc(&r).per_dim_arc_rate;
        assert!((rates[0] - lambda).abs() < 0.04, "dim0 rate {}", rates[0]);
        for (dim, &rate) in rates.iter().enumerate().skip(1) {
            assert!((rate - lambda * 0.1).abs() < 0.02, "dim{dim} rate {rate}");
        }
        // No packet is self-destined (dim 0 always flips).
        assert_eq!(hc(&r).zero_hop_fraction, 0.0);
    }

    #[test]
    fn observed_run_produces_monotone_timestamps() {
        let mut probe = crate::observe::TimeSeriesProbe::new(50.0, 3_000.0);
        HypercubeSim::from_scenario(&base_scenario()).run_observed(&mut probe);
        let samples = probe.into_samples();
        assert!(samples.len() >= 50);
        assert!(samples.windows(2).all(|w| w[0].0 < w[1].0));
        // In a stable run the trajectory stays bounded.
        let max_n = samples.iter().map(|&(_, n)| n).fold(0.0, f64::max);
        assert!(max_n < 2_000.0, "suspicious queue growth: {max_n}");
    }
}
