//! Event-driven packet-level simulation of the hypercube under greedy (and
//! baseline) routing — the paper's model, exactly (§1.1, §3).
//!
//! One deterministic unit-service FIFO queue per directed arc; packets
//! cross the dimensions their destination requires in the order the scheme
//! dictates; contention is resolved FIFO; no idling. Per-node Poisson
//! sources are merged into one network-wide Poisson process of rate
//! `λ·2^d` with uniform node assignment (superposition is exact, and keeps
//! the event heap small).

// The config struct defined here is the deprecated legacy entry point;
// this module necessarily keeps using it internally.
#![allow(deprecated)]

use crate::config::{ArrivalModel, ConfigError, ContentionPolicy, DestinationSpec, Scheme};
use crate::metrics::{DelayStats, MetricsCollector};
use crate::observe::{NullObserver, Observer, TimeSeriesProbe};
use crate::packet::{next_dim, sample_flip_mask, MaskSampler, Packet, NO_SECOND_LEG};
use crate::pool::{ArcBag, ArcFifo, SlabPool};
use hyperroute_desim::{Scheduler, SchedulerKind, SimRng};
use hyperroute_topology::Hypercube;
use serde::{Deserialize, Serialize};

/// Configuration of a hypercube routing simulation.
///
/// Deprecated legacy entry point: build a
/// [`crate::scenario::Scenario`] with
/// [`crate::scenario::Topology::Hypercube`] instead — one spec drives all
/// topologies, validates fallibly, and serialises to scenario files. This
/// struct remains as a thin shim for one release; the scenario path
/// produces byte-identical reports.
#[deprecated(
    since = "0.2.0",
    note = "build a `scenario::Scenario` with `Topology::Hypercube` instead"
)]
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HypercubeSimConfig {
    /// Hypercube dimension `d`.
    pub dim: usize,
    /// Per-node Poisson generation rate `λ`.
    pub lambda: f64,
    /// Bit-flip probability `p` of the destination distribution (Eq. (1)).
    /// Ignored when `dest` is a custom pmf.
    pub p: f64,
    /// Routing scheme.
    pub scheme: Scheme,
    /// Continuous (Poisson) or slotted-batch arrivals (§3.4).
    pub arrivals: ArrivalModel,
    /// Destination distribution: Eq. (1) bit-flips, or an arbitrary
    /// translation-invariant pmf over XOR masks (§2.2 generalisation).
    pub dest: DestinationSpec,
    /// Contention-resolution rule at each arc (paper: FIFO).
    pub contention: ContentionPolicy,
    /// Future-event-list backend. Both produce bit-identical runs; the
    /// calendar queue (default) is amortized `O(1)` per event on this
    /// unit-service model where the heap pays `O(log n)`.
    pub scheduler: SchedulerKind,
    /// Generation stops at this time.
    pub horizon: f64,
    /// Packets born before this time are not measured.
    pub warmup: f64,
    /// RNG seed; every run is a deterministic function of it.
    pub seed: u64,
    /// After the horizon, keep serving until every in-flight packet is
    /// delivered (so all measured packets complete). Disable for
    /// instability probes.
    pub drain: bool,
}

impl Default for HypercubeSimConfig {
    fn default() -> Self {
        HypercubeSimConfig {
            dim: 4,
            lambda: 1.0,
            p: 0.5,
            scheme: Scheme::Greedy,
            arrivals: ArrivalModel::Poisson,
            dest: DestinationSpec::BitFlip,
            contention: ContentionPolicy::Fifo,
            scheduler: SchedulerKind::default(),
            horizon: 1_000.0,
            warmup: 200.0,
            seed: 0xC0FFEE,
            drain: true,
        }
    }
}

impl HypercubeSimConfig {
    /// Load factor `ρ = λp` (doubled expected path ⇒ doubled effective load
    /// under two-phase Valiant, which this does *not* account for).
    pub fn load_factor(&self) -> f64 {
        self.lambda * self.p
    }

    /// Structured validation of this configuration — every check the
    /// constructor enforces, as a [`ConfigError`] instead of a panic.
    ///
    /// Release builds validate here, once, instead of per event inside
    /// the scheduler's push (whose time check is a debug_assert!): every
    /// event time is `now + 1.0`, `now + Exp(Λ)` or `now + r`, so finite
    /// non-negative inputs imply finite non-negative event times.
    pub fn check(&self) -> Result<(), ConfigError> {
        crate::config::check_sim_fields(
            self.dim,
            26,
            self.lambda,
            self.p,
            self.horizon,
            self.warmup,
            self.arrivals,
            Some(&self.dest),
        )
    }

    fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

/// Results of a hypercube simulation run.
///
/// `PartialEq` compares every field bit-for-bit — the scheduler-equivalence
/// tests assert that heap- and calendar-backed runs of the same seed yield
/// *equal* reports, not merely statistically close ones.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HypercubeReport {
    /// Echo of the dimension.
    pub dim: usize,
    /// Echo of λ.
    pub lambda: f64,
    /// Echo of p.
    pub p: f64,
    /// Load factor ρ = λp.
    pub rho: f64,
    /// Per-packet delay statistics (packets born in the measurement
    /// window).
    pub delay: DelayStats,
    /// Mean hops per measured packet (≈ dp for greedy, Lemma 1).
    pub mean_hops: f64,
    /// Fraction of measured packets with destination = origin
    /// (≈ (1-p)^d).
    pub zero_hop_fraction: f64,
    /// Time-averaged packets in the network over the measurement window.
    pub mean_in_system: f64,
    /// Peak packets in the network.
    pub peak_in_system: f64,
    /// Delivered packets per unit time in the measurement window.
    pub throughput: f64,
    /// Relative Little's-law discrepancy (sanity check; small when
    /// converged).
    pub little_error: f64,
    /// Measured per-arc arrival rate for each dimension (Prop. 5 predicts
    /// every entry ≈ ρ under greedy routing).
    pub per_dim_arc_rate: Vec<f64>,
    /// Time-averaged number of packets at an arc of each dimension
    /// (queue + in service). Prop. 13's proof: dimension 0 is *exactly*
    /// M/D/1 (`ρ + ρ²/(2(1-ρ))`, Eq. (16)); deeper dimensions hold at
    /// least `ρ` (Eq. (15) machinery).
    pub per_dim_mean_queue: Vec<f64>,
    /// Total packets generated.
    pub generated: u64,
    /// Total packets delivered.
    pub delivered: u64,
    /// Discrete events processed (arrivals + slot boundaries + service
    /// completions) — the denominator of the engine's events/sec metric.
    pub events: u64,
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Merged-Poisson packet generation (continuous model).
    Arrival,
    /// Slot boundary: generate this slot's batches (slotted model).
    SlotBoundary,
    /// Service completion at the arc with this dense index, carrying the
    /// packet that was in service. The packet rides in the event instead
    /// of the arc, so a completion needs no dependent load of per-arc
    /// serving state: the scheduler entry it just popped (hot by
    /// construction) already holds the packet.
    Complete(u32, Packet),
}

/// Busy flag of [`ArcState::to_node_dim`]: set while a packet occupies the
/// arc's server (its payload rides in the pending [`Ev::Complete`]).
const ARC_BUSY: u32 = 1 << 26;

/// Bits of [`ArcState::to_node_dim`] holding the arc's target node
/// (`d ≤ 26` ⇒ nodes fit in 26 bits, below the busy flag).
const ARC_NODE_MASK: u32 = ARC_BUSY - 1;

/// Per-arc state, exactly 16 bytes: the intrusive list of waiters plus the
/// arc's precomputed routing word. Arcs are visited in data-dependent
/// random order, so this is the simulator's locality-critical structure —
/// at 16 bytes, four arcs share a cache line and the whole d=8 arc array
/// is L1-resident. The in-service packet lives inside the pending
/// [`Ev::Complete`] event (the completion that consumes it pops that very
/// event), leaving only a busy bit here; the packed `to_node`/`dim`
/// replaces two integer divisions by the runtime dimension on every
/// completion.
#[derive(Clone, Copy, Debug, Default)]
struct ArcState {
    waiting: ArcFifo,
    /// Target node of this arc (bits 0..26, `node ⊕ 2^dim`), the busy
    /// flag ([`ARC_BUSY`], bit 26) and the arc's dimension (bits 27..32);
    /// `d ≤ 26` keeps every field in range.
    to_node_dim: u32,
}

/// The simulator. Construct with [`HypercubeSim::new`], execute with
/// [`HypercubeSim::run`] or [`HypercubeSim::run_observed`].
pub struct HypercubeSim {
    cfg: HypercubeSimConfig,
    cube: Hypercube,
    /// One slab for every waiting packet in the network; arcs hold only
    /// intrusive `(head, tail)` lists into it.
    pool: SlabPool<Packet>,
    /// Packet in service + waiting list, one entry per arc.
    arcs: Vec<ArcState>,
    /// Indexed waiting storage, one bag per arc — allocated (and used)
    /// only under [`ContentionPolicy::Random`], where a uniform pick from
    /// an intrusive list would walk `O(queue)` links ([`ArcBag`]).
    bags: Vec<ArcBag<Packet>>,
    events: Scheduler<Ev>,
    events_processed: u64,
    arrival_rng: SimRng,
    dest_rng: SimRng,
    route_rng: SimRng,
    contention_rng: SimRng,
    mask_sampler: Option<MaskSampler>,
    collector: MetricsCollector,
    dim_arrivals: Vec<u64>,
    /// Time-weighted total occupancy per dimension (all 2^d arcs pooled).
    dim_occupancy: Vec<hyperroute_desim::TimeIntegral>,
    dim_occ_reset_done: bool,
    now: f64,
}

impl HypercubeSim {
    /// Build a simulator (allocates the per-arc queues).
    pub fn new(cfg: HypercubeSimConfig) -> HypercubeSim {
        cfg.validate();
        let cube = Hypercube::new(cfg.dim);
        let arcs = cube.num_arcs();
        let mut root = SimRng::new(cfg.seed);
        let mut arrival_rng = root.split();
        let dest_rng = root.split();
        let route_rng = root.split();
        let contention_rng = root.split();
        let mask_sampler = match &cfg.dest {
            DestinationSpec::BitFlip => None,
            DestinationSpec::MaskPmf(pmf) => Some(MaskSampler::new(pmf)),
        };
        // Batch size for the delay CI: aim for ~30 batches over the window.
        let expected_packets =
            (cfg.lambda * cube.num_nodes() as f64 * (cfg.horizon - cfg.warmup)).max(64.0);
        let batch = (expected_packets / 32.0).ceil() as u64;
        let collector = MetricsCollector::new(cfg.warmup, cfg.horizon, batch, cfg.seed);
        // Calendar sizing hint: arrivals (λ·2^d per unit) plus one
        // completion per hop (≤ d per packet). Only bucket granularity
        // depends on this; correctness never does.
        let events_per_unit = cfg.lambda * cube.num_nodes() as f64 * (1.0 + cfg.dim as f64);
        let mut events = Scheduler::new(cfg.scheduler, events_per_unit);
        match cfg.arrivals {
            ArrivalModel::Poisson => {
                // First merged arrival; rate λ·2^d.
                let total_rate = cfg.lambda * cube.num_nodes() as f64;
                if total_rate > 0.0 {
                    events.push(arrival_rng.exp(total_rate), Ev::Arrival);
                }
            }
            ArrivalModel::Slotted { .. } => {
                events.push(0.0, Ev::SlotBoundary);
            }
        }
        let dim = cfg.dim;
        let warmup = cfg.warmup;
        HypercubeSim {
            bags: if cfg.contention == ContentionPolicy::Random {
                vec![ArcBag::new(); arcs]
            } else {
                Vec::new()
            },
            cfg,
            cube,
            pool: SlabPool::with_capacity(1024),
            arcs: (0..arcs)
                .map(|arc| {
                    let (node, d) = ((arc / dim) as u32, arc % dim);
                    ArcState {
                        waiting: ArcFifo::new(),
                        to_node_dim: (node ^ (1 << d)) | ((d as u32) << 27),
                    }
                })
                .collect(),
            events,
            events_processed: 0,
            arrival_rng,
            dest_rng,
            route_rng,
            contention_rng,
            mask_sampler,
            collector,
            dim_arrivals: vec![0; dim],
            dim_occupancy: (0..dim)
                .map(|_| hyperroute_desim::TimeIntegral::new(0.0, 0.0))
                .collect(),
            dim_occ_reset_done: warmup == 0.0,
            now: 0.0,
        }
    }

    /// Track the pooled occupancy of one dimension's arcs; integration
    /// restarts at the warm-up boundary and freezes at the horizon, like
    /// the main collector's number-in-system signal.
    fn bump_dim_occupancy(&mut self, t: f64, dim: usize, delta: f64) {
        if !self.dim_occ_reset_done && t >= self.cfg.warmup {
            let w = self.cfg.warmup;
            for tw in &mut self.dim_occupancy {
                tw.add(w, 0.0);
                tw.reset(w);
            }
            self.dim_occ_reset_done = true;
        }
        if t < self.cfg.horizon {
            self.dim_occupancy[dim].add(t, delta);
        }
    }

    /// Run to completion and summarise.
    pub fn run(self) -> HypercubeReport {
        self.run_observed(&mut NullObserver)
    }

    /// Run to completion under a streaming [`Observer`] and summarise.
    ///
    /// The observer sees every event (before it is applied) and every
    /// delivery; it never changes the simulation — reports are
    /// bit-identical to an unobserved [`HypercubeSim::run`].
    pub fn run_observed<O: Observer>(mut self, obs: &mut O) -> HypercubeReport {
        self.drive(obs);
        self.report()
    }

    /// Run to completion, additionally sampling the total number-in-system
    /// every `interval` time units.
    #[deprecated(
        since = "0.2.0",
        note = "run with an `observe::TimeSeriesProbe` via `run_observed` instead"
    )]
    pub fn run_sampled(self, interval: f64) -> (HypercubeReport, Vec<(f64, f64)>) {
        let mut probe = TimeSeriesProbe::new(interval, self.cfg.horizon);
        let report = self.run_observed(&mut probe);
        (report, probe.into_samples())
    }

    fn drive<O: Observer>(&mut self, obs: &mut O) {
        while let Some((t, ev)) = self.events.pop() {
            obs.on_event(t, self.collector.current_in_system());
            self.events_processed += 1;
            self.now = t;
            match ev {
                Ev::Arrival => self.on_merged_arrival(t, obs),
                Ev::SlotBoundary => self.on_slot_boundary(t, obs),
                Ev::Complete(arc, pkt) => self.on_complete(t, arc as usize, pkt, obs),
            }
            if !self.cfg.drain && t >= self.cfg.horizon {
                break;
            }
        }
    }

    fn on_merged_arrival<O: Observer>(&mut self, t: f64, obs: &mut O) {
        // Schedule the next merged arrival first (keeps the stream's draws
        // independent of per-packet sampling).
        let total_rate = self.cfg.lambda * self.cube.num_nodes() as f64;
        let next = t + self.arrival_rng.exp(total_rate);
        if next < self.cfg.horizon {
            self.events.push(next, Ev::Arrival);
        }
        let node = self.arrival_rng.below(self.cube.num_nodes()) as u32;
        self.generate_packet(t, node, obs);
    }

    fn on_slot_boundary<O: Observer>(&mut self, t: f64, obs: &mut O) {
        let ArrivalModel::Slotted { slots_per_unit } = self.cfg.arrivals else {
            unreachable!("slot boundary event outside slotted model");
        };
        let r = 1.0 / slots_per_unit as f64;
        // Total batch over all nodes is Poisson(λ·2^d·r); nodes uniform.
        let mean = self.cfg.lambda * self.cube.num_nodes() as f64 * r;
        let batch = self.arrival_rng.poisson(mean);
        for _ in 0..batch {
            let node = self.arrival_rng.below(self.cube.num_nodes()) as u32;
            self.generate_packet(t, node, obs);
        }
        let next = t + r;
        if next < self.cfg.horizon {
            self.events.push(next, Ev::SlotBoundary);
        }
    }

    /// One destination mask from the configured distribution.
    fn sample_dest_mask(&mut self) -> u32 {
        match &self.mask_sampler {
            Some(sampler) => sampler.sample(&mut self.dest_rng),
            None => sample_flip_mask(&mut self.dest_rng, self.cfg.dim, self.cfg.p),
        }
    }

    fn generate_packet<O: Observer>(&mut self, t: f64, node: u32, obs: &mut O) {
        self.collector.on_generated(t);
        let d = self.cfg.dim;
        match self.cfg.scheme {
            Scheme::Greedy | Scheme::RandomOrder => {
                let mask = self.sample_dest_mask();
                let pkt = Packet::new(t, mask, NO_SECOND_LEG);
                if mask == 0 {
                    self.collector.on_delivered(t, t, 0);
                    obs.on_delivered(t, t);
                } else {
                    self.enqueue(t, node, pkt);
                }
            }
            Scheme::TwoPhaseValiant => {
                // Leg 1: uniformly random intermediate node ⇒ the leg mask
                // flips each bit with probability 1/2.
                let inter_mask = sample_flip_mask(&mut self.dest_rng, d, 0.5);
                let dest_mask = self.sample_dest_mask();
                let final_dest = node ^ dest_mask;
                if inter_mask == 0 && node == final_dest {
                    self.collector.on_delivered(t, t, 0);
                    obs.on_delivered(t, t);
                    return;
                }
                if inter_mask == 0 {
                    // Degenerate leg 1; go straight to leg 2.
                    let pkt = Packet::new(t, node ^ final_dest, NO_SECOND_LEG);
                    self.enqueue(t, node, pkt);
                } else {
                    let pkt = Packet::new(t, inter_mask, final_dest);
                    self.enqueue(t, node, pkt);
                }
            }
        }
    }

    /// Put `pkt` (whose `remaining` is non-empty) into the queue of the arc
    /// its scheme chooses out of `node`; start service if the arc is idle.
    fn enqueue(&mut self, t: f64, node: u32, mut pkt: Packet) {
        debug_assert!(pkt.remaining != 0);
        let dim = next_dim(self.cfg.scheme, pkt.remaining, &mut self.route_rng);
        pkt.remaining &= !(1u32 << dim);
        let arc = node as usize * self.cfg.dim + dim;
        if t >= self.cfg.warmup && t < self.cfg.horizon {
            self.dim_arrivals[dim] += 1;
        }
        self.bump_dim_occupancy(t, dim, 1.0);
        if self.arcs[arc].to_node_dim & ARC_BUSY == 0 {
            self.arcs[arc].to_node_dim |= ARC_BUSY;
            self.events.push(t + 1.0, Ev::Complete(arc as u32, pkt));
        } else if self.cfg.contention == ContentionPolicy::Random {
            self.bags[arc].insert(pkt);
        } else {
            self.arcs[arc].waiting.push_back(&mut self.pool, pkt);
        }
    }

    /// Pick the next waiting packet per the contention policy and start
    /// its service. FIFO pops the head of the intrusive list, LIFO the
    /// tail (both `O(1)`). Random draws a uniform position from the arc's
    /// [`ArcBag`] — indexed storage where removal is a `swap_remove`, so
    /// the pick is `O(1)` however long the queue grows (the intrusive
    /// list would walk `O(min(n, len-n))` links; see [`ArcFifo::take_nth`]
    /// for why). The bag does not preserve arrival order, which only a
    /// policy that ignores arrival order can afford.
    fn start_next_service(&mut self, t: f64, arc: usize) {
        debug_assert!(self.arcs[arc].to_node_dim & ARC_BUSY != 0);
        let pkt = match self.cfg.contention {
            ContentionPolicy::Fifo => self.arcs[arc].waiting.pop_front(&mut self.pool),
            ContentionPolicy::Lifo => self.arcs[arc].waiting.pop_back(&mut self.pool),
            ContentionPolicy::Random => {
                let len = self.bags[arc].len();
                if len == 0 {
                    None
                } else {
                    let n = self.contention_rng.below(len);
                    self.bags[arc].take(n)
                }
            }
        };
        match pkt {
            Some(pkt) => self.events.push(t + 1.0, Ev::Complete(arc as u32, pkt)),
            None => self.arcs[arc].to_node_dim &= !ARC_BUSY,
        }
    }

    fn on_complete<O: Observer>(&mut self, t: f64, arc: usize, mut pkt: Packet, obs: &mut O) {
        let packed = self.arcs[arc].to_node_dim;
        debug_assert!(packed & ARC_BUSY != 0, "completion on an idle arc");
        self.bump_dim_occupancy(t, (packed >> 27) as usize, -1.0);
        self.start_next_service(t, arc);
        pkt.hops += 1;
        let node = packed & ARC_NODE_MASK;
        if pkt.remaining != 0 {
            self.enqueue(t, node, pkt);
        } else if pkt.second_leg_dest != NO_SECOND_LEG {
            let mask = node ^ pkt.second_leg_dest;
            pkt.second_leg_dest = NO_SECOND_LEG;
            if mask == 0 {
                self.collector.on_delivered(t, pkt.born, pkt.hops);
                obs.on_delivered(t, pkt.born);
            } else {
                pkt.remaining = mask;
                self.enqueue(t, node, pkt);
            }
        } else {
            self.collector.on_delivered(t, pkt.born, pkt.hops);
            obs.on_delivered(t, pkt.born);
        }
    }

    fn report(&self) -> HypercubeReport {
        let cfg = &self.cfg;
        let t_end = cfg.horizon;
        let span = cfg.horizon - cfg.warmup;
        let arcs_per_dim = self.cube.num_nodes() as f64;
        let per_dim_arc_rate: Vec<f64> = self
            .dim_arrivals
            .iter()
            .map(|&c| c as f64 / (span * arcs_per_dim))
            .collect();
        let per_dim_mean_queue: Vec<f64> = self
            .dim_occupancy
            .iter()
            .map(|tw| tw.mean(cfg.horizon) / arcs_per_dim)
            .collect();
        let little = self.collector.little_check(t_end);
        HypercubeReport {
            dim: cfg.dim,
            lambda: cfg.lambda,
            p: cfg.p,
            rho: cfg.load_factor(),
            delay: self.collector.delay_stats(),
            mean_hops: self.collector.mean_hops(),
            zero_hop_fraction: self.collector.zero_hop_fraction(),
            mean_in_system: self.collector.mean_in_system(t_end),
            peak_in_system: self.collector.peak_in_system(),
            throughput: self.collector.throughput(t_end),
            little_error: little.relative_error(),
            per_dim_arc_rate,
            per_dim_mean_queue,
            generated: self.collector.generated(),
            delivered: self.collector.delivered_total(),
            events: self.events_processed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ContentionPolicy;
    use hyperroute_analysis::hypercube_bounds;

    fn base_cfg() -> HypercubeSimConfig {
        HypercubeSimConfig {
            dim: 4,
            lambda: 1.2,
            p: 0.5, // ρ = 0.6
            horizon: 3_000.0,
            warmup: 500.0,
            seed: 12,
            ..Default::default()
        }
    }

    #[test]
    fn arc_state_is_16_bytes() {
        // The in-service packet rides inside the `Complete` event; the
        // per-arc residue is the waiter list + packed routing word. Four
        // arcs per cache line keeps the random arc walk L1-resident at
        // d = 8 (1024 arcs × 16 B = 16 KiB).
        assert_eq!(std::mem::size_of::<ArcState>(), 16);
    }

    #[test]
    fn everything_generated_is_delivered_with_drain() {
        let r = HypercubeSim::new(base_cfg()).run();
        assert_eq!(r.generated, r.delivered);
        assert!(r.generated > 50_000, "generated {}", r.generated);
    }

    #[test]
    fn delay_within_paper_bracket() {
        let cfg = base_cfg();
        let r = HypercubeSim::new(cfg.clone()).run();
        let lb = hypercube_bounds::greedy_lower_bound(cfg.dim, cfg.lambda, cfg.p);
        let ub = hypercube_bounds::greedy_upper_bound(cfg.dim, cfg.lambda, cfg.p);
        assert!(
            r.delay.mean >= lb * 0.97 && r.delay.mean <= ub * 1.03,
            "measured {} outside [{lb}, {ub}]",
            r.delay.mean
        );
    }

    #[test]
    fn mean_hops_matches_dp_and_zero_hop_fraction() {
        let cfg = base_cfg();
        let r = HypercubeSim::new(cfg).run();
        assert!(
            (r.mean_hops - 2.0).abs() < 0.05,
            "mean hops {} vs dp = 2",
            r.mean_hops
        );
        // (1-p)^d = 0.0625.
        assert!(
            (r.zero_hop_fraction - 0.0625).abs() < 0.01,
            "zero-hop {}",
            r.zero_hop_fraction
        );
    }

    #[test]
    fn proposition_5_arc_rates() {
        let cfg = base_cfg();
        let r = HypercubeSim::new(cfg).run();
        for (dim, &rate) in r.per_dim_arc_rate.iter().enumerate() {
            assert!(
                (rate - 0.6).abs() < 0.03,
                "dimension {dim}: per-arc rate {rate} vs ρ=0.6"
            );
        }
    }

    #[test]
    fn little_law_holds() {
        let r = HypercubeSim::new(base_cfg()).run();
        assert!(r.little_error < 0.05, "little error {}", r.little_error);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = HypercubeSim::new(base_cfg()).run();
        let b = HypercubeSim::new(base_cfg()).run();
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.delay.mean, b.delay.mean);
        let mut cfg2 = base_cfg();
        cfg2.seed ^= 1;
        let c = HypercubeSim::new(cfg2).run();
        assert_ne!(a.delay.mean, c.delay.mean);
    }

    #[test]
    fn p_one_matches_exact_formula() {
        // §3.3 end: p = 1 ⇒ T = d + ρ/(2(1-ρ)) exactly (disjoint paths).
        let cfg = HypercubeSimConfig {
            dim: 4,
            lambda: 0.7,
            p: 1.0,
            horizon: 4_000.0,
            warmup: 500.0,
            seed: 5,
            ..Default::default()
        };
        let r = HypercubeSim::new(cfg).run();
        let exact = hypercube_bounds::p_one_exact_delay(4, 0.7);
        assert!(
            (r.delay.mean - exact).abs() / exact < 0.02,
            "measured {} vs exact {exact}",
            r.delay.mean
        );
        // Every packet takes exactly d hops.
        assert!((r.mean_hops - 4.0).abs() < 1e-9);
        assert_eq!(r.zero_hop_fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "slot per unit")]
    fn rejects_zero_slots_per_unit() {
        let cfg = HypercubeSimConfig {
            arrivals: ArrivalModel::Slotted { slots_per_unit: 0 },
            ..base_cfg()
        };
        HypercubeSim::new(cfg);
    }

    #[test]
    fn p_zero_all_packets_self_delivered() {
        let cfg = HypercubeSimConfig {
            dim: 5,
            lambda: 1.0,
            p: 0.0,
            horizon: 200.0,
            warmup: 10.0,
            seed: 8,
            ..Default::default()
        };
        let r = HypercubeSim::new(cfg).run();
        assert_eq!(r.zero_hop_fraction, 1.0);
        assert_eq!(r.delay.mean, 0.0);
        assert_eq!(r.mean_hops, 0.0);
    }

    #[test]
    fn random_order_scheme_also_stable_and_shortest_path() {
        let mut cfg = base_cfg();
        cfg.scheme = Scheme::RandomOrder;
        cfg.horizon = 2_000.0;
        let r = HypercubeSim::new(cfg).run();
        assert_eq!(r.generated, r.delivered);
        // Shortest paths: mean hops still dp.
        assert!((r.mean_hops - 2.0).abs() < 0.06, "hops {}", r.mean_hops);
    }

    #[test]
    fn valiant_doubles_path_length() {
        let mut cfg = base_cfg();
        cfg.scheme = Scheme::TwoPhaseValiant;
        cfg.lambda = 0.4; // keep effective load below 1 (paths ~ d/2 + dp)
        cfg.horizon = 2_000.0;
        let r = HypercubeSim::new(cfg.clone()).run();
        assert_eq!(r.generated, r.delivered);
        // Expected hops = d/2 (leg 1) + dp (leg 2) = 2 + 2 = 4.
        assert!((r.mean_hops - 4.0).abs() < 0.1, "hops {}", r.mean_hops);
        // Delay strictly worse than direct greedy at the same (λ, p).
        let direct = HypercubeSim::new(HypercubeSimConfig {
            scheme: Scheme::Greedy,
            ..cfg
        })
        .run();
        assert!(r.delay.mean > direct.delay.mean);
    }

    #[test]
    fn slotted_arrivals_obey_slotted_bound() {
        let cfg = HypercubeSimConfig {
            dim: 4,
            lambda: 1.0,
            p: 0.5,
            arrivals: ArrivalModel::Slotted { slots_per_unit: 2 },
            horizon: 3_000.0,
            warmup: 500.0,
            seed: 77,
            ..Default::default()
        };
        let r = HypercubeSim::new(cfg).run();
        let ub = hypercube_bounds::slotted_upper_bound(4, 1.0, 0.5, 0.5);
        assert!(
            r.delay.mean <= ub * 1.03,
            "slotted delay {} above bound {ub}",
            r.delay.mean
        );
        assert_eq!(r.generated, r.delivered);
    }

    #[test]
    fn proposition_13_per_dimension_occupancy() {
        // Eq. (16): dimension-0 arcs are exactly M/D/1, so their mean
        // occupancy is ρ + ρ²/(2(1-ρ)); Eq. (15) machinery: every deeper
        // dimension holds at least ρ (service alone) and at most the
        // product-form ρ/(1-ρ).
        let cfg = base_cfg(); // ρ = 0.6
        let rho: f64 = 0.6;
        let r = HypercubeSim::new(cfg).run();
        let md1_exact = rho + rho * rho / (2.0 * (1.0 - rho));
        assert!(
            (r.per_dim_mean_queue[0] - md1_exact).abs() < 0.02,
            "dim 0 occupancy {} vs M/D/1 {md1_exact}",
            r.per_dim_mean_queue[0]
        );
        for (dim, &n) in r.per_dim_mean_queue.iter().enumerate().skip(1) {
            assert!(n >= rho * 0.97, "dim {dim} occupancy {n} below ρ = {rho}");
            assert!(
                n <= rho / (1.0 - rho) * 1.05,
                "dim {dim} occupancy {n} above product-form cap"
            );
        }
        // Measured effect worth recording: occupancy *decreases* with the
        // dimension index — deterministic unit service smooths traffic, so
        // deeper dimensions see a stream more regular than Poisson and
        // queue less than the M/D/1 first dimension. (This is why the
        // product-form PS network, whose every server sees geometric
        // occupancy ρ/(1-ρ), is an upper bound and not tight.)
        assert!(
            r.per_dim_mean_queue[3] <= r.per_dim_mean_queue[0] + 0.02,
            "{:?}",
            r.per_dim_mean_queue
        );
    }

    #[test]
    fn contention_policies_share_mean_but_not_tail() {
        // Non-preemptive work-conserving policies that ignore service
        // times have (near-)identical mean delay; LIFO fattens the tail.
        let run = |contention| {
            let cfg = HypercubeSimConfig {
                contention,
                horizon: 6_000.0,
                warmup: 1_000.0,
                ..base_cfg()
            };
            HypercubeSim::new(cfg).run()
        };
        let fifo = run(ContentionPolicy::Fifo);
        let lifo = run(ContentionPolicy::Lifo);
        let rand = run(ContentionPolicy::Random);
        let rel = |a: f64, b: f64| (a - b).abs() / a;
        assert!(
            rel(fifo.delay.mean, lifo.delay.mean) < 0.06,
            "means diverge: fifo {} lifo {}",
            fifo.delay.mean,
            lifo.delay.mean
        );
        assert!(rel(fifo.delay.mean, rand.delay.mean) < 0.06);
        assert!(
            lifo.delay.p99 > fifo.delay.p99,
            "LIFO p99 {} not above FIFO p99 {}",
            lifo.delay.p99,
            fifo.delay.p99
        );
    }

    #[test]
    fn custom_destination_equivalent_to_bitflip() {
        // A product-of-flips pmf with uniform q must match BitFlip(q) in
        // law; same seed gives close statistics (not identical draws: the
        // samplers consume different variates).
        let q = 0.5;
        let base = base_cfg();
        let bitflip = HypercubeSim::new(base.clone()).run();
        let custom = HypercubeSim::new(HypercubeSimConfig {
            dest: DestinationSpec::product_of_flips(&[q; 4]),
            ..base
        })
        .run();
        assert!(
            (bitflip.delay.mean - custom.delay.mean).abs() / bitflip.delay.mean < 0.05,
            "bitflip {} vs custom {}",
            bitflip.delay.mean,
            custom.delay.mean
        );
        assert!((bitflip.mean_hops - custom.mean_hops).abs() < 0.1);
    }

    #[test]
    fn skewed_destination_loads_bottleneck_dimension() {
        // Flip dim 0 always, others rarely: arc rate in dim 0 is λ, in the
        // others λ·0.1 (Prop. 5's generalisation: rate_j = λ·p_j).
        let lambda = 0.8;
        let cfg = HypercubeSimConfig {
            dim: 4,
            lambda,
            dest: DestinationSpec::product_of_flips(&[1.0, 0.1, 0.1, 0.1]),
            horizon: 3_000.0,
            warmup: 500.0,
            seed: 99,
            ..Default::default()
        };
        let r = HypercubeSim::new(cfg).run();
        assert!(
            (r.per_dim_arc_rate[0] - lambda).abs() < 0.04,
            "dim0 rate {}",
            r.per_dim_arc_rate[0]
        );
        for dim in 1..4 {
            assert!(
                (r.per_dim_arc_rate[dim] - lambda * 0.1).abs() < 0.02,
                "dim{dim} rate {}",
                r.per_dim_arc_rate[dim]
            );
        }
        // No packet is self-destined (dim 0 always flips).
        assert_eq!(r.zero_hop_fraction, 0.0);
    }

    #[test]
    fn sampled_run_produces_monotone_timestamps() {
        let (_, samples) = HypercubeSim::new(base_cfg()).run_sampled(50.0);
        assert!(samples.len() >= 50);
        assert!(samples.windows(2).all(|w| w[0].0 < w[1].0));
        // In a stable run the trajectory stays bounded.
        let max_n = samples.iter().map(|&(_, n)| n).fold(0.0, f64::max);
        assert!(max_n < 2_000.0, "suspicious queue growth: {max_n}");
    }
}
