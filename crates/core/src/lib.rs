//! Packet-level simulators for greedy routing in hypercubes and
//! butterflies — the reproduction's core.
//!
//! This crate simulates the paper's model *exactly*: independent Poisson
//! packet generation at every node, destinations drawn by independent
//! bit-flips with probability `p` (Eq. (1) / Lemma 1), unit transmission
//! times, one packet per arc at a time, infinite buffers, FIFO contention
//! resolution, and no idling. On top of the same engine it provides the
//! baseline and ablation schemes discussed in the paper, the abstract
//! equivalent queueing networks of §3.1/§4.3 under both FIFO and
//! Processor-Sharing service, static batch routing, and empirical stability
//! detection.
//!
//! # The scenario API
//!
//! Every workload is expressed as one typed [`scenario::Scenario`]:
//! a [`scenario::Topology`] (hypercube, butterfly, equivalent network, or
//! the §2.3 pipelined scheme), a [`scenario::Workload`] (arrival model,
//! `λ`, destination distribution), a [`scenario::Policy`] (routing scheme,
//! contention rule, service discipline) and a [`scenario::RunControl`]
//! (horizon, warm-up, seed, scheduler backend). The builder validates the
//! combination up front and returns a structured
//! [`scenario::ConfigError`]; `run()` dispatches through the
//! [`scenario::Simulator`] trait onto the matching engine and yields a
//! unified [`scenario::Report`].
//!
//! ```
//! use hyperroute_core::scenario::{Scenario, Topology};
//!
//! let report = Scenario::builder(Topology::Hypercube { dim: 4 })
//!     .lambda(1.0)
//!     .p(0.5) // load factor ρ = λp = 0.5
//!     .horizon(2_000.0)
//!     .warmup(400.0)
//!     .seed(1)
//!     .build()
//!     .expect("valid scenario")
//!     .run()
//!     .expect("runs to completion");
//! // Prop. 12: T ≤ dp/(1-ρ) = 4. Prop. 13: T ≥ dp + pρ/(2(1-ρ)) = 2.25.
//! assert!(report.delay.mean < 4.0 && report.delay.mean > 2.0);
//! ```
//!
//! Scenarios serialise to JSON files ([`scenario::Scenario::to_json`] /
//! [`scenario::Scenario::from_json`]) and parameter grids run as
//! deterministic [`scenario::Sweep`]s with splitmix-derived per-point
//! seeds. Because every grid point is a pure function of the spec and
//! its row-major index ([`scenario::Sweep::scenario_at`]), grids also
//! shard across processes and machines: the `hyperroute-grid` crate cuts
//! sweeps into serialisable slices, runs them on thread-pool or
//! subprocess-worker backends, and merges results byte-identical to
//! [`scenario::Sweep::run`]. Live runs are tapped through the composable
//! [`observe`] probes (time series, occupancy, delay reservoirs) without
//! touching the simulation's random draws; high-frequency consumers
//! batch the per-event virtual call with [`observe::BufferedObserver`].
//!
//! The per-simulator config structs (`HypercubeSimConfig`,
//! `ButterflySimConfig`, `EqNetConfig`, `PipelinedConfig`) remain as
//! deprecated shims for one release; scenario-driven runs are
//! byte-identical to them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod butterfly_sim;
pub mod config;
pub mod equivalent_network;
pub mod hypercube_sim;
pub mod metrics;
pub mod observe;
pub mod packet;
pub mod pipelined;
pub mod pool;
pub mod runner;
pub mod scenario;
pub mod stability;

pub use config::{ArrivalModel, ConfigError, ContentionPolicy, DestinationSpec, Scheme};
pub use metrics::DelayStats;
pub use observe::{
    BufferedObserver, NullObserver, Observer, OccupancyProbe, ReservoirProbe, TimeSeriesProbe,
};
pub use scenario::{Report, Scenario, Simulator, Sweep, Topology};

#[allow(deprecated)]
pub use hypercube_sim::{HypercubeReport, HypercubeSim, HypercubeSimConfig};
