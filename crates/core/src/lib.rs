//! Packet-level simulators for greedy routing in hypercubes and
//! butterflies — the reproduction's core.
//!
//! This crate simulates the paper's model *exactly*: independent Poisson
//! packet generation at every node, destinations drawn by independent
//! bit-flips with probability `p` (Eq. (1) / Lemma 1), unit transmission
//! times, one packet per arc at a time, infinite buffers, FIFO contention
//! resolution, and no idling. On top of the same engine it provides the
//! baseline and ablation schemes discussed in the paper, the abstract
//! equivalent queueing networks of §3.1/§4.3 under both FIFO and
//! Processor-Sharing service, static batch routing, and empirical stability
//! detection.
//!
//! # Quick start
//!
//! ```
//! use hyperroute_core::hypercube_sim::{HypercubeSim, HypercubeSimConfig};
//!
//! let cfg = HypercubeSimConfig {
//!     dim: 4,
//!     lambda: 1.0,
//!     p: 0.5, // load factor ρ = λp = 0.5
//!     horizon: 2_000.0,
//!     warmup: 400.0,
//!     seed: 1,
//!     ..Default::default()
//! };
//! let report = HypercubeSim::new(cfg).run();
//! // Prop. 12: T ≤ dp/(1-ρ) = 4.
//! assert!(report.delay.mean < 4.0);
//! // Prop. 13: T ≥ dp + pρ/(2(1-ρ)) = 2.25.
//! assert!(report.delay.mean > 2.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod butterfly_sim;
pub mod config;
pub mod equivalent_network;
pub mod hypercube_sim;
pub mod metrics;
pub mod packet;
pub mod pipelined;
pub mod pool;
pub mod stability;

pub use config::{ArrivalModel, Scheme};
pub use hypercube_sim::{HypercubeReport, HypercubeSim, HypercubeSimConfig};
pub use metrics::DelayStats;
