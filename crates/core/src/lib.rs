//! Packet-level simulators for greedy routing — one topology-generic
//! engine, many topologies.
//!
//! This crate simulates the paper's model *exactly*: independent Poisson
//! packet generation at every node, destinations drawn by independent
//! bit-flips with probability `p` (Eq. (1) / Lemma 1), unit transmission
//! times, one packet per arc at a time, infinite buffers, FIFO contention
//! resolution, and no idling. On the same engine it runs the baseline and
//! ablation schemes discussed in the paper, the abstract equivalent
//! queueing networks of §3.1/§4.3 under both FIFO and Processor-Sharing
//! service, static batch routing, empirical stability detection — and
//! topologies beyond the paper (greedy routing in rings, the Papillon
//! direction).
//!
//! # Architecture: one generic engine, thin topology specs
//!
//! The event loop lives **once**, in [`engine`]: a monomorphised
//! `Engine<Spec>` owns the slab packet pool, the calendar/heap scheduler,
//! the contention policies, warm-up truncation, drain control, metrics
//! and the observer taps. What a topology contributes is an
//! [`engine::EngineSpec`] — its packet representation, destination law,
//! next-arc choice and per-topology statistics. The current
//! instantiations:
//!
//! | module | spec | the paper's name |
//! |---|---|---|
//! | [`hypercube_sim`] | schemes over XOR masks, per-dimension stats | §3 |
//! | [`butterfly_sim`] | unique levelled paths, per-level stats | §4 |
//! | [`graph_sim`] | **any** `RoutingTopology` as pure data | ring (Papillon), torus, de Bruijn, the generated sparse graphs |
//!
//! Two simulators deliberately stay off the generic engine:
//! [`equivalent_network`] (per-*server* PS service with positional
//! coupling — the §3.1 proof device) and [`pipelined`] (round-driven, no
//! event queue). They share the scheduler, metrics and report surface.
//!
//! ## How to add a topology with zero event code
//!
//! The blanket [`graph_sim::GraphSpec`] runs any
//! `hyperroute_topology::RoutingTopology` on the generic engine — the
//! torus and de Bruijn graphs are the worked examples, each landed as
//! pure graph code. The recipe is:
//!
//! 1. Implement `RoutingTopology` for the graph (dense arcs + greedy
//!    `next_arc` + `distance`, plus a `mean_distance_hint` closed form if
//!    you have one); property tests in `tests/proptest_routing.rs` check
//!    strict per-hop progress.
//! 2. Add a [`scenario::Topology`] variant and a validation arm, and
//!    register it in `Scenario::into_simulator` as
//!    `GraphSim::from_parts(YourGraph::new(..), dest, self, graph_ext)`
//!    — done. Destination laws (uniform / weighted-node pmf), arc-fault
//!    masks with all four fallbacks, contention policies, slotted
//!    arrivals, sweeps, sharded grids, observers, stability probes and
//!    the corpus gate all work immediately; reports carry the generic
//!    [`scenario::GraphExt`].
//! 3. Drop scenario files into `scenarios/` and regenerate baselines
//!    with `hyperroute-grid run-corpus --update`.
//!
//! Generated sparse graphs (`hyperroute-sparse`: Kleinberg small-world,
//! hyperbolic disk, configuration-model scale-free and expander) skip
//! step 1 entirely — `SparseTopology` already implements the trait over
//! any seeded CSR + embedding, so adding a *generator* is a ~100-line
//! pure function (the walkthrough lives in that crate's docs). Because
//! metric greedy can stall, their runs additionally report the
//! `SUCCESS | LOCAL_MINIMUM | DEAD_END` route-outcome taxonomy in
//! [`scenario::OutcomeExt`].
//!
//! Topologies that need custom per-hop state or statistics (the
//! hypercube's schemes, the butterfly's per-level rates) still write a
//! hand-tuned [`engine::EngineSpec`] (~150 lines) against the same
//! engine; the plain ring keeps its byte-compatible `RingExt` through a
//! specialised extension builder over the blanket spec.
//!
//! # Fault handling: the five-fallback model
//!
//! A [`config::FaultSpec`] kills a set of directed arcs — a static
//! seeded/explicit mask, an optional dynamic arrival process
//! ([`config::FaultArrivals`]: further arcs die mid-run at seeded
//! exponential interarrival times), or both. When a packet's greedy arc
//! is dead, its [`config::FaultFallback`] decides what happens next:
//!
//! | fallback | recovery rule | needs |
//! |---|---|---|
//! | `Drop` | count the packet as dropped, always | nothing |
//! | `Detour` | first live same-kind arc with strict shortest-path progress | spare greedy arcs (hypercube, torus) |
//! | `Multipath` | first live arc from the topology's **ranked alternates**, regressing ones capped per packet | `RoutingTopology::alternate_arcs` |
//! | `Retry { budget }` | free detour if one exists, else any live ranked alternate, charged against a per-packet deflection budget | both |
//! | `Escape { ttl }` | GOAFR-style walk to the best live neighbour even **without** strict progress, up to `ttl` paid (non-improving) hops per packet | a metric `distance` (sparse topologies; recovers local minima, not just dead arcs) |
//!
//! Whatever the fallback, conservation stays exact: every generated
//! packet ends as delivered or dropped (`generated == delivered +
//! dropped`, retries counted once), and reruns are bit-identical because
//! the mask, the dynamic arrival schedule, and the traffic are all
//! independently seeded.
//!
//! The ranked-alternate fallbacks are what make faults survivable on
//! topologies whose greedy paths are *unique*. The worked example is the
//! butterfly's back-routing: a greedy butterfly path crosses levels
//! `0..d` once, choosing the straight or cross arc at level `l` by the
//! destination row bit `l`. If the required arc at level `l` is dead,
//! `alternate_arcs` offers the *sibling* arc — the other kind at the
//! same level. Taking it sets row bit `l` wrong, so when the packet
//! reaches level `d` it is on the destination column but the wrong row;
//! the topology then routes it through a **fresh pass** (re-entering at
//! level 0 of its current row, the extra-pass analogue of back-routing
//! through the spare stage permutation), which re-fixes the damaged bit
//! and retries the dead level with new row context. Each deflection
//! costs at most `d` extra hops — one bounded-stretch pass — and the
//! per-packet deflection cap keeps worst-case masks from cycling
//! packets forever. The de Bruijn graph plays the same trick with its
//! binary sibling shift (stretch ≤ diameter), the fat tree with its
//! second, equal-cost up arc (stretch 0 while ascending). Experiment
//! E27 quantifies what this buys: delivery rates on the butterfly and
//! de Bruijn graph under `Multipath`/`Retry` sit far above the
//! `Drop`/`Detour` baselines at equal fault fractions.
//!
//! # The scenario API
//!
//! Every workload is expressed as one typed [`scenario::Scenario`]:
//! a [`scenario::Topology`] (hypercube, butterfly, equivalent network,
//! pipelined scheme, or ring), a [`scenario::Workload`] (arrival model,
//! `λ`, destination distribution), a [`scenario::Policy`] (routing
//! scheme, contention rule, service discipline) and a
//! [`scenario::RunControl`] (horizon, warm-up, seed, scheduler backend).
//! The builder validates the combination up front and returns a
//! structured [`scenario::ConfigError`]; `run()` dispatches through the
//! [`scenario::Simulator`] trait onto the matching engine and yields a
//! unified [`scenario::Report`].
//!
//! ```
//! use hyperroute_core::scenario::{Scenario, Topology};
//!
//! let report = Scenario::builder(Topology::Hypercube { dim: 4 })
//!     .lambda(1.0)
//!     .p(0.5) // load factor ρ = λp = 0.5
//!     .horizon(2_000.0)
//!     .warmup(400.0)
//!     .seed(1)
//!     .build()
//!     .expect("valid scenario")
//!     .run()
//!     .expect("runs to completion");
//! // Prop. 12: T ≤ dp/(1-ρ) = 4. Prop. 13: T ≥ dp + pρ/(2(1-ρ)) = 2.25.
//! assert!(report.delay.mean < 4.0 && report.delay.mean > 2.0);
//! ```
//!
//! The same spec drives the ring:
//!
//! ```
//! use hyperroute_core::scenario::{Scenario, Topology};
//!
//! let report = Scenario::builder(Topology::Ring { nodes: 16, bidirectional: true })
//!     .lambda(0.3)
//!     .horizon(2_000.0)
//!     .warmup(400.0)
//!     .seed(1)
//!     .build()
//!     .expect("valid scenario")
//!     .run()
//!     .expect("runs to completion");
//! // Uniform destinations on a 16-ring: mean greedy path = 4 hops.
//! let ring = report.ring().expect("ring extension");
//! assert!((ring.mean_hops - 4.0).abs() < 0.2);
//! ```
//!
//! Scenarios serialise to JSON files ([`scenario::Scenario::to_json`] /
//! [`scenario::Scenario::from_json`]) and parameter grids run as
//! deterministic [`scenario::Sweep`]s with splitmix-derived per-point
//! seeds. Because every grid point is a pure function of the spec and
//! its row-major index ([`scenario::Sweep::scenario_at`]), grids also
//! shard across processes and machines: the `hyperroute-grid` crate cuts
//! sweeps into serialisable slices, runs them on thread-pool or
//! subprocess-worker backends, and merges results byte-identical to
//! [`scenario::Sweep::run`]. Live runs are tapped through the composable
//! [`observe`] probes (time series, occupancy, delay reservoirs) without
//! touching the simulation's random draws; high-frequency consumers
//! batch the per-event virtual call with [`observe::BufferedObserver`].
//!
//! # Parallel execution
//!
//! One run can shard across cores: [`scenario::RunControl::workers`]
//! (scenario JSON `run.workers`, builder `.workers(n)`) routes every
//! engine-backed topology through [`parallel::ParallelEngine`] instead
//! of the single-threaded [`engine::Engine`]. The design is
//! conservative parallel discrete-event simulation with **lookahead 1**
//! from the paper's unit transmission times: nodes are partitioned
//! across shard workers (degree-balanced contiguous ranges), time
//! advances in windows `[k, k+1)`, and every completion scheduled in a
//! window fires in the next one — so a coordinator can sort each
//! window's full event population into the exact single-threaded pop
//! order before it runs, hand each shard its slice as an explicit
//! agenda, and replay the shards' effect records in that same order.
//! The payoff is the determinism contract: a sharded report is
//! **byte-identical** to the single-threaded one — same delay stats,
//! same event count, same observer call sequence — for every worker
//! count, so `workers` is purely an execution knob (the differential
//! proptest suite and a `workers=2` corpus arm enforce this).
//! Configurations whose per-hop decisions draw shared randomness
//! (random-order routing, random contention, slotted arrival batches)
//! are rejected by validation at `workers > 1`; everything else —
//! faults, fallbacks, escape walks, observers, telemetry — just works.
//! Sharding pays a two-channel barrier per simulated time unit, so it
//! wins on large, busy graphs and loses on small ones; sweeps that
//! already saturate cores across points should keep `workers` unset.
//!
//! # Observability
//!
//! The [`observe::Observer`] trait is the engine's only tap: default
//! no-op hooks fire on every event, generation, hop (`on_hop`, with the
//! arc and its queue depth), escape-mode hop, drop, service end, and
//! packet delivery. Two observers compose as a tuple, and the contract
//! is strict **non-interference** — hooks receive values the engine
//! already computed, never influence an arc choice or a random draw, so
//! a run observed by anything is byte-identical to the unobserved run
//! (property-tested across every engine-backed topology and both
//! schedulers).
//!
//! On top of the hooks, the `hyperroute-telemetry` crate builds the
//! flight recorder (deterministically sampled per-packet hop traces,
//! exportable as NDJSON or Chrome `chrome://tracing` JSON) and the
//! histogram probe, whose [`telemetry::TelemetryExt`] — log-bucketed
//! [`telemetry::LogHistogram`]s of delay, queue wait, deflections and
//! escape-walk lengths, plus per-arc occupancy integrals and peak
//! depths in [`telemetry::ArcTelemetry`] — attaches to a
//! [`scenario::Report`] only through an explicit post-run call, keeping
//! unobserved baselines byte-identical.
//!
//! Wall-clock profiling is deliberately separate from all of the above
//! (timings never enter a `Report`): building with `--features profile`
//! compiles phase timers into the engine's hot loop ([`profile`]), and
//! the bench harness drains them into the `profile` section of
//! `BENCH_engine.json`. Default builds compile the timer call sites to
//! nothing.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod butterfly_sim;
pub mod config;
pub mod engine;
pub mod equivalent_network;
pub mod graph_sim;
pub mod hypercube_sim;
pub mod metrics;
pub mod observe;
pub mod packet;
pub mod parallel;
pub mod pipelined;
pub mod pool;
pub mod profile;
pub mod runner;
pub mod scenario;
pub mod stability;
pub mod telemetry;

pub use config::{ArrivalModel, ConfigError, ContentionPolicy, DestinationSpec, Scheme};
pub use metrics::DelayStats;
pub use observe::{
    BufferedObserver, NullObserver, Observer, OccupancyProbe, ReservoirProbe, TimeSeriesProbe,
};
pub use scenario::{
    Report, Scenario, ScenarioHash, Simulator, Sweep, Topology, ENGINE_FINGERPRINT,
};
