//! Empirical stability detection (Prop. 6 / Prop. 16 / Eq. (2) probes).
//!
//! A system is declared empirically unstable when the total number of
//! in-flight packets grows with a sustained positive trend over the second
//! half of a run. The drift is normalised by the packet *injection* rate,
//! so the verdict reads as "fraction of offered packets that accumulate":
//! ≈ 0 for stable systems, approaching `1 - 1/ρ` for supercritical ones.

use crate::config::{ConfigError, Scheme};
use crate::observe::TimeSeriesProbe;
use crate::pipelined::least_squares_slope;
use crate::scenario::{Scenario, Topology};
use serde::{Deserialize, Serialize};

/// Outcome of a stability probe.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StabilityVerdict {
    /// Raw least-squares slope of N(t) per unit time (second half).
    pub slope: f64,
    /// Slope divided by the total injection rate — the fraction of offered
    /// packets that accumulate.
    pub normalized_drift: f64,
    /// Verdict at the drift threshold used.
    pub stable: bool,
    /// Mean number-in-system over the sampled second half.
    pub mean_in_system: f64,
}

/// Default normalised-drift threshold separating stable from unstable.
pub const DEFAULT_DRIFT_THRESHOLD: f64 = 0.05;

/// Assess stability from `(time, N)` samples taken at a **fixed** interval,
/// against the total packet injection rate.
pub fn assess_samples(
    samples: &[(f64, f64)],
    injection_rate: f64,
    threshold: f64,
) -> StabilityVerdict {
    assert!(samples.len() >= 8, "need at least 8 samples");
    assert!(injection_rate > 0.0);
    let interval = samples[1].0 - samples[0].0;
    let ys: Vec<f64> = samples.iter().map(|&(_, n)| n).collect();
    let slope_per_sample = least_squares_slope(&ys);
    let slope = slope_per_sample / interval;
    let normalized = slope / injection_rate;
    let second_half = &ys[ys.len() / 2..];
    StabilityVerdict {
        slope,
        normalized_drift: normalized,
        stable: normalized < threshold,
        mean_in_system: second_half.iter().sum::<f64>() / second_half.len() as f64,
    }
}

/// Probe the hypercube under the given scheme: run without draining,
/// sample N(t), and assess the drift.
pub fn probe_hypercube(
    dim: usize,
    lambda: f64,
    p: f64,
    scheme: Scheme,
    horizon: f64,
    seed: u64,
) -> StabilityVerdict {
    let scenario = Scenario::builder(Topology::Hypercube { dim })
        .lambda(lambda)
        .p(p)
        .scheme(scheme)
        .horizon(horizon)
        .warmup(0.0001)
        .seed(seed)
        .build()
        .expect("valid probe scenario");
    probe_scenario(&scenario).expect("pre-validated scenario")
}

/// Probe any scenario: run without draining, sample `N(t)` on a 200-point
/// grid, and assess the drift against the scenario's injection rate.
///
/// The round-driven pipelined topology reports one "event" per round, so
/// its trajectory is the stored backlog at round starts — the same signal
/// its dedicated instability metrics summarise.
pub fn probe_scenario(scenario: &Scenario) -> Result<StabilityVerdict, ConfigError> {
    let mut probed = scenario.clone();
    probed.run.drain = false;
    probed.run.warmup = 0.0001;
    let horizon = probed.run.horizon;
    let sources = match &probed.topology {
        Topology::Butterfly { dim }
        | Topology::Hypercube { dim }
        | Topology::Pipelined { dim, .. }
        | Topology::DeBruijn { dim } => 1usize << dim,
        Topology::Ring { nodes, .. } => *nodes,
        Topology::Torus { radix, dim } => radix.pow(*dim as u32),
        // Only the leaves inject in a fat tree.
        Topology::FatTree { levels } => 1usize << levels,
        Topology::SmallWorld { side, dims, .. } => (*side as usize).pow(*dims),
        Topology::Hyperbolic { nodes, .. }
        | Topology::ScaleFree { nodes, .. }
        | Topology::Expander { nodes, .. } => *nodes as usize,
        Topology::EqNet { .. } => 1,
    };
    let injection = match &probed.topology {
        Topology::EqNet { net, .. } => net
            .build(probed.workload.lambda, probed.workload.p)
            .total_external_rate(),
        _ => probed.workload.lambda * sources as f64,
    };
    let interval = (horizon / 200.0).max(1.0);
    let mut probe = TimeSeriesProbe::new(interval, horizon);
    probed.run_observed(&mut probe)?;
    Ok(assess_samples(
        &probe.into_samples(),
        injection,
        DEFAULT_DRIFT_THRESHOLD,
    ))
}

/// Probe the butterfly.
pub fn probe_butterfly(
    dim: usize,
    lambda: f64,
    p: f64,
    horizon: f64,
    seed: u64,
) -> StabilityVerdict {
    let scenario = Scenario::builder(Topology::Butterfly { dim })
        .lambda(lambda)
        .p(p)
        .horizon(horizon)
        .warmup(0.0001)
        .seed(seed)
        .build()
        .expect("valid probe scenario");
    probe_scenario(&scenario).expect("pre-validated scenario")
}

/// Probe the ring: run without draining and assess the drift against the
/// ring's total injection rate `λ·n`.
pub fn probe_ring(
    nodes: usize,
    bidirectional: bool,
    lambda: f64,
    horizon: f64,
    seed: u64,
) -> StabilityVerdict {
    let scenario = Scenario::builder(Topology::Ring {
        nodes,
        bidirectional,
    })
    .lambda(lambda)
    .horizon(horizon)
    .warmup(0.0001)
    .seed(seed)
    .build()
    .expect("valid probe scenario");
    probe_scenario(&scenario).expect("pre-validated scenario")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subcritical_hypercube_is_stable() {
        // ρ = 0.8: Prop. 6 says stable.
        let v = probe_hypercube(4, 1.6, 0.5, Scheme::Greedy, 2_000.0, 1);
        assert!(v.stable, "drift {} at ρ=0.8", v.normalized_drift);
        assert!(v.normalized_drift.abs() < 0.02);
    }

    #[test]
    fn supercritical_hypercube_is_unstable() {
        // ρ = 1.3 > 1: Eq. (2) says no scheme can cope. Each arc serves at
        // most 1/time-unit; expected drift ≈ (ρ-1)/ρ of offered load.
        let v = probe_hypercube(4, 2.6, 0.5, Scheme::Greedy, 2_000.0, 2);
        assert!(!v.stable, "drift {} at ρ=1.3", v.normalized_drift);
        assert!(
            v.normalized_drift > 0.1,
            "drift {} too small",
            v.normalized_drift
        );
    }

    #[test]
    fn near_critical_stable_side() {
        // ρ = 0.95 still stable (the paper's headline: the whole ρ < 1
        // region works).
        let v = probe_hypercube(4, 1.9, 0.5, Scheme::Greedy, 6_000.0, 3);
        assert!(v.stable, "drift {} at ρ=0.95", v.normalized_drift);
    }

    #[test]
    fn butterfly_stability_both_sides() {
        // ρ_bf = 0.8 stable.
        let s = probe_butterfly(4, 1.6, 0.5, 2_000.0, 4);
        assert!(s.stable, "drift {}", s.normalized_drift);
        // λ max{p,1-p} = 1.25 > 1 unstable.
        let u = probe_butterfly(4, 2.5, 0.5, 2_000.0, 5);
        assert!(!u.stable, "drift {}", u.normalized_drift);
    }

    #[test]
    fn assess_rejects_tiny_inputs() {
        let samples: Vec<(f64, f64)> = (0..4).map(|i| (i as f64, 0.0)).collect();
        let r = std::panic::catch_unwind(|| assess_samples(&samples, 1.0, 0.05));
        assert!(r.is_err());
    }

    #[test]
    fn synthetic_drift_detection() {
        // N(t) = 0.5·t exactly: normalised drift 0.5 at injection rate 1.
        let samples: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, 0.5 * i as f64)).collect();
        let v = assess_samples(&samples, 1.0, 0.05);
        assert!(!v.stable);
        assert!((v.normalized_drift - 0.5).abs() < 1e-9);
        // Flat trajectory: stable.
        let flat: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, 10.0)).collect();
        assert!(assess_samples(&flat, 1.0, 0.05).stable);
    }
}
