//! In-flight packet state and destination sampling.
//!
//! A packet in the hypercube simulator is 24 bytes: its birth time, the
//! bitmask of dimensions it still has to cross, (for the two-phase
//! Valiant scheme) the final destination of its second leg, and the
//! engine's trace id in what used to be padding. Its current node is
//! implied by the arc queue holding it, so it is not stored.

use crate::config::Scheme;
use hyperroute_desim::SimRng;

/// Sentinel meaning "no second leg".
pub const NO_SECOND_LEG: u32 = u32::MAX;

/// An in-flight packet.
#[derive(Clone, Copy, Debug)]
pub struct Packet {
    /// Generation time.
    pub born: f64,
    /// Dimensions still to cross on the current leg (bit `i` set ⇔ must
    /// still cross dimension `i`).
    pub remaining: u32,
    /// Final destination of the second leg (two-phase Valiant only), or
    /// [`NO_SECOND_LEG`].
    pub second_leg_dest: u32,
    /// Engine-assigned trace id (birth-sequence number), stamped by the
    /// engine at generation; rides in what used to be padding.
    pub trace: u32,
    /// Hops taken so far (for path-length statistics).
    pub hops: u16,
}

impl Packet {
    /// Fresh packet with the given leg mask.
    pub fn new(born: f64, remaining: u32, second_leg_dest: u32) -> Packet {
        Packet {
            born,
            remaining,
            second_leg_dest,
            trace: u32::MAX,
            hops: 0,
        }
    }
}

/// Sample a destination for a packet at `origin` by flipping each of `d`
/// bits independently with probability `p` (Lemma 1). Returns the XOR mask
/// (`origin ⊕ destination`).
///
/// The `d` Bernoulli trials are batched two-per-generator-step: each
/// dimension consumes 32 bits of one `u64` draw, comparing against a
/// rounded 32-bit threshold. The per-bit flip probability is `p` rounded
/// to the nearest multiple of `2^-32` (exact for dyadic `p` like the
/// canonical 1/2; relative error below `10^-9` for any `p ≥ 10^-3`, and
/// `p < 2^-33` rounds to never-flip) — undetectable under any feasible
/// sample size, at half the generator steps of the one-draw-per-bit loop
/// this replaces.
#[inline]
pub fn sample_flip_mask(rng: &mut SimRng, d: usize, p: f64) -> u32 {
    debug_assert!(d <= 32);
    // Fast paths for the degenerate cases keep the Bernoulli loop honest.
    if p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return ((1u64 << d) - 1) as u32;
    }
    let threshold = (p * 4_294_967_296.0).round() as u64;
    let mut mask = 0u32;
    let mut i = 0;
    while i < d {
        let bits = rng.next_u64();
        // Unrolled: two 32-bit lanes per generator step.
        mask |= u32::from(bits & 0xFFFF_FFFF < threshold) << i;
        if i + 1 < d {
            mask |= u32::from(bits >> 32 < threshold) << (i + 1);
        }
        i += 2;
    }
    mask
}

/// Choose the next dimension to cross from a non-empty `remaining` mask,
/// according to the scheme's dimension order.
#[inline]
pub fn next_dim(scheme: Scheme, remaining: u32, rng: &mut SimRng) -> usize {
    debug_assert!(remaining != 0);
    match scheme {
        // Canonical: lowest required dimension first.
        Scheme::Greedy | Scheme::TwoPhaseValiant => remaining.trailing_zeros() as usize,
        // Ablation: uniformly random among the required dimensions.
        Scheme::RandomOrder => {
            let k = remaining.count_ones() as usize;
            let pick = rng.below(k);
            nth_set_bit(remaining, pick)
        }
    }
}

/// Sampler for arbitrary translation-invariant destination distributions
/// (§2.2 generalisation): a pmf over XOR masks, sampled by inverse CDF.
#[derive(Clone, Debug)]
pub struct MaskSampler {
    /// Cumulative distribution over masks `0..2^d`.
    cdf: Vec<f64>,
}

impl MaskSampler {
    /// Build from a pmf over masks. Panics unless the pmf has a power-of-2
    /// length, non-negative entries, and sums to 1 (±1e-9).
    pub fn new(pmf: &[f64]) -> MaskSampler {
        assert!(
            pmf.len().is_power_of_two() && pmf.len() >= 2,
            "bad pmf length"
        );
        assert!(pmf.iter().all(|&x| x >= 0.0), "negative probability");
        let mut cdf = Vec::with_capacity(pmf.len());
        let mut acc = 0.0;
        for &x in pmf {
            acc += x;
            cdf.push(acc);
        }
        assert!(
            (acc - 1.0).abs() < 1e-9,
            "destination pmf sums to {acc}, not 1"
        );
        // Guard the final bucket against rounding.
        *cdf.last_mut().expect("nonempty") = 1.0;
        MaskSampler { cdf }
    }

    /// Hypercube dimension implied by the pmf length.
    pub fn dim(&self) -> usize {
        self.cdf.len().trailing_zeros() as usize
    }

    /// Draw one XOR mask.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        let u = rng.uniform01();
        self.cdf.partition_point(|&c| c <= u) as u32
    }
}

/// Index of the `n`-th (0-based) set bit of `mask`.
#[inline]
fn nth_set_bit(mask: u32, n: usize) -> usize {
    let mut m = mask;
    for _ in 0..n {
        m &= m - 1;
    }
    debug_assert!(m != 0);
    m.trailing_zeros() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_mask_degenerate() {
        let mut rng = SimRng::new(1);
        assert_eq!(sample_flip_mask(&mut rng, 8, 0.0), 0);
        assert_eq!(sample_flip_mask(&mut rng, 8, 1.0), 0xFF);
        assert_eq!(sample_flip_mask(&mut rng, 3, 1.0), 0b111);
    }

    #[test]
    fn flip_mask_tiny_probability_not_collapsed() {
        // p = 1e-5 is far below the old 16-bit lane resolution; the
        // 32-bit threshold must keep it alive and close to nominal.
        let (d, p, n) = (8usize, 1e-5, 4_000_000u64);
        let mut rng = SimRng::new(77);
        let mut flips = 0u64;
        for _ in 0..n {
            flips += u64::from(sample_flip_mask(&mut rng, d, p).count_ones());
        }
        let rate = flips as f64 / (n * d as u64) as f64;
        assert!(
            (rate - p).abs() < p * 0.2,
            "per-bit flip rate {rate} vs nominal {p}"
        );
    }

    #[test]
    fn flip_mask_per_bit_probability() {
        // Lemma 1: each bit flips independently with probability p.
        let (d, p, n) = (10usize, 0.3, 100_000);
        let mut rng = SimRng::new(2);
        let mut counts = vec![0u64; d];
        for _ in 0..n {
            let m = sample_flip_mask(&mut rng, d, p);
            for (i, c) in counts.iter_mut().enumerate() {
                *c += u64::from((m >> i) & 1);
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let f = c as f64 / n as f64;
            assert!((f - p).abs() < 0.01, "bit {i}: {f}");
        }
    }

    #[test]
    fn flip_mask_bit_independence_pairwise() {
        // Joint flip frequency of bits (0,1) ≈ p².
        let (p, n) = (0.4, 200_000);
        let mut rng = SimRng::new(3);
        let mut both = 0u64;
        for _ in 0..n {
            let m = sample_flip_mask(&mut rng, 6, p);
            if m & 0b11 == 0b11 {
                both += 1;
            }
        }
        let f = both as f64 / n as f64;
        assert!((f - p * p).abs() < 0.01, "joint {f}");
    }

    #[test]
    fn hamming_distance_binomial_mean() {
        let (d, p, n) = (12usize, 0.5, 50_000);
        let mut rng = SimRng::new(4);
        let mean: f64 = (0..n)
            .map(|_| sample_flip_mask(&mut rng, d, p).count_ones() as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - d as f64 * p).abs() < 0.05, "mean distance {mean}");
    }

    #[test]
    fn greedy_next_dim_is_lowest() {
        let mut rng = SimRng::new(5);
        assert_eq!(next_dim(Scheme::Greedy, 0b1010, &mut rng), 1);
        assert_eq!(next_dim(Scheme::Greedy, 0b1000, &mut rng), 3);
        assert_eq!(next_dim(Scheme::TwoPhaseValiant, 0b0110, &mut rng), 1);
    }

    #[test]
    fn random_order_uniform_over_set_bits() {
        let mut rng = SimRng::new(6);
        let mask = 0b10110u32; // dims 1, 2, 4
        let mut counts = [0u64; 5];
        let n = 60_000;
        for _ in 0..n {
            counts[next_dim(Scheme::RandomOrder, mask, &mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[3], 0);
        for &i in &[1usize, 2, 4] {
            let f = counts[i] as f64 / n as f64;
            assert!((f - 1.0 / 3.0).abs() < 0.01, "dim {i}: {f}");
        }
    }

    #[test]
    fn nth_set_bit_walks_mask() {
        assert_eq!(nth_set_bit(0b1, 0), 0);
        assert_eq!(nth_set_bit(0b101000, 0), 3);
        assert_eq!(nth_set_bit(0b101000, 1), 5);
    }

    #[test]
    fn mask_sampler_frequencies() {
        let pmf = [0.1, 0.2, 0.3, 0.4];
        let s = MaskSampler::new(&pmf);
        assert_eq!(s.dim(), 2);
        let mut rng = SimRng::new(9);
        let n = 200_000;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            counts[s.sample(&mut rng) as usize] += 1;
        }
        for (mask, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            assert!((freq - pmf[mask]).abs() < 0.01, "mask {mask}: {freq}");
        }
    }

    #[test]
    fn mask_sampler_degenerate_point_mass() {
        let s = MaskSampler::new(&[0.0, 0.0, 1.0, 0.0]);
        let mut rng = SimRng::new(10);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), 2);
        }
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn mask_sampler_rejects_non_distribution() {
        MaskSampler::new(&[0.4, 0.4]);
    }

    #[test]
    fn packet_is_small() {
        // The simulator stores millions of these; keep them to 24 bytes
        // (8 time + 4 mask + 4 second-leg + 2 hop counter + padding).
        assert!(std::mem::size_of::<Packet>() <= 24);
    }
}
