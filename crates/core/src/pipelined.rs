//! The §2.3 non-greedy pipelined Valiant–Brebner scheme, simulated
//! faithfully.
//!
//! At each round start every node releases (at most) one stored packet; the
//! released batch is routed greedily as one static instance
//! ([`crate::batch::route_batch_greedy`]); the next round starts when the
//! batch completes. Packets generated during a round are stored at their
//! origins. Each node therefore behaves like an M/G/1 queue with service
//! time ≈ `R·d`, so the scheme destabilises once `λ·R·d ≥ 1` — at any
//! fixed load factor it fails for large `d`, which is the paper's §2.3
//! point (experiment E12).

// The config struct defined here is the deprecated legacy entry point;
// this module necessarily keeps using it internally.
#![allow(deprecated)]

use crate::batch::route_batch_greedy;
use crate::config::ConfigError;
use crate::observe::{NullObserver, Observer};
use crate::packet::sample_flip_mask;
use crate::pool::{ArcFifo, SlabPool};
use hyperroute_desim::{SimRng, Welford};
use serde::{Deserialize, Serialize};

/// Configuration of a pipelined-scheme simulation.
///
/// Deprecated legacy entry point: build a
/// [`crate::scenario::Scenario`] with
/// [`crate::scenario::Topology::Pipelined`] instead; the scenario path
/// produces byte-identical reports. This struct remains as a thin shim
/// for one release.
#[deprecated(
    since = "0.2.0",
    note = "build a `scenario::Scenario` with `Topology::Pipelined` instead"
)]
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PipelinedConfig {
    /// Hypercube dimension.
    pub dim: usize,
    /// Per-node Poisson generation rate.
    pub lambda: f64,
    /// Destination bit-flip probability.
    pub p: f64,
    /// Number of routing rounds to simulate.
    pub rounds: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PipelinedConfig {
    fn default() -> Self {
        PipelinedConfig {
            dim: 4,
            lambda: 0.05,
            p: 0.5,
            rounds: 400,
            seed: 0x717E,
        }
    }
}

/// Results of a pipelined-scheme simulation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PipelinedReport {
    /// Mean delay of delivered packets (generation → batch completion).
    pub mean_delay: f64,
    /// Mean round length (empirical `R·d`).
    pub mean_round_length: f64,
    /// Empirical round constant `R` (mean round length / d).
    pub round_constant: f64,
    /// Mean total backlog (stored packets) at round starts.
    pub mean_backlog: f64,
    /// Total backlog remaining after the last round.
    pub final_backlog: u64,
    /// Least-squares backlog growth per round (positive slope ⇒ unstable).
    pub backlog_slope_per_round: f64,
    /// Packets generated / delivered.
    pub generated: u64,
    /// Packets delivered.
    pub delivered: u64,
}

impl PipelinedReport {
    /// Heuristic instability verdict: backlog grows by a noticeable
    /// fraction of the per-round input.
    pub fn looks_unstable(&self, per_round_input: f64) -> bool {
        self.backlog_slope_per_round > 0.1 * per_round_input
    }
}

impl PipelinedConfig {
    /// Structured validation of this configuration.
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.dim < 1 || self.dim > 16 {
            return Err(ConfigError::Dimension {
                dim: self.dim,
                min: 1,
                max: 16,
            });
        }
        if !(self.lambda >= 0.0 && self.lambda.is_finite()) {
            return Err(ConfigError::Lambda(self.lambda));
        }
        if !(0.0..=1.0).contains(&self.p) {
            return Err(ConfigError::FlipProbability(self.p));
        }
        if self.rounds < 2 {
            return Err(ConfigError::Rounds(self.rounds));
        }
        Ok(())
    }
}

/// Run the pipelined scheme.
pub fn simulate_pipelined(cfg: PipelinedConfig) -> PipelinedReport {
    simulate_pipelined_observed(cfg, &mut NullObserver)
}

/// Run the pipelined scheme under a streaming [`Observer`].
///
/// The observer sees one event per routing round (clock = accumulated
/// simulated time, signal = stored backlog at the round start) and every
/// delivered packet; it never changes the simulation.
pub fn simulate_pipelined_observed<O: Observer>(
    cfg: PipelinedConfig,
    obs: &mut O,
) -> PipelinedReport {
    if let Err(e) = cfg.check() {
        panic!("{e}");
    }
    let n = 1usize << cfg.dim;
    let mut rng = SimRng::new(cfg.seed);
    let mut arrival_rng = rng.split();
    let mut dest_rng = rng.split();

    // Per-node store of (birth time, destination mask): intrusive FIFO
    // lists over one shared slab, like the event-driven simulators.
    let mut pool: SlabPool<(f64, u32)> = SlabPool::with_capacity(n);
    let mut stores: Vec<ArcFifo> = vec![ArcFifo::new(); n];
    let mut now = 0.0f64;
    let mut delays = Welford::new();
    let mut round_lengths = Welford::new();
    let mut backlog_at_round = Vec::with_capacity(cfg.rounds);
    let mut generated = 0u64;
    let mut delivered = 0u64;

    for _ in 0..cfg.rounds {
        obs.on_event(now, pool.len() as f64);
        backlog_at_round.push(pool.len() as f64);

        // Release at most one packet per node. Stores hold the destination
        // as an XOR mask relative to the origin (Lemma 1's bit-flips);
        // resolve to an absolute node id here.
        let mut batch: Vec<(u32, u32)> = Vec::new();
        let mut births: Vec<f64> = Vec::new();
        for (node, store) in stores.iter_mut().enumerate() {
            if let Some((born, mask)) = store.pop_front(&mut pool) {
                batch.push((node as u32, node as u32 ^ mask));
                births.push(born);
            }
        }

        // Round length: the batch's actual completion time; an empty round
        // idles for one unit (polling for new arrivals).
        let round_len = if batch.is_empty() {
            1.0
        } else {
            let result = route_batch_greedy(cfg.dim, &batch);
            for (i, &born) in births.iter().enumerate() {
                delays.push(now + result.completion[i] - born);
                obs.on_delivered(now + result.completion[i], born);
                delivered += 1;
            }
            // A batch of self-destined packets completes instantly; the
            // round still takes one unit of bookkeeping.
            result.makespan.max(1.0)
        };
        round_lengths.push(round_len);

        // Arrivals during [now, now + round_len): per-node Poisson batch
        // with uniform birth times (order within a store is by birth).
        for store in stores.iter_mut() {
            let k = arrival_rng.poisson(cfg.lambda * round_len);
            let mut times: Vec<f64> = (0..k)
                .map(|_| now + arrival_rng.uniform01() * round_len)
                .collect();
            times.sort_by(f64::total_cmp);
            for t in times {
                let dest_mask = sample_flip_mask(&mut dest_rng, cfg.dim, cfg.p);
                store.push_back(&mut pool, (t, dest_mask));
                generated += 1;
            }
        }
        now += round_len;
    }

    let slope = least_squares_slope(&backlog_at_round);
    let mean_round = round_lengths.mean();
    PipelinedReport {
        mean_delay: delays.mean(),
        mean_round_length: mean_round,
        round_constant: mean_round / cfg.dim as f64,
        mean_backlog: backlog_at_round.iter().sum::<f64>() / backlog_at_round.len() as f64,
        final_backlog: pool.len() as u64,
        backlog_slope_per_round: slope,
        generated,
        delivered,
    }
}

/// Least-squares slope of `y[i]` against `i`, over the second half of the
/// series (transient discarded).
pub fn least_squares_slope(ys: &[f64]) -> f64 {
    let half = &ys[ys.len() / 2..];
    let n = half.len() as f64;
    if half.len() < 2 {
        return 0.0;
    }
    let mean_x = (half.len() - 1) as f64 / 2.0;
    let mean_y = half.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &y) in half.iter().enumerate() {
        let dx = i as f64 - mean_x;
        num += dx * (y - mean_y);
        den += dx * dx;
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_linear_series() {
        let ys: Vec<f64> = (0..100).map(|i| 3.0 * i as f64 + 5.0).collect();
        assert!((least_squares_slope(&ys) - 3.0).abs() < 1e-9);
        let flat = vec![7.0; 50];
        assert_eq!(least_squares_slope(&flat), 0.0);
    }

    #[test]
    fn light_load_is_stable() {
        // λ well below 1/(Rd): backlog stays flat.
        let cfg = PipelinedConfig {
            dim: 4,
            lambda: 0.02,
            rounds: 300,
            ..Default::default()
        };
        let r = simulate_pipelined(cfg);
        let per_round_input = cfg.lambda * 16.0 * r.mean_round_length;
        assert!(
            !r.looks_unstable(per_round_input),
            "slope {} at light load",
            r.backlog_slope_per_round
        );
        assert!(r.delivered > 0);
        assert!(r.round_constant > 0.1 && r.round_constant < 5.0);
    }

    #[test]
    fn moderate_load_unstable_where_greedy_would_sail() {
        // ρ = λp = 0.3 — trivially stable for greedy — swamps the pipeline
        // at d=6 (threshold λRd < 1 means λ < ~1/(1.1·6) ≈ 0.15 < 0.6).
        let cfg = PipelinedConfig {
            dim: 6,
            lambda: 0.6,
            p: 0.5,
            rounds: 150,
            seed: 3,
        };
        let r = simulate_pipelined(cfg);
        let per_round_input = cfg.lambda * 64.0 * r.mean_round_length;
        assert!(
            r.looks_unstable(per_round_input),
            "expected instability, slope {}",
            r.backlog_slope_per_round
        );
        assert!(r.final_backlog > 1000, "backlog {}", r.final_backlog);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = PipelinedConfig::default();
        let a = simulate_pipelined(cfg);
        let b = simulate_pipelined(cfg);
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.mean_delay, b.mean_delay);
    }

    #[test]
    fn zero_lambda_never_generates() {
        let cfg = PipelinedConfig {
            lambda: 0.0,
            rounds: 10,
            ..Default::default()
        };
        let r = simulate_pipelined(cfg);
        assert_eq!(r.generated, 0);
        assert_eq!(r.delivered, 0);
    }
}
