//! The §2.3 non-greedy pipelined Valiant–Brebner scheme, simulated
//! faithfully.
//!
//! At each round start every node releases (at most) one stored packet; the
//! released batch is routed greedily as one static instance
//! ([`crate::batch::route_batch_greedy`]); the next round starts when the
//! batch completes. Packets generated during a round are stored at their
//! origins. Each node therefore behaves like an M/G/1 queue with service
//! time ≈ `R·d`, so the scheme destabilises once `λ·R·d ≥ 1` — at any
//! fixed load factor it fails for large `d`, which is the paper's §2.3
//! point (experiment E12).
//!
//! This scheme is round-driven, not event-driven: it shares the slab
//! pool, statistics and [`Report`] surface with the generic engine but
//! has no event queue at all (its `events` count is 0). Construct through
//! [`crate::scenario::Scenario`] with
//! [`crate::scenario::Topology::Pipelined`].

use crate::batch::route_batch_greedy;
use crate::config::ConfigError;
use crate::metrics::DelayStats;
use crate::observe::Observer;
use crate::packet::sample_flip_mask;
use crate::pool::{ArcFifo, SlabPool};
use crate::scenario::{PipelinedExt, Report, ReportExt, Scenario, Topology};
use hyperroute_desim::{SimRng, Welford};

/// Structured validation of the pipelined parameters (shared with
/// `Scenario::validate`, so the scenario checks can never drift from what
/// the round loop assumes).
pub(crate) fn check_params(
    dim: usize,
    lambda: f64,
    p: f64,
    rounds: usize,
) -> Result<(), ConfigError> {
    if !(1..=16).contains(&dim) {
        return Err(ConfigError::Dimension {
            dim,
            min: 1,
            max: 16,
        });
    }
    if !(lambda >= 0.0 && lambda.is_finite()) {
        return Err(ConfigError::Lambda(lambda));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(ConfigError::FlipProbability(p));
    }
    if rounds < 2 {
        return Err(ConfigError::Rounds(rounds));
    }
    Ok(())
}

/// Run the pipelined scheme under a streaming [`Observer`].
///
/// The observer sees one event per routing round (clock = accumulated
/// simulated time, signal = stored backlog at the round start) and every
/// delivered packet; it never changes the simulation.
pub(crate) fn simulate_pipelined_observed<O: Observer>(scenario: &Scenario, obs: &mut O) -> Report {
    let Topology::Pipelined { dim, rounds } = scenario.topology else {
        unreachable!("pipelined simulator on a non-pipelined scenario");
    };
    let (lambda, p, seed) = (
        scenario.workload.lambda,
        scenario.workload.p,
        scenario.run.seed,
    );
    let n = 1usize << dim;
    let mut rng = SimRng::new(seed);
    let mut arrival_rng = rng.split();
    let mut dest_rng = rng.split();

    // Per-node store of (birth time, destination mask): intrusive FIFO
    // lists over one shared slab, like the event-driven simulators.
    let mut pool: SlabPool<(f64, u32)> = SlabPool::with_capacity(n);
    let mut stores: Vec<ArcFifo> = vec![ArcFifo::new(); n];
    let mut now = 0.0f64;
    let mut delays = Welford::new();
    let mut round_lengths = Welford::new();
    let mut backlog_at_round = Vec::with_capacity(rounds);
    let mut generated = 0u64;
    let mut delivered = 0u64;

    for _ in 0..rounds {
        obs.on_event(now, pool.len() as f64);
        backlog_at_round.push(pool.len() as f64);

        // Release at most one packet per node. Stores hold the destination
        // as an XOR mask relative to the origin (Lemma 1's bit-flips);
        // resolve to an absolute node id here.
        let mut batch: Vec<(u32, u32)> = Vec::new();
        let mut births: Vec<f64> = Vec::new();
        for (node, store) in stores.iter_mut().enumerate() {
            if let Some((born, mask)) = store.pop_front(&mut pool) {
                batch.push((node as u32, node as u32 ^ mask));
                births.push(born);
            }
        }

        // Round length: the batch's actual completion time; an empty round
        // idles for one unit (polling for new arrivals).
        let round_len = if batch.is_empty() {
            1.0
        } else {
            let result = route_batch_greedy(dim, &batch);
            for (i, &born) in births.iter().enumerate() {
                delays.push(now + result.completion[i] - born);
                obs.on_delivered(now + result.completion[i], born);
                delivered += 1;
            }
            // A batch of self-destined packets completes instantly; the
            // round still takes one unit of bookkeeping.
            result.makespan.max(1.0)
        };
        round_lengths.push(round_len);

        // Arrivals during [now, now + round_len): per-node Poisson batch
        // with uniform birth times (order within a store is by birth).
        for store in stores.iter_mut() {
            let k = arrival_rng.poisson(lambda * round_len);
            let mut times: Vec<f64> = (0..k)
                .map(|_| now + arrival_rng.uniform01() * round_len)
                .collect();
            times.sort_by(f64::total_cmp);
            for t in times {
                let dest_mask = sample_flip_mask(&mut dest_rng, dim, p);
                store.push_back(&mut pool, (t, dest_mask));
                generated += 1;
            }
        }
        now += round_len;
    }

    let slope = least_squares_slope(&backlog_at_round);
    let mean_round = round_lengths.mean();
    let mean_backlog = backlog_at_round.iter().sum::<f64>() / backlog_at_round.len() as f64;
    Report {
        delay: DelayStats {
            mean: delays.mean(),
            ci95: f64::NAN,
            p50: f64::NAN,
            p90: f64::NAN,
            p99: f64::NAN,
            count: delivered,
        },
        mean_in_system: mean_backlog,
        peak_in_system: f64::NAN,
        throughput: f64::NAN,
        little_error: f64::NAN,
        generated,
        delivered,
        events: 0,
        ext: ReportExt::Pipelined(PipelinedExt {
            mean_round_length: mean_round,
            round_constant: mean_round / dim as f64,
            mean_backlog,
            final_backlog: pool.len() as u64,
            backlog_slope_per_round: slope,
        }),
        telemetry: None,
    }
}

/// Least-squares slope of `y[i]` against `i`, over the second half of the
/// series (transient discarded).
pub fn least_squares_slope(ys: &[f64]) -> f64 {
    let half = &ys[ys.len() / 2..];
    let n = half.len() as f64;
    if half.len() < 2 {
        return 0.0;
    }
    let mean_x = (half.len() - 1) as f64 / 2.0;
    let mean_y = half.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &y) in half.iter().enumerate() {
        let dx = i as f64 - mean_x;
        num += dx * (y - mean_y);
        den += dx * dx;
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::NullObserver;

    fn simulate_pipelined(s: &Scenario) -> Report {
        simulate_pipelined_observed(s, &mut NullObserver)
    }

    fn scenario(dim: usize, lambda: f64, p: f64, rounds: usize, seed: u64) -> Scenario {
        Scenario::builder(Topology::Pipelined { dim, rounds })
            .lambda(lambda)
            .p(p)
            .seed(seed)
            .build()
            .expect("valid scenario")
    }

    fn pipe(r: &Report) -> &PipelinedExt {
        r.pipelined().expect("pipelined report")
    }

    #[test]
    fn slope_of_linear_series() {
        let ys: Vec<f64> = (0..100).map(|i| 3.0 * i as f64 + 5.0).collect();
        assert!((least_squares_slope(&ys) - 3.0).abs() < 1e-9);
        let flat = vec![7.0; 50];
        assert_eq!(least_squares_slope(&flat), 0.0);
    }

    #[test]
    fn light_load_is_stable() {
        // λ well below 1/(Rd): backlog stays flat.
        let r = simulate_pipelined(&scenario(4, 0.02, 0.5, 300, 0x717E));
        let per_round_input = 0.02 * 16.0 * pipe(&r).mean_round_length;
        assert!(
            !pipe(&r).looks_unstable(per_round_input),
            "slope {} at light load",
            pipe(&r).backlog_slope_per_round
        );
        assert!(r.delivered > 0);
        assert!(pipe(&r).round_constant > 0.1 && pipe(&r).round_constant < 5.0);
    }

    #[test]
    fn moderate_load_unstable_where_greedy_would_sail() {
        // ρ = λp = 0.3 — trivially stable for greedy — swamps the pipeline
        // at d=6 (threshold λRd < 1 means λ < ~1/(1.1·6) ≈ 0.15 < 0.6).
        let r = simulate_pipelined(&scenario(6, 0.6, 0.5, 150, 3));
        let per_round_input = 0.6 * 64.0 * pipe(&r).mean_round_length;
        assert!(
            pipe(&r).looks_unstable(per_round_input),
            "expected instability, slope {}",
            pipe(&r).backlog_slope_per_round
        );
        assert!(
            pipe(&r).final_backlog > 1000,
            "backlog {}",
            pipe(&r).final_backlog
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let s = scenario(4, 0.05, 0.5, 400, 0x717E);
        let a = simulate_pipelined(&s);
        let b = simulate_pipelined(&s);
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.delay.mean, b.delay.mean);
    }

    #[test]
    fn zero_lambda_never_generates() {
        let r = simulate_pipelined(&scenario(4, 0.0, 0.5, 10, 0x717E));
        assert_eq!(r.generated, 0);
        assert_eq!(r.delivered, 0);
    }

    #[test]
    fn builder_rejects_bad_params() {
        assert!(matches!(
            Scenario::builder(Topology::Pipelined { dim: 4, rounds: 1 })
                .build()
                .unwrap_err(),
            ConfigError::Rounds(1)
        ));
        assert!(matches!(
            Scenario::builder(Topology::Pipelined {
                dim: 17,
                rounds: 10
            })
            .build()
            .unwrap_err(),
            ConfigError::Dimension { dim: 17, .. }
        ));
    }
}
