//! Bench target regenerating the e18_butterfly_upper_bound experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e18_butterfly_upper_bound",
        hyperroute_experiments::e18_butterfly_upper_bound::run,
    );
}
