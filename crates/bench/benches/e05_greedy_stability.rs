//! Bench target regenerating the e05_greedy_stability experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e05_greedy_stability",
        hyperroute_experiments::e05_greedy_stability::run,
    );
}
