//! Bench target regenerating the e21_general_destinations experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e21_general_destinations",
        hyperroute_experiments::e21_general_destinations::run,
    );
}
