//! `BENCH_engine.json` emitter: engine-throughput grid over
//! d ∈ {6, 8, 10} × ρ ∈ {0.5, 0.8, 0.95}, run on three engines in the same
//! process —
//!
//! * `seed`: the frozen seed engine (binary heap + `VecDeque` arc queues +
//!   per-event asserts; see `hyperroute_bench::seed_baseline`) — the
//!   baseline the calendar/slab engine is measured against;
//! * `heap`: the shipped simulator with the heap scheduler backend
//!   (isolates the scheduler swap from the slab/layout work);
//! * `calendar`: the shipped default.
//!
//! Each cell reports wall seconds (best of `reps` alternating repetitions,
//! to shed scheduler noise), events/sec and packets/sec, plus the speedup
//! of the default engine over both baselines. The JSON lands at the repo
//! root (override with `HYPERROUTE_BENCH_OUT`) so the perf trajectory is
//! tracked in-tree from this PR onward.
//!
//! Scale: `HYPERROUTE_SCALE=full` lengthens the horizon and adds
//! repetitions; the default `quick` keeps the grid under a minute.

// Perf harness pinned to the engine-level config structs so results stay
// comparable with the frozen seed engine; the scenario layer adds nothing
// to measure here.
#![allow(deprecated)]

use hyperroute_bench::seed_baseline::run_seed_engine;
use hyperroute_core::hypercube_sim::{HypercubeSim, HypercubeSimConfig};
use hyperroute_desim::SchedulerKind;
use std::fmt::Write as _;
use std::time::Instant;

struct Cell {
    dim: usize,
    rho: f64,
    engine: &'static str,
    wall_s: f64,
    events: u64,
    generated: u64,
    events_per_sec: f64,
    packets_per_sec: f64,
}

fn run_new(kind: SchedulerKind, dim: usize, rho: f64, horizon: f64) -> (f64, u64, u64) {
    let cfg = HypercubeSimConfig {
        dim,
        lambda: rho / 0.5,
        p: 0.5,
        horizon,
        warmup: horizon * 0.2,
        seed: 7,
        scheduler: kind,
        ..Default::default()
    };
    let start = Instant::now();
    let r = HypercubeSim::new(cfg).run();
    (start.elapsed().as_secs_f64(), r.events, r.generated)
}

fn run_seed(dim: usize, rho: f64, horizon: f64) -> (f64, u64, u64) {
    let start = Instant::now();
    let r = run_seed_engine(dim, rho / 0.5, 0.5, horizon, 7);
    (start.elapsed().as_secs_f64(), r.events, r.generated)
}

fn main() {
    let full = matches!(
        std::env::var("HYPERROUTE_SCALE").as_deref(),
        Ok("full") | Ok("FULL")
    );
    let (horizon, reps) = if full { (400.0, 9) } else { (120.0, 5) };
    let dims = [6usize, 8, 10];
    let rhos = [0.5f64, 0.8, 0.95];

    let mut cells: Vec<Cell> = Vec::new();
    for &dim in &dims {
        for &rho in &rhos {
            // Alternate engines within each repetition so slow drift in
            // machine speed cancels out of the ratios; keep each engine's
            // best (least-interference) time.
            let mut best = [f64::MAX; 3];
            let mut meta = [(0u64, 0u64); 3];
            for _ in 0..reps {
                let runs = [
                    run_seed(dim, rho, horizon),
                    run_new(SchedulerKind::Heap, dim, rho, horizon),
                    run_new(SchedulerKind::Calendar, dim, rho, horizon),
                ];
                for (i, &(t, ev, gen)) in runs.iter().enumerate() {
                    best[i] = best[i].min(t);
                    meta[i] = (ev, gen);
                }
            }
            for (i, engine) in ["seed", "heap", "calendar"].into_iter().enumerate() {
                let (events, generated) = meta[i];
                cells.push(Cell {
                    dim,
                    rho,
                    engine,
                    wall_s: best[i],
                    events,
                    generated,
                    events_per_sec: events as f64 / best[i],
                    packets_per_sec: generated as f64 / best[i],
                });
            }
            let speed = |engine: &str| {
                let c = cells
                    .iter()
                    .rfind(|c| c.dim == dim && c.rho == rho && c.engine == engine)
                    .expect("cell recorded");
                c.events as f64 / c.wall_s
            };
            eprintln!(
                "d{dim} rho{rho}: seed {:.2} Mev/s | heap {:.2} Mev/s | calendar {:.2} Mev/s | calendar/seed {:.2}x, calendar/heap {:.2}x",
                speed("seed") / 1e6,
                speed("heap") / 1e6,
                speed("calendar") / 1e6,
                speed("calendar") / speed("seed"),
                speed("calendar") / speed("heap"),
            );
        }
    }

    let rate = |dim: usize, rho: f64, engine: &str| {
        cells
            .iter()
            .find(|c| c.dim == dim && (c.rho - rho).abs() < 1e-9 && c.engine == engine)
            .map(|c| c.events_per_sec)
            .expect("grid cell present")
    };
    let headline_seed = rate(8, 0.8, "calendar") / rate(8, 0.8, "seed");
    let headline_heap = rate(8, 0.8, "calendar") / rate(8, 0.8, "heap");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"engine\",");
    let _ = writeln!(
        json,
        "  \"scale\": \"{}\",",
        if full { "full" } else { "quick" }
    );
    let _ = writeln!(json, "  \"kernel\": \"hypercube_sim greedy p=0.5, horizon {horizon}, warmup 20%, best of {reps}\",");
    let _ = writeln!(
        json,
        "  \"baseline\": \"seed = frozen pre-PR engine (binary-heap FEL, VecDeque arc queues, per-event asserts); heap = shipped simulator on the heap backend\","
    );
    let _ = writeln!(
        json,
        "  \"headline\": {{ \"kernel\": \"hypercube_sim/d8_rho0.8\", \"calendar_vs_seed_speedup\": {headline_seed:.3}, \"calendar_vs_heap_backend_speedup\": {headline_heap:.3} }},"
    );
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{ \"sim\": \"hypercube\", \"dim\": {}, \"rho\": {}, \"engine\": \"{}\", \"wall_s\": {:.6}, \"events\": {}, \"packets\": {}, \"events_per_sec\": {:.0}, \"packets_per_sec\": {:.0} }}{sep}",
            c.dim, c.rho, c.engine, c.wall_s, c.events, c.generated, c.events_per_sec, c.packets_per_sec
        );
    }
    json.push_str("  ]\n}\n");

    let out = std::env::var("HYPERROUTE_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json").to_string()
    });
    std::fs::write(&out, &json).expect("write BENCH_engine.json");
    eprintln!("wrote {out}");
    eprintln!(
        "headline d8_rho0.8: calendar vs seed baseline {headline_seed:.2}x, vs heap backend {headline_heap:.2}x"
    );
}
