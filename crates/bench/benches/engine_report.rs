//! `BENCH_engine.json` emitter: engine-throughput grid over
//! d ∈ {6, 8, 10} × ρ ∈ {0.5, 0.8, 0.95}, run on three engines in the same
//! process —
//!
//! * `seed`: the frozen seed engine (binary heap + `VecDeque` arc queues +
//!   per-event asserts + in-queue arrival events; see
//!   `hyperroute_bench::seed_baseline`) — the baseline the generic engine
//!   is measured against;
//! * `heap`: the shipped generic engine on the heap scheduler backend
//!   (isolates the scheduler swap from the slab/layout work);
//! * `calendar`: the shipped default.
//!
//! Since the generic-engine refactor, both shipped rows measure the
//! **dequeued arrival stream** (arrivals/slot boundaries self-schedule in
//! a side channel instead of the event queue) and the
//! `Scheduler::peek_payload` next-event prefetch — the PR-1 hot-path
//! follow-ups — while `seed` still pays one push+pop per arrival, so the
//! seed/shipped gap records their effect. A `ring` section benches the
//! fifth topology on the same engine (n = 256 bidirectional ring near
//! ρ = 0.8).
//!
//! Each cell reports wall seconds (best of `reps` alternating repetitions,
//! to shed scheduler noise), events/sec and packets/sec, plus the speedup
//! of the default engine over both baselines. The JSON lands at the repo
//! root (override with `HYPERROUTE_BENCH_OUT`) so the perf trajectory is
//! tracked in-tree from PR 1 onward. The emitter stamps
//! `"schema_version"` and self-checks the required keys before writing;
//! CI's bench-schema job fails if the checked-in report predates the
//! current schema.
//!
//! A `ring` section benches the fifth topology on the same engine, and
//! `torus` / `debruijn` / `fattree` sections bench the blanket
//! `GraphSpec` trait-impl-only topologies (same cell keys at every
//! scale, so CI can diff cells across reports). Schema v4 adds the
//! generated sparse topologies: a 65536-node Kleinberg `smallworld`
//! and a 65536-node Krioukov `hyperbolic` disk, both routed by metric
//! greedy over the CSR — each cell pays the seeded generator *and* the
//! routed run, so it tracks the build+route budget the sparse subsystem
//! promises. The `ci` scale shrinks those two to 4096 nodes.
//!
//! Scale: `HYPERROUTE_SCALE=full` lengthens the horizon and adds
//! repetitions; the default `quick` keeps the grid under a minute;
//! `ci` shrinks the horizon further for the `bench-compare` CI job
//! (same grid, noisier cells — the job normalises by the in-process
//! seed baseline before comparing).
//!
//! Schema v6 adds the intra-run sharded engine
//! (`RunControl::workers`, PR 9): every cell now carries a `workers`
//! key (1 for the classic engine), and a sharded grid runs the d12
//! hypercube at `workers ∈ {1, 2, 4, 8}` plus the generated
//! small-world at `workers ∈ {2, 4, 8}` (its `workers = 1` baseline is
//! the existing calendar cell — same scenario). The top-level
//! `host_cores` records `std::thread::available_parallelism()` so the
//! self-relative speedups in `parallel` are interpretable: on a
//! single-core host the sharded rows are *slower* than their
//! single-threaded baselines (window-barrier overhead with no
//! parallel hardware underneath), and the report says so rather than
//! extrapolating.

use hyperroute_bench::seed_baseline::run_seed_engine;
use hyperroute_core::{Scenario, Topology};
use hyperroute_desim::SchedulerKind;
use std::fmt::Write as _;
use std::time::Instant;

/// Bump when the report layout changes; CI checks the checked-in JSON
/// carries the current value.
const SCHEMA_VERSION: u32 = 6;

struct Cell {
    sim: &'static str,
    dim: usize,
    rho: f64,
    engine: &'static str,
    workers: usize,
    wall_s: f64,
    events: u64,
    generated: u64,
    events_per_sec: f64,
    packets_per_sec: f64,
}

fn run_hypercube(
    kind: SchedulerKind,
    dim: usize,
    rho: f64,
    horizon: f64,
    workers: usize,
) -> (f64, u64, u64) {
    let scenario = Scenario::builder(Topology::Hypercube { dim })
        .lambda(rho / 0.5)
        .p(0.5)
        .horizon(horizon)
        .warmup(horizon * 0.2)
        .seed(7)
        .scheduler(kind)
        .workers(workers)
        .build()
        .expect("valid scenario");
    let start = Instant::now();
    let r = scenario.run().expect("scenario runs");
    (start.elapsed().as_secs_f64(), r.events, r.generated)
}

fn run_ring(kind: SchedulerKind, nodes: usize, lambda: f64, horizon: f64) -> (f64, u64, u64) {
    let scenario = Scenario::builder(Topology::Ring {
        nodes,
        bidirectional: true,
    })
    .lambda(lambda)
    .horizon(horizon)
    .warmup(horizon * 0.2)
    .seed(7)
    .scheduler(kind)
    .build()
    .expect("valid scenario");
    let start = Instant::now();
    let r = scenario.run().expect("scenario runs");
    (start.elapsed().as_secs_f64(), r.events, r.generated)
}

fn run_torus(
    kind: SchedulerKind,
    radix: usize,
    dim: usize,
    lambda: f64,
    horizon: f64,
) -> (f64, u64, u64) {
    let scenario = Scenario::builder(Topology::Torus { radix, dim })
        .lambda(lambda)
        .horizon(horizon)
        .warmup(horizon * 0.2)
        .seed(7)
        .scheduler(kind)
        .build()
        .expect("valid scenario");
    let start = Instant::now();
    let r = scenario.run().expect("scenario runs");
    (start.elapsed().as_secs_f64(), r.events, r.generated)
}

fn run_debruijn(kind: SchedulerKind, dim: usize, lambda: f64, horizon: f64) -> (f64, u64, u64) {
    let scenario = Scenario::builder(Topology::DeBruijn { dim })
        .lambda(lambda)
        .horizon(horizon)
        .warmup(horizon * 0.2)
        .seed(7)
        .scheduler(kind)
        .build()
        .expect("valid scenario");
    let start = Instant::now();
    let r = scenario.run().expect("scenario runs");
    (start.elapsed().as_secs_f64(), r.events, r.generated)
}

fn run_fattree(kind: SchedulerKind, levels: usize, lambda: f64, horizon: f64) -> (f64, u64, u64) {
    let scenario = Scenario::builder(Topology::FatTree { levels })
        .lambda(lambda)
        .horizon(horizon)
        .warmup(horizon * 0.2)
        .seed(7)
        .scheduler(kind)
        .build()
        .expect("valid scenario");
    let start = Instant::now();
    let r = scenario.run().expect("scenario runs");
    (start.elapsed().as_secs_f64(), r.events, r.generated)
}

fn run_smallworld(
    kind: SchedulerKind,
    side: u32,
    lambda: f64,
    horizon: f64,
    workers: usize,
) -> (f64, u64, u64) {
    let scenario = Scenario::builder(Topology::SmallWorld {
        side,
        dims: 2,
        links: 2,
        alpha: 2.0,
        seed: 7,
    })
    .lambda(lambda)
    .horizon(horizon)
    .warmup(horizon * 0.2)
    .seed(7)
    .scheduler(kind)
    .workers(workers)
    .build()
    .expect("valid scenario");
    let start = Instant::now();
    let r = scenario.run().expect("scenario runs");
    (start.elapsed().as_secs_f64(), r.events, r.generated)
}

fn run_hyperbolic(kind: SchedulerKind, nodes: u32, lambda: f64, horizon: f64) -> (f64, u64, u64) {
    let scenario = Scenario::builder(Topology::Hyperbolic {
        nodes,
        alpha: 0.7,
        radius_offset: -1.5,
        seed: 7,
    })
    .lambda(lambda)
    .horizon(horizon)
    .warmup(horizon * 0.2)
    .seed(7)
    .scheduler(kind)
    .build()
    .expect("valid scenario");
    let start = Instant::now();
    let r = scenario.run().expect("scenario runs");
    (start.elapsed().as_secs_f64(), r.events, r.generated)
}

fn run_seed(dim: usize, rho: f64, horizon: f64) -> (f64, u64, u64) {
    let start = Instant::now();
    let r = run_seed_engine(dim, rho / 0.5, 0.5, horizon, 7);
    (start.elapsed().as_secs_f64(), r.events, r.generated)
}

fn main() {
    let scale = std::env::var("HYPERROUTE_SCALE").unwrap_or_default();
    let scale = match scale.to_ascii_lowercase().as_str() {
        "full" => "full",
        "ci" => "ci",
        _ => "quick",
    };
    let (horizon, reps) = match scale {
        "full" => (400.0, 9),
        "ci" => (60.0, 3),
        _ => (120.0, 5),
    };
    let dims = [6usize, 8, 10];
    let rhos = [0.5f64, 0.8, 0.95];

    let mut cells: Vec<Cell> = Vec::new();
    #[allow(clippy::too_many_arguments)]
    let record = |cells: &mut Vec<Cell>,
                  sim: &'static str,
                  dim: usize,
                  rho: f64,
                  engine: &'static str,
                  workers: usize,
                  wall_s: f64,
                  events: u64,
                  generated: u64| {
        cells.push(Cell {
            sim,
            dim,
            rho,
            engine,
            workers,
            wall_s,
            events,
            generated,
            events_per_sec: events as f64 / wall_s,
            packets_per_sec: generated as f64 / wall_s,
        });
    };

    for &dim in &dims {
        for &rho in &rhos {
            // Alternate engines within each repetition so slow drift in
            // machine speed cancels out of the ratios; keep each engine's
            // best (least-interference) time.
            let mut best = [f64::MAX; 3];
            let mut meta = [(0u64, 0u64); 3];
            for _ in 0..reps {
                let runs = [
                    run_seed(dim, rho, horizon),
                    run_hypercube(SchedulerKind::Heap, dim, rho, horizon, 1),
                    run_hypercube(SchedulerKind::Calendar, dim, rho, horizon, 1),
                ];
                for (i, &(t, ev, gen)) in runs.iter().enumerate() {
                    best[i] = best[i].min(t);
                    meta[i] = (ev, gen);
                }
            }
            for (i, engine) in ["seed", "heap", "calendar"].into_iter().enumerate() {
                let (events, generated) = meta[i];
                record(
                    &mut cells,
                    "hypercube",
                    dim,
                    rho,
                    engine,
                    1,
                    best[i],
                    events,
                    generated,
                );
            }
            let speed = |engine: &str| {
                let c = cells
                    .iter()
                    .rfind(|c| c.dim == dim && c.rho == rho && c.engine == engine)
                    .expect("cell recorded");
                c.events as f64 / c.wall_s
            };
            eprintln!(
                "d{dim} rho{rho}: seed {:.2} Mev/s | heap {:.2} Mev/s | calendar {:.2} Mev/s | calendar/seed {:.2}x, calendar/heap {:.2}x",
                speed("seed") / 1e6,
                speed("heap") / 1e6,
                speed("calendar") / 1e6,
                speed("calendar") / speed("seed"),
                speed("calendar") / speed("heap"),
            );
        }
    }

    // The non-hypercube topologies on the same engine, both scheduler
    // backends (cell key = sim name + node count + nominal load):
    // a 256-node bidirectional ring near per-direction ρ ≈ 0.8, a
    // 16-ary 2-cube at ρ ≈ 0.8, a 1024-node de Bruijn graph at a mean
    // per-arc load ≈ 0.45, and a 256-leaf fat tree at a nominal up-link
    // load ≈ 0.5 — all but the ring on the blanket GraphSpec.
    let ring_nodes = 256usize;
    // The sparse generators run at 65536 nodes except under the CI
    // scale, whose shared runners can't hold the full build+route grid.
    let sparse_n: u32 = if scale == "ci" { 4096 } else { 65536 };
    let sw_side = (sparse_n as f64).sqrt() as u32;
    type TopoRun = (
        &'static str,
        usize,
        f64,
        Box<dyn Fn(SchedulerKind) -> (f64, u64, u64)>,
    );
    let extra: Vec<TopoRun> = vec![
        (
            "ring",
            ring_nodes,
            0.8,
            Box::new(move |kind| run_ring(kind, ring_nodes, 0.025, horizon)),
        ),
        (
            "torus",
            256,
            0.8,
            Box::new(move |kind| run_torus(kind, 16, 2, 0.355, horizon)),
        ),
        (
            "debruijn",
            1024,
            0.45,
            Box::new(move |kind| run_debruijn(kind, 10, 0.1, horizon)),
        ),
        (
            "fattree",
            256,
            0.5,
            Box::new(move |kind| run_fattree(kind, 8, 0.18, horizon)),
        ),
        (
            "smallworld",
            sparse_n as usize,
            0.3,
            Box::new(move |kind| run_smallworld(kind, sw_side, 0.02, horizon, 1)),
        ),
        (
            "hyperbolic",
            sparse_n as usize,
            0.3,
            Box::new(move |kind| run_hyperbolic(kind, sparse_n, 0.02, horizon)),
        ),
    ];
    for (sim, size, rho, runner) in &extra {
        let mut best = [f64::MAX; 2];
        let mut meta = [(0u64, 0u64); 2];
        for _ in 0..reps {
            let runs = [runner(SchedulerKind::Heap), runner(SchedulerKind::Calendar)];
            for (i, &(t, ev, gen)) in runs.iter().enumerate() {
                best[i] = best[i].min(t);
                meta[i] = (ev, gen);
            }
        }
        for (i, engine) in ["heap", "calendar"].into_iter().enumerate() {
            let (events, generated) = meta[i];
            record(
                &mut cells, sim, *size, *rho, engine, 1, best[i], events, generated,
            );
        }
        eprintln!(
            "{sim} n{size}: heap {:.2} Mev/s | calendar {:.2} Mev/s",
            meta[0].0 as f64 / best[0] / 1e6,
            meta[1].0 as f64 / best[1] / 1e6,
        );
    }

    // The intra-run sharded engine (schema v6): the d12 hypercube at
    // workers ∈ {1, 2, 4, 8} and the generated small-world at
    // workers ∈ {2, 4, 8} (its workers = 1 baseline is the calendar
    // cell recorded above — same scenario, seed, and horizon). Reports
    // are byte-identical at every worker count (the corpus/proptest
    // gates prove it), so these cells measure pure execution cost:
    // on a multi-core host they show the scaling, on a single-core
    // host they honestly show the window-barrier overhead.
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let par_dim = 12usize;
    let par_reps = if scale == "full" { 5 } else { 3 };
    for &w in &[1usize, 2, 4, 8] {
        let mut best = f64::MAX;
        let mut m = (0u64, 0u64);
        for _ in 0..par_reps {
            let (t, ev, gen) = run_hypercube(SchedulerKind::Calendar, par_dim, 0.8, horizon, w);
            best = best.min(t);
            m = (ev, gen);
        }
        record(
            &mut cells,
            "hypercube",
            par_dim,
            0.8,
            "calendar",
            w,
            best,
            m.0,
            m.1,
        );
        eprintln!(
            "hypercube d{par_dim} rho0.8 workers={w}: {:.2} Mev/s",
            m.0 as f64 / best / 1e6
        );
    }
    for &w in &[2usize, 4, 8] {
        let mut best = f64::MAX;
        let mut m = (0u64, 0u64);
        for _ in 0..par_reps {
            let (t, ev, gen) = run_smallworld(SchedulerKind::Calendar, sw_side, 0.02, horizon, w);
            best = best.min(t);
            m = (ev, gen);
        }
        record(
            &mut cells,
            "smallworld",
            sparse_n as usize,
            0.3,
            "calendar",
            w,
            best,
            m.0,
            m.1,
        );
        eprintln!(
            "smallworld n{sparse_n} workers={w}: {:.2} Mev/s",
            m.0 as f64 / best / 1e6
        );
    }

    let rate = |sim: &str, dim: usize, rho: f64, engine: &str, workers: usize| {
        cells
            .iter()
            .find(|c| {
                c.sim == sim
                    && c.dim == dim
                    && (c.rho - rho).abs() < 1e-9
                    && c.engine == engine
                    && c.workers == workers
            })
            .map(|c| c.events_per_sec)
            .expect("grid cell present")
    };
    let headline_seed =
        rate("hypercube", 8, 0.8, "calendar", 1) / rate("hypercube", 8, 0.8, "seed", 1);
    let headline_heap =
        rate("hypercube", 8, 0.8, "calendar", 1) / rate("hypercube", 8, 0.8, "heap", 1);
    // Self-relative sharded speedups (>1 only where the host has the
    // cores to back it; the single-threaded engine is the oracle and
    // the baseline).
    let d12_w8 = rate("hypercube", par_dim, 0.8, "calendar", 8)
        / rate("hypercube", par_dim, 0.8, "calendar", 1);
    let sw_w8 = rate("smallworld", sparse_n as usize, 0.3, "calendar", 8)
        / rate("smallworld", sparse_n as usize, 0.3, "calendar", 1);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"engine\",");
    let _ = writeln!(json, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"kernel\": \"hypercube_sim greedy p=0.5 (+ ring n={ring_nodes} bidirectional, torus 16^2, de Bruijn n=1024, fat tree 256 leaves on the blanket GraphSpec; smallworld/hyperbolic n={sparse_n} generated CSR + metric greedy, build included; sharded d12 + smallworld at workers 1/2/4/8), horizon {horizon}, warmup 20%, best of {reps}\",");
    let _ = writeln!(
        json,
        "  \"baseline\": \"seed = frozen pre-PR engine (binary-heap FEL, VecDeque arc queues, per-event asserts, in-queue arrival events); heap/calendar = generic engine (dequeued arrival stream + peek_payload prefetch) on each scheduler backend\","
    );
    let _ = writeln!(
        json,
        "  \"engine_features\": {{ \"generic_engine\": true, \"arrival_stream_dequeued\": true, \"peek_payload_prefetch\": true, \"blanket_graph_spec\": true, \"sparse_metric_greedy\": true, \"intra_run_sharding\": true }},"
    );
    let _ = writeln!(
        json,
        "  \"headline\": {{ \"kernel\": \"hypercube_sim/d8_rho0.8\", \"calendar_vs_seed_speedup\": {headline_seed:.3}, \"calendar_vs_heap_backend_speedup\": {headline_heap:.3} }},"
    );
    let _ = writeln!(
        json,
        "  \"parallel\": {{ \"host_cores\": {host_cores}, \"hypercube_d12_w8_self_speedup\": {d12_w8:.3}, \"smallworld_w8_self_speedup\": {sw_w8:.3} }},"
    );
    // Engine phase timers (schema v5). In default builds the feature is
    // off and only `enabled: false` is recorded — the grid above then
    // measured a timer-free hot loop. Rebuild with
    // `--features hyperroute-core/profile` for per-phase costs.
    let profile = hyperroute_core::profile::take();
    if profile.enabled {
        let total_nanos: u64 = profile.phases.iter().map(|p| p.nanos).sum();
        let _ = writeln!(
            json,
            "  \"profile\": {{ \"enabled\": true, \"total_timed_s\": {:.6}, \"phases\": {{",
            total_nanos as f64 / 1e9
        );
        for (i, p) in profile.phases.iter().enumerate() {
            let sep = if i + 1 == profile.phases.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                json,
                "    \"{}\": {{ \"nanos\": {}, \"hits\": {} }}{sep}",
                p.name, p.nanos, p.hits
            );
        }
        json.push_str("  } },\n");
    } else {
        let _ = writeln!(json, "  \"profile\": {{ \"enabled\": false }},");
    }
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{ \"sim\": \"{}\", \"dim\": {}, \"rho\": {}, \"engine\": \"{}\", \"workers\": {}, \"wall_s\": {:.6}, \"events\": {}, \"packets\": {}, \"events_per_sec\": {:.0}, \"packets_per_sec\": {:.0} }}{sep}",
            c.sim, c.dim, c.rho, c.engine, c.workers, c.wall_s, c.events, c.generated, c.events_per_sec, c.packets_per_sec
        );
    }
    json.push_str("  ]\n}\n");

    // Schema self-check: refuse to write a report CI would reject.
    for key in [
        "\"schema_version\"",
        "\"engine_features\"",
        "\"arrival_stream_dequeued\"",
        "\"sim\": \"ring\"",
        "\"sim\": \"torus\"",
        "\"sim\": \"debruijn\"",
        "\"sim\": \"fattree\"",
        "\"sim\": \"smallworld\"",
        "\"sim\": \"hyperbolic\"",
        "\"headline\"",
        "\"parallel\"",
        "\"host_cores\"",
        "\"workers\": 8",
        "\"profile\"",
    ] {
        assert!(json.contains(key), "emitted report lost schema key {key}");
    }

    let out = std::env::var("HYPERROUTE_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json").to_string()
    });
    std::fs::write(&out, &json).expect("write BENCH_engine.json");
    eprintln!("wrote {out}");
    eprintln!(
        "headline d8_rho0.8: calendar vs seed baseline {headline_seed:.2}x, vs heap backend {headline_heap:.2}x"
    );
    eprintln!(
        "sharded self-speedup at 8 workers (host has {host_cores} core(s)): \
         hypercube d12 {d12_w8:.2}x, smallworld n{sparse_n} {sw_w8:.2}x"
    );
}
