//! Bench target regenerating the structural-figures table and DOT sizes.
fn main() {
    hyperroute_bench::run_table_bench("figures", hyperroute_experiments::figures::run);
    for (name, dot) in hyperroute_experiments::figures::dot_documents() {
        println!("figure {name}: {} bytes of DOT", dot.len());
    }
}
