//! Bench target regenerating the e06_delay_upper_bound experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e06_delay_upper_bound",
        hyperroute_experiments::e06_delay_upper_bound::run,
    );
}
