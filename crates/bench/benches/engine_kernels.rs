//! Criterion microbenches of the simulation kernels: event-queue
//! throughput (heap vs calendar backend), packet-level simulation rate
//! under both backends, PS-server churn, and static batch routing. These
//! are the ablation benches for the engine design choices called out in
//! DESIGN.md (arc-indexed flat queues, merged Poisson arrivals,
//! virtual-time PS, and the calendar-queue scheduler). The end-to-end
//! engine grid with JSON output lives in the `engine_report` bench.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hyperroute_core::batch::{random_permutation_batch, route_batch_greedy};
use hyperroute_core::{Scenario, Topology};
use hyperroute_desim::{CalendarQueue, EventQueue, SchedulerKind, SimRng};
use hyperroute_queueing::PsServer;
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        let mut rng = SimRng::new(1);
        let times: Vec<f64> = (0..10_000).map(|_| rng.uniform01() * 1e6).collect();
        b.iter(|| {
            let mut q = EventQueue::with_capacity(times.len());
            for (i, &t) in times.iter().enumerate() {
                q.push(t, i as u32);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v as u64);
            }
            black_box(acc)
        });
    });
    c.bench_function("calendar_queue_push_pop_10k", |b| {
        let mut rng = SimRng::new(1);
        let times: Vec<f64> = (0..10_000).map(|_| rng.uniform01() * 1e6).collect();
        b.iter(|| {
            // Deliberately mis-hinted by the spread (events span 1e6 time
            // units): exercises the overflow lane + epoch jumps too.
            let mut q = CalendarQueue::with_rate_hint(64.0);
            for (i, &t) in times.iter().enumerate() {
                q.push(t, i as u32);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v as u64);
            }
            black_box(acc)
        });
    });
    // The simulator's actual pattern: ~1600 pending events, 80% pushed at
    // now + 1.0 (service completions), 20% at now + Exp (arrivals).
    let mut group = c.benchmark_group("scheduler_steady_state");
    for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
        group.bench_function(kind.name(), |b| {
            let mut rng = SimRng::new(2);
            let mut q = hyperroute_desim::Scheduler::new(kind, 2048.0);
            for i in 0..1600u32 {
                q.push(rng.uniform01(), i);
            }
            let mut i = 0u64;
            b.iter(|| {
                let (t, v) = q.pop().expect("queue never drains");
                let dt = if i.is_multiple_of(5) {
                    rng.exp(400.0)
                } else {
                    1.0
                };
                q.push(t + dt, v);
                i += 1;
                black_box(v)
            });
        });
    }
    group.finish();
}

fn bench_hypercube_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypercube_sim");
    group.sample_size(10);
    for &(d, rho) in &[(6usize, 0.5f64), (8, 0.8)] {
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            group.bench_function(format!("d{d}_rho{rho}/{}", kind.name()), |b| {
                let scenario = Scenario::builder(Topology::Hypercube { dim: d })
                    .lambda(rho / 0.5)
                    .p(0.5)
                    .scheduler(kind)
                    .horizon(100.0)
                    .warmup(20.0)
                    .seed(7)
                    .build()
                    .expect("valid scenario");
                b.iter(|| black_box(scenario.run().expect("scenario runs").delivered));
            });
        }
    }
    group.finish();
}

fn bench_ps_server(c: &mut Criterion) {
    c.bench_function("ps_server_10k_cycles", |b| {
        b.iter_batched(
            PsServer::unit,
            |mut ps| {
                let mut t = 0.0;
                for i in 0..10_000u64 {
                    ps.arrive(t, i);
                    let d = ps.next_departure_time().unwrap();
                    ps.complete_next(d);
                    t = d + 0.1;
                }
                black_box(t)
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_batch_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_routing");
    group.sample_size(20);
    for &d in &[8usize, 10] {
        let mut rng = SimRng::new(11);
        let batch = random_permutation_batch(d, &mut rng);
        group.bench_function(format!("permutation_d{d}"), |b| {
            b.iter(|| black_box(route_batch_greedy(d, &batch).makespan));
        });
    }
    group.finish();
}

criterion_group!(
    kernels,
    bench_event_queue,
    bench_hypercube_sim,
    bench_ps_server,
    bench_batch_routing
);
criterion_main!(kernels);
