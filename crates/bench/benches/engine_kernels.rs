//! Criterion microbenches of the simulation kernels: event-queue
//! throughput, packet-level simulation rate, PS-server churn, and static
//! batch routing. These are the ablation benches for the engine design
//! choices called out in DESIGN.md (arc-indexed flat queues, merged
//! Poisson arrivals, virtual-time PS).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hyperroute_core::batch::{random_permutation_batch, route_batch_greedy};
use hyperroute_core::{HypercubeSim, HypercubeSimConfig};
use hyperroute_desim::{EventQueue, SimRng};
use hyperroute_queueing::PsServer;
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        let mut rng = SimRng::new(1);
        let times: Vec<f64> = (0..10_000).map(|_| rng.uniform01() * 1e6).collect();
        b.iter(|| {
            let mut q = EventQueue::with_capacity(times.len());
            for (i, &t) in times.iter().enumerate() {
                q.push(t, i as u32);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v as u64);
            }
            black_box(acc)
        });
    });
}

fn bench_hypercube_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypercube_sim");
    group.sample_size(10);
    for &(d, rho) in &[(6usize, 0.5f64), (8, 0.8)] {
        group.bench_function(format!("d{d}_rho{rho}"), |b| {
            b.iter(|| {
                let cfg = HypercubeSimConfig {
                    dim: d,
                    lambda: rho / 0.5,
                    p: 0.5,
                    horizon: 100.0,
                    warmup: 20.0,
                    seed: 7,
                    ..Default::default()
                };
                black_box(HypercubeSim::new(cfg).run().delivered)
            });
        });
    }
    group.finish();
}

fn bench_ps_server(c: &mut Criterion) {
    c.bench_function("ps_server_10k_cycles", |b| {
        b.iter_batched(
            PsServer::unit,
            |mut ps| {
                let mut t = 0.0;
                for i in 0..10_000u64 {
                    ps.arrive(t, i);
                    let d = ps.next_departure_time().unwrap();
                    ps.complete_next(d);
                    t = d + 0.1;
                }
                black_box(t)
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_batch_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_routing");
    group.sample_size(20);
    for &d in &[8usize, 10] {
        let mut rng = SimRng::new(11);
        let batch = random_permutation_batch(d, &mut rng);
        group.bench_function(format!("permutation_d{d}"), |b| {
            b.iter(|| black_box(route_batch_greedy(d, &batch).makespan));
        });
    }
    group.finish();
}

criterion_group!(
    kernels,
    bench_event_queue,
    bench_hypercube_sim,
    bench_ps_server,
    bench_batch_routing
);
criterion_main!(kernels);
