//! Bench target regenerating the e07_greedy_lower_bound experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e07_greedy_lower_bound",
        hyperroute_experiments::e07_greedy_lower_bound::run,
    );
}
