//! Bench target regenerating the e01_stability_necessary experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e01_stability_necessary",
        hyperroute_experiments::e01_stability_necessary::run,
    );
}
