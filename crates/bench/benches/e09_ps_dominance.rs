//! Bench target regenerating the e09_ps_dominance experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e09_ps_dominance",
        hyperroute_experiments::e09_ps_dominance::run,
    );
}
