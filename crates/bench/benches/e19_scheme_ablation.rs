//! Bench target regenerating the e19_scheme_ablation experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e19_scheme_ablation",
        hyperroute_experiments::e19_scheme_ablation::run,
    );
}
