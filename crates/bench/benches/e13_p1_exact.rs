//! Bench target regenerating the e13_p1_exact experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench("e13_p1_exact", hyperroute_experiments::e13_p1_exact::run);
}
