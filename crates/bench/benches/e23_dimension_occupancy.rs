//! Bench target regenerating the e23_dimension_occupancy experiment table.
fn main() {
    hyperroute_bench::run_table_bench(
        "e23_dimension_occupancy",
        hyperroute_experiments::e23_dimension_occupancy::run,
    );
}
