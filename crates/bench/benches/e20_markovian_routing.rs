//! Bench target regenerating the e20_markovian_routing experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e20_markovian_routing",
        hyperroute_experiments::e20_markovian_routing::run,
    );
}
