//! Bench target regenerating the e17_butterfly_stability experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e17_butterfly_stability",
        hyperroute_experiments::e17_butterfly_stability::run,
    );
}
