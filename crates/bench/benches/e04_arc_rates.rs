//! Bench target regenerating the e04_arc_rates experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench("e04_arc_rates", hyperroute_experiments::e04_arc_rates::run);
}
