//! Bench target regenerating the e16_butterfly_arc_rates experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e16_butterfly_arc_rates",
        hyperroute_experiments::e16_butterfly_arc_rates::run,
    );
}
