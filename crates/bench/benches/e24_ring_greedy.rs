//! Bench target regenerating the e24_ring_greedy experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e24_ring_greedy",
        hyperroute_experiments::e24_ring_greedy::run,
    );
}
