//! Bench target regenerating the e26_fault_tolerance experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e26_fault_tolerance",
        hyperroute_experiments::e26_fault_tolerance::run,
    );
}
