//! Bench target regenerating the e12_pipelined_instability experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e12_pipelined_instability",
        hyperroute_experiments::e12_pipelined_instability::run,
    );
}
