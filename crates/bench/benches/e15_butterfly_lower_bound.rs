//! Bench target regenerating the e15_butterfly_lower_bound experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e15_butterfly_lower_bound",
        hyperroute_experiments::e15_butterfly_lower_bound::run,
    );
}
