//! Bench target regenerating the e25_torus_greedy experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e25_torus_greedy",
        hyperroute_experiments::e25_torus_greedy::run,
    );
}
