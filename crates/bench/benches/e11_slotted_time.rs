//! Bench target regenerating the e11_slotted_time experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e11_slotted_time",
        hyperroute_experiments::e11_slotted_time::run,
    );
}
