//! Bench target regenerating the e08_fifo_ps_servers experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e08_fifo_ps_servers",
        hyperroute_experiments::e08_fifo_ps_servers::run,
    );
}
