//! Bench target regenerating the e02_universal_lower_bound experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e02_universal_lower_bound",
        hyperroute_experiments::e02_universal_lower_bound::run,
    );
}
