//! Bench target regenerating the e22_contention_policies experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e22_contention_policies",
        hyperroute_experiments::e22_contention_policies::run,
    );
}
