//! Bench target regenerating the e03_oblivious_lower_bound experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e03_oblivious_lower_bound",
        hyperroute_experiments::e03_oblivious_lower_bound::run,
    );
}
