//! Bench target regenerating the e14_heavy_traffic experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e14_heavy_traffic",
        hyperroute_experiments::e14_heavy_traffic::run,
    );
}
