//! Bench target regenerating the e10_product_form experiment table (see DESIGN.md §4).
fn main() {
    hyperroute_bench::run_table_bench(
        "e10_product_form",
        hyperroute_experiments::e10_product_form::run,
    );
}
