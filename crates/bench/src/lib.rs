//! Shared plumbing for the table-regenerating bench targets.
//!
//! Every experiment from DESIGN.md's index has a `harness = false` bench
//! target whose `main` calls [`run_table_bench`]: it executes the
//! experiment, prints the paper-vs-measured table, and reports wall-clock
//! time. `cargo bench` therefore regenerates every table.
//!
//! Scale control: set `HYPERROUTE_SCALE=full` for the EXPERIMENTS.md grids
//! (long horizons); the default `quick` keeps a full `cargo bench` run in
//! the minutes range on a laptop.

pub mod seed_baseline;

use hyperroute_experiments::{Scale, Table};
use std::time::Instant;

/// Read the experiment scale from `HYPERROUTE_SCALE` (`full`/`quick`).
pub fn scale_from_env() -> Scale {
    match std::env::var("HYPERROUTE_SCALE").as_deref() {
        Ok("full") | Ok("FULL") => Scale::Full,
        _ => Scale::Quick,
    }
}

/// Run one experiment harness, print its table and timing.
pub fn run_table_bench(name: &str, f: fn(Scale) -> Table) {
    let scale = scale_from_env();
    eprintln!("[{name}] scale = {scale:?} (HYPERROUTE_SCALE=full for EXPERIMENTS.md grids)");
    let start = Instant::now();
    let table = f(scale);
    let elapsed = start.elapsed();
    println!("{}", table.render());
    println!("[{name}] regenerated in {:.2}s", elapsed.as_secs_f64());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        // Unless the caller set the env var, benches default to quick.
        if std::env::var("HYPERROUTE_SCALE").is_err() {
            assert_eq!(scale_from_env(), Scale::Quick);
        }
    }
}
