//! The seed revision's hypercube engine, frozen for A/B benchmarking.
//!
//! This module preserves the **pre-calendar-queue** engine as the seed
//! tree ran it, so `BENCH_engine.json` can measure the shipped engine
//! against its true baseline *in the same process*:
//!
//! * binary-heap future-event list with a release-mode validity `assert!`
//!   on every push;
//! * one `VecDeque<Packet>` per arc plus a separate `Vec<Option<Packet>>`
//!   serving array (scattered per-arc ring buffers), with
//!   `VecDeque::remove(idx)` service selection;
//! * per-bit Bernoulli destination sampling (one `uniform01` draw per
//!   dimension) behind the custom-pmf `Option` check;
//! * the seed metrics stack on every event: Welford mean/variance for
//!   delays and hops, nested-Welford batch means, the float-multiply
//!   reservoir step, and peak-tracking time-weighted signals for the
//!   number-in-system and per-dimension occupancies (with their warm-up
//!   reset and horizon freeze branches);
//! * `arc / d`, `arc % d` integer divisions by the runtime dimension on
//!   every completion, and the per-event sampling/drain checks of the
//!   seed's `drive` loop.
//!
//! Faithfulness check: at d8/ρ0.8 this module reproduces the throughput of
//! the actual seed tree built standalone to within measurement noise
//! (~7.9 Mev/s on the build machine). Do not "fix" this module — its
//! inefficiencies are the measurement. It produces the same
//! *distributions* as the shipped engine but not the same draws (the
//! shipped engine batches its Bernoulli sampling), so it is benchmarked,
//! never differentially tested.

use hyperroute_desim::SimRng;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

#[derive(Clone, Copy)]
struct Packet {
    born: f64,
    remaining: u32,
    second_leg_dest: u32,
    hops: u16,
}

const NO_SECOND_LEG: u32 = u32::MAX;

struct Entry {
    time: f64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Clone, Copy)]
enum Ev {
    Arrival,
    Complete(u32),
}

/// Seed-style Welford (division per push).
#[derive(Clone, Copy, Default)]
struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    #[inline]
    fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }
}

/// Seed-style nested-Welford batch means.
#[derive(Clone, Copy)]
struct BatchMeans {
    batch_size: u64,
    current: Welford,
    batches: Welford,
}

impl BatchMeans {
    #[inline]
    fn push(&mut self, x: f64) {
        self.current.push(x);
        if self.current.count == self.batch_size {
            let m = self.current.mean;
            self.batches.push(m);
            self.current = Welford::default();
        }
    }
}

/// Seed-style reservoir (float multiply acceptance draw).
struct Reservoir {
    sample: Vec<f64>,
    capacity: usize,
    seen: u64,
    rng: SimRng,
}

impl Reservoir {
    #[inline]
    fn push(&mut self, x: f64) {
        self.seen += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(x);
        } else {
            let j = (self.rng.uniform01() * self.seen as f64) as u64;
            if (j as usize) < self.capacity {
                self.sample[j as usize] = x;
            }
        }
    }
}

/// Seed-style time-weighted signal (peak tracking everywhere, `set`-based
/// updates).
#[derive(Clone, Copy)]
struct TimeWeighted {
    start: f64,
    last_t: f64,
    value: f64,
    integral: f64,
    peak: f64,
}

impl TimeWeighted {
    fn new() -> TimeWeighted {
        TimeWeighted {
            start: 0.0,
            last_t: 0.0,
            value: 0.0,
            integral: 0.0,
            peak: 0.0,
        }
    }

    #[inline]
    fn set(&mut self, t: f64, value: f64) {
        self.integral += self.value * (t - self.last_t);
        self.last_t = t;
        self.value = value;
        if value > self.peak {
            self.peak = value;
        }
    }

    #[inline]
    fn add(&mut self, t: f64, delta: f64) {
        let v = self.value + delta;
        self.set(t, v);
    }

    fn reset(&mut self, t: f64) {
        self.start = t;
        self.last_t = t;
        self.integral = 0.0;
        self.peak = self.value;
    }
}

/// Seed-style collector: warm-up reset, horizon freeze, Welford delays and
/// hops, batch means, reservoir, zero-hop counting.
struct Collector {
    warmup: f64,
    horizon: f64,
    delays: Welford,
    delay_batches: BatchMeans,
    reservoir: Reservoir,
    hops: Welford,
    zero_hop: u64,
    in_system: TimeWeighted,
    in_system_reset_done: bool,
    in_system_frozen: bool,
    generated: u64,
    delivered_measured: u64,
    delivered_total: u64,
}

impl Collector {
    #[inline]
    fn bump_in_system(&mut self, t: f64, delta: f64) {
        if self.in_system_frozen {
            return;
        }
        if !self.in_system_reset_done && t >= self.warmup {
            self.in_system.set(self.warmup, self.in_system.value);
            self.in_system.reset(self.warmup);
            self.in_system_reset_done = true;
        }
        if t >= self.horizon {
            self.in_system.set(self.horizon, self.in_system.value);
            self.in_system_frozen = true;
            return;
        }
        self.in_system.add(t, delta);
    }

    #[inline]
    fn on_generated(&mut self, t: f64) {
        self.generated += 1;
        self.bump_in_system(t, 1.0);
    }

    #[inline]
    fn on_delivered(&mut self, t: f64, born: f64, hops: u16) {
        self.delivered_total += 1;
        self.bump_in_system(t, -1.0);
        if born >= self.warmup && born < self.horizon {
            let delay = t - born;
            self.delays.push(delay);
            self.delay_batches.push(delay);
            self.reservoir.push(delay);
            self.hops.push(hops as f64);
            if hops == 0 {
                self.zero_hop += 1;
            }
            self.delivered_measured += 1;
        }
    }
}

/// Summary counters from a baseline run (throughput measurement only).
pub struct BaselineRun {
    /// Events processed (arrivals + completions).
    pub events: u64,
    /// Packets generated.
    pub generated: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Guard value so the optimizer cannot elide the statistics work.
    pub checksum: f64,
}

/// Run the frozen seed engine: hypercube, greedy routing, FIFO contention,
/// Poisson arrivals, bit-flip destinations — the seed's exact hot path,
/// including its full measurement stack. `warmup` is `0.2 · horizon`,
/// matching the shipped bench configs.
pub fn run_seed_engine(dim: usize, lambda: f64, p: f64, horizon: f64, seed: u64) -> BaselineRun {
    assert!((1..=26).contains(&dim));
    let nodes = 1usize << dim;
    let arcs = nodes * dim;
    let warmup = horizon * 0.2;
    let mut root = SimRng::new(seed);
    let mut arrival_rng = root.split();
    let mut dest_rng = root.split();
    let _route_rng = root.split();
    let _contention_rng = root.split();

    let mut queues: Vec<VecDeque<Packet>> = vec![VecDeque::new(); arcs];
    let mut serving: Vec<Option<Packet>> = vec![None; arcs];
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(1024);
    let mut seq = 0u64;
    let total_rate = lambda * nodes as f64;

    let expected = (lambda * nodes as f64 * (horizon - warmup)).max(64.0);
    let mut collector = Collector {
        warmup,
        horizon,
        delays: Welford::default(),
        delay_batches: BatchMeans {
            batch_size: ((expected / 32.0).ceil() as u64).max(1),
            current: Welford::default(),
            batches: Welford::default(),
        },
        reservoir: Reservoir {
            sample: Vec::with_capacity(4096),
            capacity: 4096,
            seen: 0,
            rng: SimRng::new(seed ^ 0x5EED_5EED),
        },
        hops: Welford::default(),
        zero_hop: 0,
        in_system: TimeWeighted::new(),
        in_system_reset_done: warmup == 0.0,
        in_system_frozen: false,
        generated: 0,
        delivered_measured: 0,
        delivered_total: 0,
    };
    let mut dim_occupancy: Vec<TimeWeighted> = vec![TimeWeighted::new(); dim];
    let mut dim_occ_reset_done = warmup == 0.0;
    let mut dim_arrivals: Vec<u64> = vec![0; dim];
    // The seed's custom-pmf hook: a per-packet Option check on this path.
    let mask_sampler: Option<Vec<f64>> = None;

    let mut events = 0u64;
    // The seed's drive() sampling hook, checked once per event.
    let mut sampling: Option<(f64, Vec<(f64, f64)>)> = None;
    let drain = true;
    #[allow(unused_assignments)]
    let mut now = 0.0f64;

    macro_rules! push_event {
        ($t:expr, $ev:expr) => {{
            let time: f64 = $t;
            // Seed behavior: validity assert on every push, release too.
            assert!(time.is_finite() && time >= 0.0, "bad event time {time}");
            heap.push(Entry { time, seq, ev: $ev });
            seq += 1;
        }};
    }

    macro_rules! bump_dim_occupancy {
        ($t:expr, $dim:expr, $delta:expr) => {{
            let t: f64 = $t;
            if !dim_occ_reset_done && t >= warmup {
                for tw in dim_occupancy.iter_mut() {
                    let current = tw.value;
                    tw.set(warmup, current);
                    tw.reset(warmup);
                }
                dim_occ_reset_done = true;
            }
            if t < horizon {
                dim_occupancy[$dim].add(t, $delta);
            }
        }};
    }

    macro_rules! enqueue {
        ($t:expr, $node:expr, $pkt:expr) => {{
            let t: f64 = $t;
            let node: u32 = $node;
            let mut pkt: Packet = $pkt;
            let d0 = pkt.remaining.trailing_zeros() as usize;
            pkt.remaining &= !(1u32 << d0);
            let arc = node as usize * dim + d0;
            if t >= warmup && t < horizon {
                dim_arrivals[d0] += 1;
            }
            bump_dim_occupancy!(t, d0, 1.0);
            if serving[arc].is_none() {
                serving[arc] = Some(pkt);
                push_event!(t + 1.0, Ev::Complete(arc as u32));
            } else {
                queues[arc].push_back(pkt);
            }
        }};
    }

    // Seed flip sampling: one Bernoulli draw per dimension.
    let flip_mask = |rng: &mut SimRng| -> u32 {
        let mut mask = 0u32;
        for i in 0..dim {
            if rng.bernoulli(p) {
                mask |= 1 << i;
            }
        }
        mask
    };

    if total_rate > 0.0 {
        push_event!(arrival_rng.exp(total_rate), Ev::Arrival);
    }

    while let Some(Entry { time: t, ev, .. }) = heap.pop() {
        if let Some((interval, samples)) = &mut sampling {
            if *interval <= t {
                samples.push((t, 0.0));
            }
        }
        events += 1;
        now = t;
        match ev {
            Ev::Arrival => {
                let next = t + arrival_rng.exp(total_rate);
                if next < horizon {
                    push_event!(next, Ev::Arrival);
                }
                let node = arrival_rng.below(nodes) as u32;
                collector.on_generated(t);
                let mask = match &mask_sampler {
                    Some(_) => unreachable!("no custom pmf in the baseline bench"),
                    None => flip_mask(&mut dest_rng),
                };
                if mask == 0 {
                    collector.on_delivered(t, t, 0);
                } else {
                    let pkt = Packet {
                        born: t,
                        remaining: mask,
                        second_leg_dest: NO_SECOND_LEG,
                        hops: 0,
                    };
                    enqueue!(t, node, pkt);
                }
            }
            Ev::Complete(arc) => {
                let arc = arc as usize;
                let mut pkt = serving[arc].take().expect("no packet in service");
                // Seed hot path: divisions by the runtime dimension.
                bump_dim_occupancy!(t, arc % dim, -1.0);
                // start_next_service: contention pick via VecDeque::remove.
                if !queues[arc].is_empty() {
                    let idx = 0; // ContentionPolicy::Fifo
                    let next = queues[arc].remove(idx).expect("index in range");
                    serving[arc] = Some(next);
                    push_event!(t + 1.0, Ev::Complete(arc as u32));
                }
                pkt.hops += 1;
                let node = (arc / dim) as u32 ^ (1u32 << (arc % dim));
                if pkt.remaining != 0 {
                    enqueue!(t, node, pkt);
                } else if pkt.second_leg_dest != NO_SECOND_LEG {
                    unreachable!("greedy baseline has no second leg");
                } else {
                    collector.on_delivered(t, pkt.born, pkt.hops);
                }
            }
        }
        if !drain && t >= horizon {
            break;
        }
    }

    BaselineRun {
        events,
        generated: collector.generated,
        delivered: collector.delivered_total,
        checksum: now
            + collector.delays.mean
            + collector.delays.m2
            + collector.delay_batches.batches.mean
            + collector.hops.mean
            + collector.zero_hop as f64
            + collector.in_system.integral
            + collector.in_system.peak
            + collector.delivered_measured as f64
            + dim_occupancy
                .iter()
                .map(|x| x.integral + x.peak + x.start)
                .sum::<f64>()
            + collector.reservoir.sample.iter().sum::<f64>()
            + dim_arrivals.iter().sum::<u64>() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_engine_conserves_packets() {
        let r = run_seed_engine(4, 1.2, 0.5, 300.0, 9);
        assert_eq!(r.generated, r.delivered);
        assert!(r.events > r.generated);
        assert!(r.checksum.is_finite());
    }

    #[test]
    fn seed_engine_event_count_matches_hop_structure() {
        // events = arrivals + completions = generated + total hops; mean
        // hops ≈ dp ⇒ events ≈ generated · (1 + dp).
        let r = run_seed_engine(6, 1.0, 0.5, 400.0, 3);
        let per_packet = r.events as f64 / r.generated as f64;
        assert!(
            (per_packet - 4.0).abs() < 0.2,
            "events per packet {per_packet} vs 1 + dp = 4"
        );
    }
}
