//! The `k`-ary `d`-cube (torus) under dimension-ordered greedy routing.
//!
//! A torus node is a vector of `d` digits base `k`; each node has two
//! outgoing arcs per dimension (`+1` and `-1` modulo `k`), so the graph is
//! the direct product of `d` bidirectional `k`-rings. It generalises both
//! networks this repository grew from: `k = 2`-ish behaviour recovers the
//! hypercube's dimension structure, and `d = 1` is exactly the
//! bidirectional [`crate::Ring`]. Greedy routing composes the two rules:
//! fix the **lowest differing dimension first** (the hypercube's canonical
//! order, §1.1) and walk that digit's ring the **shorter way around**
//! (ties toward `+1`, the ring's clockwise tie rule) — so per-hop progress
//! is strict and paths are deterministic.
//!
//! Arc indexing is dense: arc `(node, dim, dir)` has index
//! `node·2d + 2·dim + dir` with `dir` 0 for `+1` ("up") and 1 for `-1`
//! ("down"), keeping all arcs of a node contiguous.

use crate::node::NodeId;

/// Maximum supported node count (`2^26`, matching the hypercube/ring caps
/// and the packed per-arc routing words the simulators use).
pub const MAX_TORUS_NODES: usize = 1 << 26;

/// The `k`-ary `d`-cube: `k^d` nodes, `2d` arcs per node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Torus {
    radix: usize,
    dim: usize,
    nodes: usize,
}

/// Direction of a torus arc within its dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TorusDirection {
    /// Digit `+1 (mod k)`.
    Up,
    /// Digit `-1 (mod k)`.
    Down,
}

impl Torus {
    /// A `k`-ary `d`-cube. Panics unless `k >= 3`, `d >= 1` and
    /// `k^d <= MAX_TORUS_NODES` (`k >= 3` keeps the two directions of a
    /// dimension distinct arcs to distinct neighbours).
    pub fn new(radix: usize, dim: usize) -> Torus {
        assert!(radix >= 3, "torus radix must be at least 3");
        assert!(dim >= 1, "torus needs at least one dimension");
        let mut nodes = 1usize;
        for _ in 0..dim {
            nodes = nodes
                .checked_mul(radix)
                .filter(|&n| n <= MAX_TORUS_NODES)
                .unwrap_or_else(|| panic!("torus size {radix}^{dim} exceeds {MAX_TORUS_NODES}"));
        }
        Torus { radix, dim, nodes }
    }

    /// The ring size `k` of every dimension.
    #[inline]
    pub fn radix(self) -> usize {
        self.radix
    }

    /// Number of dimensions `d`.
    #[inline]
    pub fn dim(self) -> usize {
        self.dim
    }

    /// Number of nodes `k^d`.
    #[inline]
    pub fn num_nodes(self) -> usize {
        self.nodes
    }

    /// Number of directed arcs `k^d · 2d`.
    #[inline]
    pub fn num_arcs(self) -> usize {
        self.nodes * 2 * self.dim
    }

    /// Network diameter `d·⌊k/2⌋`.
    #[inline]
    pub fn diameter(self) -> usize {
        self.dim * (self.radix / 2)
    }

    /// Iterator over all node identities `0..k^d`.
    pub fn nodes(self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.nodes).map(|v| NodeId(v as u64))
    }

    /// Digit `i` of `node` (base-`k` little-endian).
    #[inline]
    pub fn digit(self, node: u64, i: usize) -> u64 {
        debug_assert!(i < self.dim);
        let k = self.radix as u64;
        (node / k.pow(i as u32)) % k
    }

    /// Greedy (shortest-path) distance: the sum over dimensions of each
    /// digit ring's shorter-way distance.
    pub fn distance(self, src: u64, dst: u64) -> usize {
        let k = self.radix as u64;
        let (mut s, mut t, mut total) = (src, dst, 0usize);
        for _ in 0..self.dim {
            let cw = ((t % k) + k - (s % k)) % k;
            total += cw.min(k - cw) as usize;
            s /= k;
            t /= k;
        }
        total
    }

    /// The greedy step out of `src` toward `dst != src`: the lowest
    /// dimension whose digits differ, walked the shorter way around its
    /// ring (ties toward [`TorusDirection::Up`]).
    #[inline]
    pub fn greedy_step(self, src: u64, dst: u64) -> (usize, TorusDirection) {
        debug_assert!(src != dst);
        let k = self.radix as u64;
        let (mut s, mut t) = (src, dst);
        for i in 0..self.dim {
            let (sd, td) = (s % k, t % k);
            if sd != td {
                let cw = (td + k - sd) % k;
                let dir = if 2 * cw > k {
                    TorusDirection::Down
                } else {
                    TorusDirection::Up
                };
                return (i, dir);
            }
            s /= k;
            t /= k;
        }
        unreachable!("greedy_step on equal nodes");
    }

    /// Dense index of `node`'s outgoing arc in dimension `dim` and
    /// `direction`: `node·2d + 2·dim + dir`.
    #[inline]
    pub fn arc_index(self, node: u64, dim: usize, direction: TorusDirection) -> usize {
        debug_assert!(dim < self.dim && (node as usize) < self.nodes);
        node as usize * 2 * self.dim + 2 * dim + (direction == TorusDirection::Down) as usize
    }

    /// Tail node, dimension and direction of the arc with dense index
    /// `idx`.
    #[inline]
    pub fn arc_from_index(self, idx: usize) -> (u64, usize, TorusDirection) {
        debug_assert!(idx < self.num_arcs());
        let node = (idx / (2 * self.dim)) as u64;
        let rest = idx % (2 * self.dim);
        let dir = if rest & 1 == 0 {
            TorusDirection::Up
        } else {
            TorusDirection::Down
        };
        (node, rest / 2, dir)
    }

    /// Head node of `node`'s arc in dimension `dim` and `direction`.
    #[inline]
    pub fn step(self, node: u64, dim: usize, direction: TorusDirection) -> u64 {
        let k = self.radix as u64;
        let base = k.pow(dim as u32);
        let digit = (node / base) % k;
        let next = match direction {
            TorusDirection::Up => (digit + 1) % k,
            TorusDirection::Down => (digit + k - 1) % k,
        };
        node - digit * base + next * base
    }

    /// Expected greedy path length under uniform destinations (including
    /// the origin itself): `d · ⌊k²/4⌋ / k` — each digit is an independent
    /// uniform bidirectional-ring offset.
    pub fn mean_path_length(self) -> f64 {
        let k = self.radix;
        self.dim as f64 * ((k * k) / 4) as f64 / k as f64
    }

    /// Per-arc load factor under per-node Poisson rate `λ` and uniform
    /// destinations: by symmetry every arc of one direction of one
    /// dimension sees `λ · E[up-hops per digit] = λ·m(m+1)/2k` with
    /// `m = ⌊k/2⌋` (the bidirectional ring's formula, per dimension).
    /// Stability needs this below 1.
    pub fn load_factor(self, lambda: f64) -> f64 {
        let m = self.radix / 2;
        lambda * (m * (m + 1) / 2) as f64 / self.radix as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_diameter() {
        let t = Torus::new(4, 3);
        assert_eq!(t.num_nodes(), 64);
        assert_eq!(t.num_arcs(), 64 * 6);
        assert_eq!(t.diameter(), 6);
        assert_eq!(Torus::new(3, 1).num_arcs(), 6);
    }

    #[test]
    #[should_panic(expected = "radix")]
    fn radix_two_rejected() {
        Torus::new(2, 4);
    }

    #[test]
    fn digits_round_trip() {
        let t = Torus::new(5, 3);
        let node = 2 + 4 * 5 + 3 * 25; // digits (2, 4, 3)
        assert_eq!(t.digit(node, 0), 2);
        assert_eq!(t.digit(node, 1), 4);
        assert_eq!(t.digit(node, 2), 3);
    }

    #[test]
    fn distance_sums_ring_distances() {
        let t = Torus::new(5, 2);
        // (0,0) → (2,4): digit 0 goes +2, digit 1 goes -1.
        let dst = 2 + 4 * 5;
        assert_eq!(t.distance(0, dst), 3);
        assert_eq!(t.distance(dst, 0), 3);
        assert_eq!(t.distance(dst, dst), 0);
    }

    #[test]
    fn greedy_walk_reaches_destination_in_distance_hops() {
        let t = Torus::new(4, 2);
        for src in 0..16u64 {
            for dst in 0..16u64 {
                let mut at = src;
                let mut hops = 0;
                while at != dst {
                    let (dim, dir) = t.greedy_step(at, dst);
                    let before = t.distance(at, dst);
                    at = t.step(at, dim, dir);
                    assert_eq!(t.distance(at, dst), before - 1, "{src}→{dst} via {at}");
                    hops += 1;
                }
                assert_eq!(hops, t.distance(src, dst), "{src}→{dst}");
            }
        }
    }

    #[test]
    fn greedy_ties_go_up_and_low_dimension_first() {
        let t = Torus::new(4, 2);
        // Antipodal digit (distance 2 = k/2): tie broken Up.
        assert_eq!(t.greedy_step(0, 2), (0, TorusDirection::Up));
        // Lowest differing dimension first: dest (1, 3) fixes digit 0 first.
        let dst = 1 + 3 * 4;
        assert_eq!(t.greedy_step(0, dst), (0, TorusDirection::Up));
        // Digit 0 equal → dimension 1; offset 3 of 4 goes Down.
        assert_eq!(t.greedy_step(1, dst), (1, TorusDirection::Down));
    }

    #[test]
    fn arc_index_round_trips_densely() {
        let t = Torus::new(3, 2);
        let mut seen = vec![false; t.num_arcs()];
        for node in 0..9u64 {
            for dim in 0..2usize {
                for dir in [TorusDirection::Up, TorusDirection::Down] {
                    let idx = t.arc_index(node, dim, dir);
                    assert!(!seen[idx], "collision at {idx}");
                    seen[idx] = true;
                    assert_eq!(t.arc_from_index(idx), (node, dim, dir));
                    assert_ne!(t.step(node, dim, dir), node, "self-loop");
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn closed_forms_match_distance_sums() {
        for (k, d) in [(3usize, 2usize), (4, 2), (5, 2), (6, 1), (3, 3)] {
            let t = Torus::new(k, d);
            let n = t.num_nodes();
            let mean: f64 = (0..n as u64)
                .map(|dst| t.distance(0, dst) as f64)
                .sum::<f64>()
                / n as f64;
            assert!(
                (t.mean_path_length() - mean).abs() < 1e-12,
                "k={k} d={d}: {} vs {mean}",
                t.mean_path_length()
            );
            // Up-hops of dimension 0 over uniform destinations.
            let up0: usize = (0..n as u64)
                .map(|dst| {
                    let cw = ((t.digit(dst, 0) + k as u64 - t.digit(0, 0)) % k as u64) as usize;
                    if 2 * cw > k {
                        0
                    } else {
                        cw
                    }
                })
                .sum();
            let expect = up0 as f64 / n as f64;
            assert!(
                (t.load_factor(1.0) - expect).abs() < 1e-12,
                "k={k} d={d}: {} vs {expect}",
                t.load_factor(1.0)
            );
        }
    }
}
