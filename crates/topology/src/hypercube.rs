//! The `d`-dimensional binary hypercube (paper §1.1).

use crate::arcs::HypercubeArc;
use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// Maximum supported hypercube dimension.
///
/// `2^26` nodes × 26 arcs each already exceeds a billion queue slots; higher
/// dimensions are analytically interesting but not simulable, and `u64`
/// node identities cap out at 63 anyway.
pub const MAX_DIM: usize = 26;

/// The `d`-dimensional binary hypercube.
///
/// `2^d` nodes, `d·2^d` directed arcs; arc `(x, x ⊕ e_j)` is of *type* `j`
/// and the set of all type-`j` arcs is the `j`-th *dimension*. Diameter `d`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hypercube {
    dim: usize,
}

impl Hypercube {
    /// Create a `d`-cube. Panics if `d == 0` or `d > MAX_DIM`.
    pub fn new(dim: usize) -> Hypercube {
        assert!(dim >= 1, "hypercube dimension must be at least 1");
        assert!(dim <= MAX_DIM, "hypercube dimension must be ≤ {MAX_DIM}");
        Hypercube { dim }
    }

    /// Dimension `d`.
    #[inline]
    pub fn dim(self) -> usize {
        self.dim
    }

    /// Number of nodes, `2^d`.
    #[inline]
    pub fn num_nodes(self) -> usize {
        1 << self.dim
    }

    /// Number of directed arcs, `d · 2^d`.
    #[inline]
    pub fn num_arcs(self) -> usize {
        self.dim << self.dim
    }

    /// Network diameter (equals `d`, paper §1.1).
    #[inline]
    pub fn diameter(self) -> usize {
        self.dim
    }

    /// Whether `node` is a valid node of this cube.
    #[inline]
    pub fn contains(self, node: NodeId) -> bool {
        node.0 < (1u64 << self.dim)
    }

    /// Iterator over all node identities `0..2^d`.
    pub fn nodes(self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.num_nodes()).map(|v| NodeId(v as u64))
    }

    /// The neighbour of `node` across dimension `dim`.
    #[inline]
    pub fn neighbor(self, node: NodeId, dim: usize) -> NodeId {
        debug_assert!(dim < self.dim);
        node.flip(dim)
    }

    /// Iterator over the `d` neighbours of `node` in dimension order.
    pub fn neighbors(self, node: NodeId) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.dim).map(move |j| node.flip(j))
    }

    /// Iterator over all `d · 2^d` directed arcs, in dense-index order.
    pub fn arcs(self) -> impl Iterator<Item = HypercubeArc> {
        let d = self.dim;
        self.nodes()
            .flat_map(move |from| (0..d).map(move |dim| HypercubeArc { from, dim }))
    }

    /// The canonical (greedy) shortest path from `src` to `dst`: the needed
    /// dimensions are crossed in increasing index order (paper §1.1).
    ///
    /// Yields one arc per hop; the iterator is empty when `src == dst`.
    /// The path length always equals `src.hamming(dst)`.
    pub fn canonical_path(self, src: NodeId, dst: NodeId) -> CanonicalPath {
        debug_assert!(self.contains(src) && self.contains(dst));
        CanonicalPath {
            at: src,
            dims: src.differing_dims(dst),
        }
    }

    /// Number of shortest paths from `src` to `dst` (`H(src,dst)!`); the
    /// canonical path is the unique one crossing dimensions in increasing
    /// order. Saturates at `u64::MAX` for large distances.
    pub fn num_shortest_paths(self, src: NodeId, dst: NodeId) -> u64 {
        let k = src.hamming(dst) as u64;
        let mut acc: u64 = 1;
        for i in 1..=k {
            acc = acc.saturating_mul(i);
        }
        acc
    }
}

/// Iterator over the arcs of a canonical path (increasing dimension order).
#[derive(Clone, Debug)]
pub struct CanonicalPath {
    at: NodeId,
    dims: crate::node::DifferingDims,
}

impl Iterator for CanonicalPath {
    type Item = HypercubeArc;

    #[inline]
    fn next(&mut self) -> Option<HypercubeArc> {
        let dim = self.dims.next()?;
        let arc = HypercubeArc { from: self.at, dim };
        self.at = arc.to();
        Some(arc)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.dims.size_hint()
    }
}

impl ExactSizeIterator for CanonicalPath {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_counts() {
        let c = Hypercube::new(3);
        assert_eq!(c.num_nodes(), 8);
        assert_eq!(c.num_arcs(), 24);
        assert_eq!(c.diameter(), 3);
        assert_eq!(c.nodes().count(), 8);
        assert_eq!(c.arcs().count(), 24);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_dim_rejected() {
        Hypercube::new(0);
    }

    #[test]
    #[should_panic(expected = "≤")]
    fn oversized_dim_rejected() {
        Hypercube::new(MAX_DIM + 1);
    }

    #[test]
    fn neighbors_differ_in_one_bit() {
        let c = Hypercube::new(5);
        let x = NodeId(0b10110);
        let ns: Vec<NodeId> = c.neighbors(x).collect();
        assert_eq!(ns.len(), 5);
        for (j, n) in ns.iter().enumerate() {
            assert_eq!(x.hamming(*n), 1);
            assert_eq!(x.flip(j), *n);
        }
    }

    #[test]
    fn paper_example_path() {
        // Paper §1.1: (0,0,0,0) → (1,0,1,1) crosses dims 1,3,4 (1-based),
        // i.e. 0,2,3 here, visiting 0001, 0101, 1101 in paper bit-order.
        // In our LSB-first convention the destination is 0b1101.
        let c = Hypercube::new(4);
        let src = NodeId(0b0000);
        let dst = NodeId(0b1101);
        let hops: Vec<HypercubeArc> = c.canonical_path(src, dst).collect();
        let dims: Vec<usize> = hops.iter().map(|a| a.dim).collect();
        assert_eq!(dims, vec![0, 2, 3]);
        let visited: Vec<u64> = hops.iter().map(|a| a.to().0).collect();
        assert_eq!(visited, vec![0b0001, 0b0101, 0b1101]);
    }

    #[test]
    fn canonical_path_is_shortest_and_connected() {
        let c = Hypercube::new(6);
        for src in [0u64, 5, 21, 63] {
            for dst in [0u64, 1, 42, 63] {
                let (src, dst) = (NodeId(src), NodeId(dst));
                let path: Vec<HypercubeArc> = c.canonical_path(src, dst).collect();
                assert_eq!(path.len() as u32, src.hamming(dst));
                // Connectivity: consecutive arcs chain, ends at dst.
                let mut at = src;
                for arc in &path {
                    assert_eq!(arc.from, at);
                    at = arc.to();
                }
                assert_eq!(at, dst);
                // Monotone dimensions.
                assert!(path.windows(2).all(|w| w[0].dim < w[1].dim));
            }
        }
    }

    #[test]
    fn empty_path_for_self_destination() {
        let c = Hypercube::new(4);
        assert_eq!(c.canonical_path(NodeId(7), NodeId(7)).count(), 0);
    }

    #[test]
    fn shortest_path_counts() {
        let c = Hypercube::new(4);
        assert_eq!(c.num_shortest_paths(NodeId(0), NodeId(0)), 1);
        assert_eq!(c.num_shortest_paths(NodeId(0), NodeId(0b1)), 1);
        assert_eq!(c.num_shortest_paths(NodeId(0), NodeId(0b11)), 2);
        assert_eq!(c.num_shortest_paths(NodeId(0), NodeId(0b1111)), 24);
    }

    #[test]
    fn arcs_cover_dense_index_space() {
        let c = Hypercube::new(4);
        let idx: Vec<usize> = c.arcs().map(|a| a.index(4)).collect();
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), c.num_arcs());
        assert_eq!(*sorted.last().unwrap(), c.num_arcs() - 1);
    }

    #[test]
    fn translation_invariance_of_paths() {
        // Renaming x → x ⊕ y* maps canonical paths to canonical paths
        // (paper §1.1, invariance under translation).
        let c = Hypercube::new(5);
        let y_star = NodeId(0b10101);
        let (src, dst) = (NodeId(3), NodeId(28));
        let base: Vec<usize> = c.canonical_path(src, dst).map(|a| a.dim).collect();
        let shifted: Vec<usize> = c
            .canonical_path(src.xor(y_star), dst.xor(y_star))
            .map(|a| a.dim)
            .collect();
        assert_eq!(base, shifted);
    }
}
