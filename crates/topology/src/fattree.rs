//! The binary fat tree (folded butterfly), the high-redundancy endpoint
//! of the fault-survivability spectrum.
//!
//! `L + 1` levels of `2^L` slots. Node `(w; ℓ)` — word `w`, level `ℓ` —
//! has two **up** arcs for `ℓ < L` (straight to `(w; ℓ+1)` and flipped to
//! `(w ⊕ e_ℓ; ℓ+1)`) and two **down** arcs for `ℓ > 0` (to `(w'; ℓ-1)`
//! with bit `ℓ-1` of `w'` forced to 0 or 1). Packets inject at the
//! level-0 **leaves** and are delivered at leaves: a route climbs to the
//! least-common-ancestor level of source and destination, then descends
//! fixing one destination bit per hop. The leaves reachable below
//! `(w; ℓ)` are exactly those agreeing with `w` on bits `ℓ..` — the
//! subtree of the fat tree rooted there.
//!
//! The defining property: **both** up arcs out of a node whose subtree
//! misses the destination make strict shortest-path progress (flipping
//! bit `ℓ` never matters above level `ℓ`), so the ascent has genuine
//! two-way path diversity at every hop. That redundancy is what the
//! multipath fault fallbacks exploit, and what the unique-path butterfly
//! lacks — the fat tree is the natural comparison endpoint.

use crate::node::NodeId;

/// Maximum supported fat-tree level count (bounded like the butterfly so
/// packed per-arc words and dense masks stay cheap).
pub const MAX_LEVELS: usize = 20;

/// The binary fat tree with `L + 1` levels of `2^L` slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FatTree {
    levels: usize,
}

impl FatTree {
    /// An `L`-level binary fat tree. Panics unless `1 <= L <= MAX_LEVELS`.
    pub fn new(levels: usize) -> FatTree {
        assert!(levels >= 1, "fat tree needs at least 1 level");
        assert!(
            levels <= MAX_LEVELS,
            "fat tree levels must be ≤ {MAX_LEVELS}"
        );
        FatTree { levels }
    }

    /// Number of up/down levels `L`.
    #[inline]
    pub fn levels(self) -> usize {
        self.levels
    }

    /// Leaves (and slots per level), `2^L`.
    #[inline]
    pub fn num_leaves(self) -> usize {
        1 << self.levels
    }

    /// Total nodes, `(L+1) · 2^L`.
    #[inline]
    pub fn num_nodes(self) -> usize {
        (self.levels + 1) << self.levels
    }

    /// Up arcs, `2L · 2^L` (two per node on levels `0..L`); they occupy
    /// the dense indices `0..num_up_arcs()`, down arcs the rest.
    #[inline]
    pub fn num_up_arcs(self) -> usize {
        self.levels << (self.levels + 1)
    }

    /// Total directed arcs, `4L · 2^L`.
    #[inline]
    pub fn num_arcs(self) -> usize {
        self.levels << (self.levels + 2)
    }

    /// Flat node encoding for routing: `level · 2^L + word` (level-major,
    /// like the butterfly) — the leaves are node ids `0..2^L` exactly.
    #[inline]
    pub fn encode_node(self, word: u64, level: usize) -> u64 {
        debug_assert!(word < (1u64 << self.levels) && level <= self.levels);
        ((level as u64) << self.levels) | word
    }

    /// Inverse of [`FatTree::encode_node`]: `(word, level)`.
    #[inline]
    pub fn decode_node(self, node: u64) -> (u64, usize) {
        let slots = 1u64 << self.levels;
        (node & (slots - 1), (node >> self.levels) as usize)
    }

    /// Whether leaf `leaf` lies in the subtree below `(word; level)`:
    /// descent can only rewrite bits below `level`.
    #[inline]
    pub fn subtree_contains(self, word: u64, level: usize, leaf: u64) -> bool {
        (word ^ leaf) >> level == 0
    }

    /// Iterator over all leaf words `0..2^L`.
    pub fn leaves(self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.num_leaves()).map(|v| NodeId(v as u64))
    }

    /// Dense index of the up arc out of `(word; level)`, `level < L`:
    /// straight (`flip = false`) or flipping bit `level` (`flip = true`).
    #[inline]
    pub fn up_arc_index(self, word: u64, level: usize, flip: bool) -> usize {
        debug_assert!(level < self.levels && word < (1u64 << self.levels));
        ((((level as u64) << self.levels) | word) as usize) << 1 | flip as usize
    }

    /// Dense index of the down arc out of `(word; level)`, `level >= 1`,
    /// forcing bit `level - 1` of the head word to `bit`.
    #[inline]
    pub fn down_arc_index(self, word: u64, level: usize, bit: u64) -> usize {
        debug_assert!((1..=self.levels).contains(&level) && bit <= 1);
        debug_assert!(word < (1u64 << self.levels));
        self.num_up_arcs()
            + ((((((level - 1) as u64) << self.levels) | word) as usize) << 1 | bit as usize)
    }

    /// `(tail, head)` node ids of the arc with dense index `arc`.
    pub fn arc_endpoints(self, arc: usize) -> (u64, u64) {
        debug_assert!(arc < self.num_arcs());
        let mask = (1u64 << self.levels) - 1;
        let up = self.num_up_arcs();
        if arc < up {
            let t = (arc >> 1) as u64;
            let (word, level) = (t & mask, (t >> self.levels) as usize);
            let head = word ^ (((arc & 1) as u64) << level);
            (
                self.encode_node(word, level),
                self.encode_node(head, level + 1),
            )
        } else {
            let t = ((arc - up) >> 1) as u64;
            let (word, level) = (t & mask, (t >> self.levels) as usize + 1);
            let bit = (arc & 1) as u64;
            let head = (word & !(1u64 << (level - 1))) | (bit << (level - 1));
            (
                self.encode_node(word, level),
                self.encode_node(head, level - 1),
            )
        }
    }

    /// Greedy (shortest-path) hops from `node` to leaf `dest_leaf`:
    /// `level` once the destination is in the subtree, else climb to the
    /// least-common-ancestor level `h + 1` (with `h` the highest
    /// differing bit at or above `level`) and descend it.
    pub fn distance(self, node: u64, dest_leaf: u64) -> usize {
        debug_assert!(dest_leaf < (1u64 << self.levels));
        let (word, level) = self.decode_node(node);
        let diff = (word ^ dest_leaf) >> level;
        if diff == 0 {
            level
        } else {
            let h = level + (63 - diff.leading_zeros() as usize);
            (h + 1 - level) + (h + 1)
        }
    }

    /// The greedy arc out of `node` toward leaf `dest_leaf`, or `None`
    /// once `node` *is* that leaf: descend forcing bit `level - 1` to the
    /// destination's when the subtree contains it, ascend straight
    /// otherwise.
    pub fn greedy_arc(self, node: u64, dest_leaf: u64) -> Option<usize> {
        debug_assert!(dest_leaf < (1u64 << self.levels));
        let (word, level) = self.decode_node(node);
        if self.subtree_contains(word, level, dest_leaf) {
            if level == 0 {
                return None;
            }
            Some(self.down_arc_index(word, level, (dest_leaf >> (level - 1)) & 1))
        } else {
            Some(self.up_arc_index(word, level, false))
        }
    }

    /// Expected greedy leaf-to-leaf path length under uniform
    /// destinations (including the origin): the highest differing bit is
    /// `h` with probability `2^h / 2^L`, costing `2(h+1)` hops.
    pub fn mean_path_length(self) -> f64 {
        let total: f64 = (0..self.levels)
            .map(|h| ((1u64 << h) as f64) * 2.0 * (h + 1) as f64)
            .sum();
        total / (1u64 << self.levels) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_counts() {
        let f = FatTree::new(3);
        assert_eq!(f.num_leaves(), 8);
        assert_eq!(f.num_nodes(), 32);
        assert_eq!(f.num_up_arcs(), 48);
        assert_eq!(f.num_arcs(), 96);
        assert_eq!(FatTree::new(1).num_arcs(), 8);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_levels_rejected() {
        FatTree::new(0);
    }

    #[test]
    fn node_encoding_round_trips() {
        let f = FatTree::new(3);
        for level in 0..=3usize {
            for word in 0..8u64 {
                assert_eq!(f.decode_node(f.encode_node(word, level)), (word, level));
            }
        }
        // Leaves are the id prefix.
        assert_eq!(f.encode_node(5, 0), 5);
    }

    #[test]
    fn arc_indices_are_dense_and_round_trip() {
        let f = FatTree::new(3);
        let mut seen = vec![false; f.num_arcs()];
        for word in 0..8u64 {
            for level in 0..3usize {
                for flip in [false, true] {
                    let idx = f.up_arc_index(word, level, flip);
                    assert!(!seen[idx], "collision at {idx}");
                    seen[idx] = true;
                    let (tail, head) = f.arc_endpoints(idx);
                    assert_eq!(tail, f.encode_node(word, level));
                    let expect = word ^ ((flip as u64) << level);
                    assert_eq!(head, f.encode_node(expect, level + 1));
                }
            }
            for level in 1..=3usize {
                for bit in 0..2u64 {
                    let idx = f.down_arc_index(word, level, bit);
                    assert!(!seen[idx], "collision at {idx}");
                    seen[idx] = true;
                    let (tail, head) = f.arc_endpoints(idx);
                    assert_eq!(tail, f.encode_node(word, level));
                    let expect = (word & !(1u64 << (level - 1))) | (bit << (level - 1));
                    assert_eq!(head, f.encode_node(expect, level - 1));
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn distance_is_up_over_and_down() {
        let f = FatTree::new(4);
        // Same leaf: 0 hops; adjacent subtrees: up 1, down 1.
        assert_eq!(f.distance(0, 0), 0);
        assert_eq!(f.distance(0, 1), 2);
        // Highest differing bit 3: climb to level 4 and descend.
        assert_eq!(f.distance(0b0000, 0b1000), 8);
        assert_eq!(f.distance(0b0101, 0b1101), 8);
        // From an interior node with the destination in its subtree.
        let n = f.encode_node(0b0100, 2);
        assert_eq!(f.distance(n, 0b0111), 2);
        // From an interior node whose subtree misses the destination.
        assert_eq!(f.distance(n, 0b1111), (4 - 2) + 4);
    }

    #[test]
    fn greedy_walk_reaches_every_leaf_in_distance_hops() {
        let f = FatTree::new(4);
        for src in 0..16u64 {
            for dst in 0..16u64 {
                let mut at = src;
                let mut hops = 0;
                while let Some(arc) = f.greedy_arc(at, dst) {
                    let (tail, head) = f.arc_endpoints(arc);
                    assert_eq!(tail, at);
                    assert_eq!(f.distance(head, dst), f.distance(at, dst) - 1);
                    at = head;
                    hops += 1;
                }
                assert_eq!(at, dst);
                assert_eq!(hops, f.distance(src, dst), "{src}→{dst}");
            }
        }
    }

    #[test]
    fn both_up_arcs_progress_when_subtree_misses() {
        let f = FatTree::new(4);
        for word in 0..16u64 {
            for level in 0..4usize {
                for dst in 0..16u64 {
                    if f.subtree_contains(word, level, dst) {
                        continue;
                    }
                    let node = f.encode_node(word, level);
                    for flip in [false, true] {
                        let (_, head) = f.arc_endpoints(f.up_arc_index(word, level, flip));
                        assert_eq!(
                            f.distance(head, dst),
                            f.distance(node, dst) - 1,
                            "up arc flip={flip} from ({word}; {level}) toward {dst}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mean_path_length_matches_enumeration() {
        for levels in 1..=6usize {
            let f = FatTree::new(levels);
            let n = f.num_leaves() as u64;
            let mean: f64 = (0..n)
                .flat_map(|s| (0..n).map(move |d| (s, d)))
                .map(|(s, d)| f.distance(s, d) as f64)
                .sum::<f64>()
                / (n * n) as f64;
            assert!(
                (f.mean_path_length() - mean).abs() < 1e-12,
                "L={levels}: {} vs {mean}",
                f.mean_path_length()
            );
        }
    }
}
