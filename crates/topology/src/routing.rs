//! The topology-generic greedy-routing abstraction.
//!
//! [`RoutingTopology`] is what a network must provide for the generic
//! simulation core (`hyperroute-core::engine`) to route packets over it:
//! a dense arc space and a deterministic greedy next-arc function. Two
//! families implement it — the **dense** closed-form topologies in this
//! crate and the **sparse** generated graphs in `hyperroute-sparse` —
//! and the trait contract is written for both:
//!
//! 1. **Dense arcs.** Arc indices cover `0..num_arcs()` without gaps;
//!    [`RoutingTopology::arc_tail`] / [`RoutingTopology::arc_head`] invert
//!    the indexing.
//! 2. **Greedy descent.** For `node != dest`,
//!    [`RoutingTopology::next_arc`] returns an arc whose tail is `node`
//!    and whose head is **strictly closer** to `dest` under
//!    [`RoutingTopology::distance`] — so greedy routes never cycle.
//! 3. **Termination.** `next_arc(node, node)` is `None`. Away from the
//!    destination, `None` means greedy is **stuck**: a *local minimum*
//!    (neighbours exist, none strictly closer) or a *dead end* (no
//!    out-arcs). The engine classifies those route outcomes and can
//!    recover with the escape fallback.
//!
//! # Dense vs sparse
//!
//! The dense family (hypercube, butterfly, ring, torus, de Bruijn, fat
//! tree) is *enumerated*: a closed-form arc indexing, a `next_arc` that
//! is a bit trick, and a `distance` that counts exact greedy hops —
//! greedy on these never returns `None` short of a reachable
//! destination, so their routes take exactly `distance(node, dest)`
//! hops. The sparse family (`hyperroute-sparse`: Kleinberg small-world,
//! hyperbolic disk, configuration-model scale-free/expander) is
//! *generated*: a seeded builder streams a random graph into a CSR, and
//! `next_arc` scans the CSR row for the neighbour closest to `dest`
//! under an embedding metric. There `distance` is the **quantised
//! metric** — it orders nodes for strict-progress checks but is not a
//! hop count — and `next_arc` exercises the relaxed termination arm of
//! the contract. The property tests in `tests/proptest_routing.rs`
//! (dense) and `crates/sparse/tests/` (sparse) pin each family to its
//! half of the contract.
//!
//! On top of the greedy contract sits the **multipath contract**:
//! [`RoutingTopology::alternate_arcs`] enumerates the ranked second-choice
//! arcs out of a node — the arcs a fault-survivability fallback consults
//! when the greedy arc is dead. Alternates need not make strict progress
//! (the de Bruijn sibling arc and the butterfly's extra-pass wrap regress
//! by a bounded stretch), so the callers budget non-progress hops; the
//! enumeration itself must be deterministic and finite. The default is an
//! empty enumeration (single-path topology: a dead greedy arc is fatal).
//!
//! [`RoutingTopology::num_sources`] names the prefix of node ids that
//! inject packets (all nodes by default; the butterfly's level-0 rows and
//! the fat tree's leaves override it).
//!
//! The packet-level engines keep their packed per-arc fast paths (bit
//! tricks over XOR masks for the hypercube, level words for the
//! butterfly), but those fast paths must agree with the trait — the
//! property tests pin them together. "Add a topology" means implementing
//! this trait and nothing else: the blanket `GraphSpec<T>` in
//! `hyperroute-core::graph_sim` runs any impl on the generic engine (the
//! torus and de Bruijn graphs are the worked examples). "Add a sparse
//! *generator*" is even less: write a seeded `params → SparseTopology`
//! function (draw structure with a `SimRng`, stream arcs into the CSR,
//! pick an embedding) and the trait impl comes for free — the
//! ~100-line walkthrough lives in the `hyperroute-sparse` crate docs.
//!
//! Node encodings are plain `u64`s, chosen per topology:
//!
//! * [`Hypercube`]: the node id `0..2^d`.
//! * [`Butterfly`]: `level · 2^d + row` (level-major); routing
//!   destinations are level-`d` nodes.
//! * [`Ring`]: the node id `0..n`.
//! * [`Torus`]: the node id `0..k^d` (base-`k` digit vector).
//! * [`DeBruijn`]: the `n`-bit shift-register word `0..2^n`.
//! * [`FatTree`]: `level · 2^L + word` (level-major, like the butterfly);
//!   routing destinations are the level-0 leaves `0..2^L`.

use crate::arcs::{ArcKind, ButterflyArc, HypercubeArc};
use crate::butterfly::Butterfly;
use crate::debruijn::DeBruijn;
use crate::fattree::FatTree;
use crate::hypercube::Hypercube;
use crate::node::NodeId;
use crate::ring::{Ring, RingDirection};
use crate::torus::{Torus, TorusDirection};

/// A network with dense arc indexing and deterministic greedy routing.
///
/// See the [module docs](self) for the full contract.
pub trait RoutingTopology {
    /// Number of nodes (the size of the node-id space actually used).
    fn num_nodes(&self) -> usize;

    /// Number of directed arcs; indices are dense in `0..num_arcs()`.
    fn num_arcs(&self) -> usize;

    /// Dense index of the greedy arc out of `node` toward `dest`.
    /// `None` when `node == dest` (delivered) — or, on sparse metric
    /// topologies, when greedy is stuck at a local minimum or dead end
    /// (see the [module docs](self)); dense closed-form topologies never
    /// stall short of a reachable destination.
    fn next_arc(&self, node: u64, dest: u64) -> Option<usize>;

    /// Tail node of arc `arc`.
    fn arc_tail(&self, arc: usize) -> u64;

    /// Head node of arc `arc`.
    fn arc_head(&self, arc: usize) -> u64;

    /// The measure greedy descends: on dense topologies the exact hop
    /// count of the greedy route from `node` to `dest`; on sparse metric
    /// topologies the quantised embedding distance (an ordering for
    /// strict-progress checks, **not** a hop count).
    fn distance(&self, node: u64, dest: u64) -> usize;

    /// Append the **ranked alternate arcs** out of `node` toward
    /// `dest != node` to `out` — the arcs a fault fallback consults, best
    /// first, when the greedy arc is dead. Strict-progress alternates
    /// (hypercube/torus dimension-order siblings, the fat tree's flipped
    /// up-arc) come before regressing ones (the de Bruijn binary sibling,
    /// the butterfly's extra-pass wrap, the ring's long way around); the
    /// greedy arc itself is never listed. The enumeration is deterministic
    /// and must not contain duplicates. Default: no alternates (a dead
    /// greedy arc on a single-path topology is fatal).
    fn alternate_arcs(&self, node: u64, dest: u64, out: &mut Vec<usize>) {
        let _ = (node, dest, out);
    }

    /// Number of packet-injecting sources: the engine drives sources
    /// `0..num_sources()` and uses the source index as the injection node
    /// id. Defaults to every node; topologies whose packets enter at a
    /// distinguished level (butterfly level-0 rows, fat-tree leaves)
    /// override it — their encodings put the injection nodes at ids
    /// `0..num_sources()` exactly.
    fn num_sources(&self) -> usize {
        self.num_nodes()
    }

    /// Dense arc range out of `node`, when arc indices are **grouped by
    /// tail** (CSR layout): arcs `out_arc_range(v)` all have tail `v`,
    /// and the ranges tile `0..num_arcs()`. The engine's fault fallbacks
    /// use it to scan a node's out-arcs directly instead of building
    /// their own counting-sort index. All-or-nothing contract: an
    /// implementation returns `Some` for every node or for none.
    /// Default: `None` (dense closed-form topologies interleave arc
    /// kinds, so their indices are not tail-grouped).
    fn out_arc_range(&self, node: u64) -> Option<std::ops::Range<usize>> {
        let _ = node;
        None
    }

    /// Expected greedy path length under uniform destinations — a
    /// **sizing hint** (the simulators use it to pick scheduler bucket
    /// counts; correctness never depends on it). The default samples
    /// distances out of node 0, which is exact for vertex-transitive
    /// topologies; implementations with closed forms override it.
    fn mean_distance_hint(&self) -> f64 {
        let n = self.num_nodes();
        let stride = n.div_ceil(4096).max(1);
        let mut total = 0usize;
        let mut count = 0usize;
        let mut dest = 0usize;
        while dest < n {
            total += self.distance(0, dest as u64);
            count += 1;
            dest += stride;
        }
        total as f64 / count as f64
    }
}

/// Forward every trait method (including defaulted ones, so overrides like
/// the butterfly's `num_sources` or a CSR graph's `out_arc_range` survive
/// the indirection).
macro_rules! forward_routing_topology {
    () => {
        fn num_nodes(&self) -> usize {
            (**self).num_nodes()
        }
        fn num_arcs(&self) -> usize {
            (**self).num_arcs()
        }
        fn next_arc(&self, node: u64, dest: u64) -> Option<usize> {
            (**self).next_arc(node, dest)
        }
        fn arc_tail(&self, arc: usize) -> u64 {
            (**self).arc_tail(arc)
        }
        fn arc_head(&self, arc: usize) -> u64 {
            (**self).arc_head(arc)
        }
        fn distance(&self, node: u64, dest: u64) -> usize {
            (**self).distance(node, dest)
        }
        fn alternate_arcs(&self, node: u64, dest: u64, out: &mut Vec<usize>) {
            (**self).alternate_arcs(node, dest, out)
        }
        fn num_sources(&self) -> usize {
            (**self).num_sources()
        }
        fn out_arc_range(&self, node: u64) -> Option<std::ops::Range<usize>> {
            (**self).out_arc_range(node)
        }
        fn mean_distance_hint(&self) -> f64 {
            (**self).mean_distance_hint()
        }
    };
}

impl<T: RoutingTopology + ?Sized> RoutingTopology for &T {
    forward_routing_topology!();
}

impl<T: RoutingTopology + ?Sized> RoutingTopology for std::sync::Arc<T> {
    forward_routing_topology!();
}

impl RoutingTopology for Hypercube {
    fn num_nodes(&self) -> usize {
        Hypercube::num_nodes(*self)
    }

    fn num_arcs(&self) -> usize {
        Hypercube::num_arcs(*self)
    }

    /// Canonical greedy order (paper §1.1): cross the lowest differing
    /// dimension first.
    fn next_arc(&self, node: u64, dest: u64) -> Option<usize> {
        let diff = node ^ dest;
        if diff == 0 {
            return None;
        }
        let dim = diff.trailing_zeros() as usize;
        Some(
            HypercubeArc {
                from: NodeId(node),
                dim,
            }
            .index(self.dim()),
        )
    }

    fn arc_tail(&self, arc: usize) -> u64 {
        HypercubeArc::from_index(arc, self.dim()).from.0
    }

    fn arc_head(&self, arc: usize) -> u64 {
        HypercubeArc::from_index(arc, self.dim()).to().0
    }

    fn distance(&self, node: u64, dest: u64) -> usize {
        NodeId(node).hamming(NodeId(dest)) as usize
    }

    /// The other differing dimensions in increasing index order — every
    /// alternate still makes strict shortest-path progress (any differing
    /// dimension may be crossed first).
    fn alternate_arcs(&self, node: u64, dest: u64, out: &mut Vec<usize>) {
        let diff = node ^ dest;
        debug_assert_ne!(diff, 0);
        let greedy = diff.trailing_zeros() as usize;
        for dim in (greedy + 1)..self.dim() {
            if (diff >> dim) & 1 == 1 {
                out.push(
                    HypercubeArc {
                        from: NodeId(node),
                        dim,
                    }
                    .index(self.dim()),
                );
            }
        }
    }

    /// Uniform destinations flip each bit with probability 1/2: `d/2`.
    fn mean_distance_hint(&self) -> f64 {
        self.dim() as f64 / 2.0
    }
}

impl Butterfly {
    /// Flat node encoding for [`RoutingTopology`]: `level · 2^d + row`.
    #[inline]
    pub fn encode_node(self, row: u64, level: usize) -> u64 {
        debug_assert!(row < (1u64 << self.dim()) && level <= self.dim());
        ((level as u64) << self.dim()) | row
    }

    /// Inverse of [`Butterfly::encode_node`]: `(row, level)`.
    #[inline]
    pub fn decode_node(self, node: u64) -> (u64, usize) {
        let rows = 1u64 << self.dim();
        (node & (rows - 1), (node >> self.dim()) as usize)
    }
}

impl RoutingTopology for Butterfly {
    fn num_nodes(&self) -> usize {
        Butterfly::num_nodes(*self)
    }

    fn num_arcs(&self) -> usize {
        Butterfly::num_arcs(*self)
    }

    /// On the canonical path (no bit below `level` misrouted) this is the
    /// unique greedy arc: straight when bit `level` of the row already
    /// matches the destination row, vertical otherwise. A **misrouted**
    /// packet — one a fault fallback deflected, so some bit below `level`
    /// is wrong — finishes its pass and then takes the extra-pass **wrap**:
    /// at level `d` with the wrong row, the greedy arc is the first arc of
    /// a fresh pass out of `[row; 0]` (its tail is the packet's row
    /// re-entering level 0, not the level-`d` node — back-routing through
    /// the spare stage permutation, exactly how a repeated-stage butterfly
    /// retries a blocked setting). Fault-free runs never leave the
    /// canonical path, so they never see a wrap. `dest` must be a
    /// level-`d` node.
    fn next_arc(&self, node: u64, dest: u64) -> Option<usize> {
        let (row, level) = self.decode_node(node);
        let (dest_row, dest_level) = self.decode_node(dest);
        debug_assert_eq!(dest_level, self.dim(), "butterfly dests sit at level d");
        if node == dest {
            return None;
        }
        let pass_level = if level == self.dim() { 0 } else { level };
        let kind = if (row >> pass_level) & 1 == (dest_row >> pass_level) & 1 {
            ArcKind::Straight
        } else {
            ArcKind::Vertical
        };
        Some(
            ButterflyArc {
                row: NodeId(row),
                level: pass_level,
                kind,
            }
            .index(self.dim()),
        )
    }

    fn arc_tail(&self, arc: usize) -> u64 {
        let a = ButterflyArc::from_index(arc, self.dim());
        self.encode_node(a.row.0, a.level)
    }

    fn arc_head(&self, arc: usize) -> u64 {
        let a = ButterflyArc::from_index(arc, self.dim());
        self.encode_node(a.to_row().0, a.level + 1)
    }

    /// Levels remaining, plus a full extra pass (`d` more hops) when the
    /// packet was misrouted: bit `j < level` of the row can only be fixed
    /// by wrapping back to level 0 and crossing level `j` again. On the
    /// canonical path (no wrong bit below `level`) this is the paper's
    /// `d - j` (§4.1); greedy progress stays strictly `-1` per hop either
    /// way, so deflected routes still terminate.
    fn distance(&self, node: u64, dest: u64) -> usize {
        let (row, level) = self.decode_node(node);
        let (dest_row, dest_level) = self.decode_node(dest);
        debug_assert_eq!(dest_level, self.dim(), "butterfly dests sit at level d");
        let fixed = (1u64 << level) - 1;
        let extra_pass = if (row ^ dest_row) & fixed != 0 {
            self.dim()
        } else {
            0
        };
        (dest_level - level) + extra_pass
    }

    /// The sibling arc of the same pass step: the packet crosses the
    /// current level with the *wrong* bit (stretch: one extra pass). At
    /// level `d` the greedy arc is already the wrap out of `[row; 0]`, so
    /// the alternate is the wrap's sibling.
    fn alternate_arcs(&self, node: u64, dest: u64, out: &mut Vec<usize>) {
        let (row, level) = self.decode_node(node);
        let (dest_row, _) = self.decode_node(dest);
        let pass_level = if level == self.dim() { 0 } else { level };
        let kind = if (row >> pass_level) & 1 == (dest_row >> pass_level) & 1 {
            ArcKind::Vertical
        } else {
            ArcKind::Straight
        };
        out.push(
            ButterflyArc {
                row: NodeId(row),
                level: pass_level,
                kind,
            }
            .index(self.dim()),
        );
    }

    /// Packets inject at the level-0 rows, which the level-major encoding
    /// places at node ids `0..2^d` exactly.
    fn num_sources(&self) -> usize {
        self.num_rows()
    }

    /// Every fault-free route is exactly `d` hops (the default sampler
    /// would average over invalid below-level-`d` destinations).
    fn mean_distance_hint(&self) -> f64 {
        self.dim() as f64
    }
}

impl RoutingTopology for Ring {
    fn num_nodes(&self) -> usize {
        Ring::num_nodes(*self)
    }

    fn num_arcs(&self) -> usize {
        Ring::num_arcs(*self)
    }

    /// Shorter way around (ties clockwise); always clockwise on
    /// unidirectional rings.
    fn next_arc(&self, node: u64, dest: u64) -> Option<usize> {
        if node == dest {
            return None;
        }
        Some(self.arc_index(node, self.greedy_direction(node, dest)))
    }

    fn arc_tail(&self, arc: usize) -> u64 {
        self.arc_from_index(arc).0
    }

    fn arc_head(&self, arc: usize) -> u64 {
        let (node, dir) = self.arc_from_index(arc);
        self.step(node, dir)
    }

    fn distance(&self, node: u64, dest: u64) -> usize {
        Ring::distance(*self, node, dest)
    }

    /// Bidirectional rings can go the long way around (regressing, but it
    /// reaches every destination); unidirectional rings have no alternate.
    fn alternate_arcs(&self, node: u64, dest: u64, out: &mut Vec<usize>) {
        if !self.bidirectional() {
            return;
        }
        let other = match self.greedy_direction(node, dest) {
            RingDirection::Clockwise => RingDirection::CounterClockwise,
            RingDirection::CounterClockwise => RingDirection::Clockwise,
        };
        out.push(self.arc_index(node, other));
    }

    /// Closed form: `(n-1)/2` clockwise-only, `⌊n²/4⌋/n` bidirectional.
    fn mean_distance_hint(&self) -> f64 {
        self.mean_path_length()
    }
}

impl RoutingTopology for Torus {
    fn num_nodes(&self) -> usize {
        Torus::num_nodes(*self)
    }

    fn num_arcs(&self) -> usize {
        Torus::num_arcs(*self)
    }

    /// Lowest differing dimension first (the hypercube's canonical
    /// order), walked the shorter way around that digit's ring (ties
    /// toward `+1`).
    fn next_arc(&self, node: u64, dest: u64) -> Option<usize> {
        if node == dest {
            return None;
        }
        let (dim, dir) = self.greedy_step(node, dest);
        Some(self.arc_index(node, dim, dir))
    }

    fn arc_tail(&self, arc: usize) -> u64 {
        self.arc_from_index(arc).0
    }

    fn arc_head(&self, arc: usize) -> u64 {
        let (node, dim, dir) = self.arc_from_index(arc);
        self.step(node, dim, dir)
    }

    fn distance(&self, node: u64, dest: u64) -> usize {
        Torus::distance(*self, node, dest)
    }

    /// The other differing dimensions in increasing index order, each
    /// walked its digit ring's shorter way (ties toward `+1`, like the
    /// greedy step) — all strict-progress alternates.
    fn alternate_arcs(&self, node: u64, dest: u64, out: &mut Vec<usize>) {
        debug_assert_ne!(node, dest);
        let k = self.radix() as u64;
        let (greedy_dim, _) = self.greedy_step(node, dest);
        let (mut s, mut t) = (node, dest);
        for i in 0..self.dim() {
            let (sd, td) = (s % k, t % k);
            if sd != td && i != greedy_dim {
                let cw = (td + k - sd) % k;
                let dir = if 2 * cw > k {
                    TorusDirection::Down
                } else {
                    TorusDirection::Up
                };
                out.push(self.arc_index(node, i, dir));
            }
            s /= k;
            t /= k;
        }
    }

    /// Closed form: `d·⌊k²/4⌋/k` (independent uniform ring offsets).
    fn mean_distance_hint(&self) -> f64 {
        self.mean_path_length()
    }
}

impl RoutingTopology for DeBruijn {
    fn num_nodes(&self) -> usize {
        DeBruijn::num_nodes(*self)
    }

    fn num_arcs(&self) -> usize {
        DeBruijn::num_arcs(*self)
    }

    /// Shift in the destination's highest unmatched bit (the unique
    /// shortest-path step; never a self-loop).
    fn next_arc(&self, node: u64, dest: u64) -> Option<usize> {
        if node == dest {
            return None;
        }
        Some(self.arc_index(node, self.greedy_bit(node, dest)))
    }

    fn arc_tail(&self, arc: usize) -> u64 {
        self.arc_from_index(arc).0
    }

    fn arc_head(&self, arc: usize) -> u64 {
        let (node, bit) = self.arc_from_index(arc);
        self.shift(node, bit)
    }

    fn distance(&self, node: u64, dest: u64) -> usize {
        DeBruijn::distance(*self, node, dest)
    }

    /// The **binary sibling arc**: shift in the complement of the greedy
    /// bit. The wrong bit can destroy the whole suffix overlap with
    /// `dest`, so the stretch is bounded by one full re-route (at most
    /// `n` extra hops — the diameter), never a cycle. Skipped at the two
    /// self-loop corners (node 0 shifting 0, all-ones shifting 1) where
    /// the sibling arc does not exist.
    fn alternate_arcs(&self, node: u64, dest: u64, out: &mut Vec<usize>) {
        debug_assert_ne!(node, dest);
        let other = 1 - self.greedy_bit(node, dest);
        if self.shift(node, other) != node {
            out.push(self.arc_index(node, other));
        }
    }

    /// Closed form for the node-0 row: `n - 1 + 2^-n` (see
    /// [`DeBruijn::mean_path_length_hint`]).
    fn mean_distance_hint(&self) -> f64 {
        self.mean_path_length_hint()
    }
}

impl RoutingTopology for FatTree {
    fn num_nodes(&self) -> usize {
        FatTree::num_nodes(*self)
    }

    fn num_arcs(&self) -> usize {
        FatTree::num_arcs(*self)
    }

    /// Descend forcing one destination bit per hop once the subtree
    /// contains the destination leaf; climb straight otherwise. `dest`
    /// must be a leaf (`< 2^L`).
    fn next_arc(&self, node: u64, dest: u64) -> Option<usize> {
        self.greedy_arc(node, dest)
    }

    fn arc_tail(&self, arc: usize) -> u64 {
        self.arc_endpoints(arc).0
    }

    fn arc_head(&self, arc: usize) -> u64 {
        self.arc_endpoints(arc).1
    }

    fn distance(&self, node: u64, dest: u64) -> usize {
        FatTree::distance(*self, node, dest)
    }

    /// Climbing: the flipped up arc — **also strict progress** (flipping
    /// bit `ℓ` never matters above level `ℓ`), the fat tree's signature
    /// two-way ascent diversity. Descending: the wrong-subtree down arc
    /// (stretch 2), then the two up arcs (stretch 2) where a level above
    /// exists.
    fn alternate_arcs(&self, node: u64, dest: u64, out: &mut Vec<usize>) {
        let (word, level) = self.decode_node(node);
        if !self.subtree_contains(word, level, dest) {
            out.push(self.up_arc_index(word, level, true));
        } else if level > 0 {
            let bit = (dest >> (level - 1)) & 1;
            out.push(self.down_arc_index(word, level, 1 - bit));
            if level < self.levels() {
                out.push(self.up_arc_index(word, level, false));
                out.push(self.up_arc_index(word, level, true));
            }
        }
    }

    /// Packets inject at the leaves, node ids `0..2^L` exactly.
    fn num_sources(&self) -> usize {
        self.num_leaves()
    }

    /// Closed form over uniform leaf destinations (see
    /// [`FatTree::mean_path_length`]).
    fn mean_distance_hint(&self) -> f64 {
        self.mean_path_length()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walk the greedy route and check termination + strict progress.
    fn assert_greedy_route<T: RoutingTopology>(t: &T, src: u64, dest: u64) {
        let mut at = src;
        let mut hops = 0;
        while let Some(arc) = t.next_arc(at, dest) {
            assert!(arc < t.num_arcs());
            assert_eq!(t.arc_tail(arc), at);
            let next = t.arc_head(arc);
            assert_eq!(
                t.distance(next, dest),
                t.distance(at, dest) - 1,
                "hop {at}→{next} toward {dest} is not strict progress"
            );
            at = next;
            hops += 1;
            assert!(hops <= t.num_nodes(), "greedy route cycles");
        }
        assert_eq!(at, dest);
        assert_eq!(hops, t.distance(src, dest));
    }

    #[test]
    fn hypercube_greedy_routes() {
        let c = Hypercube::new(5);
        for src in [0u64, 7, 19, 31] {
            for dest in [0u64, 1, 21, 30] {
                assert_greedy_route(&c, src, dest);
            }
        }
        assert_eq!(RoutingTopology::num_arcs(&c), 160);
    }

    #[test]
    fn hypercube_greedy_matches_canonical_path() {
        let c = Hypercube::new(6);
        let (src, dest) = (NodeId(0b100101), NodeId(0b011001));
        let canonical: Vec<usize> = c.canonical_path(src, dest).map(|a| a.index(6)).collect();
        let mut walked = Vec::new();
        let mut at = src.0;
        while let Some(arc) = c.next_arc(at, dest.0) {
            walked.push(arc);
            at = RoutingTopology::arc_head(&c, arc);
        }
        assert_eq!(walked, canonical);
    }

    #[test]
    fn butterfly_greedy_routes() {
        let b = Butterfly::new(4);
        for src_row in [0u64, 5, 12, 15] {
            for dest_row in [0u64, 3, 9, 15] {
                let src = b.encode_node(src_row, 0);
                let dest = b.encode_node(dest_row, 4);
                assert_eq!(b.distance(src, dest), 4);
                assert_greedy_route(&b, src, dest);
            }
        }
    }

    #[test]
    fn torus_greedy_routes() {
        let t = Torus::new(4, 2);
        for src in 0..16u64 {
            for dest in 0..16u64 {
                assert_greedy_route(&t, src, dest);
            }
        }
        assert_eq!(RoutingTopology::num_arcs(&t), 64);
        assert_eq!(t.mean_distance_hint(), t.mean_path_length());
    }

    #[test]
    fn debruijn_greedy_routes() {
        let g = DeBruijn::new(4);
        for src in 0..16u64 {
            for dest in 0..16u64 {
                assert_greedy_route(&g, src, dest);
            }
        }
        assert_eq!(RoutingTopology::num_arcs(&g), 30);
    }

    #[test]
    fn default_mean_distance_hint_samples_node_zero_row() {
        // The ring override (closed form) must agree with the default
        // sampling implementation on a vertex-transitive topology.
        struct Plain(Ring);
        impl RoutingTopology for Plain {
            fn num_nodes(&self) -> usize {
                RoutingTopology::num_nodes(&self.0)
            }
            fn num_arcs(&self) -> usize {
                RoutingTopology::num_arcs(&self.0)
            }
            fn next_arc(&self, node: u64, dest: u64) -> Option<usize> {
                self.0.next_arc(node, dest)
            }
            fn arc_tail(&self, arc: usize) -> u64 {
                RoutingTopology::arc_tail(&self.0, arc)
            }
            fn arc_head(&self, arc: usize) -> u64 {
                RoutingTopology::arc_head(&self.0, arc)
            }
            fn distance(&self, node: u64, dest: u64) -> usize {
                RoutingTopology::distance(&self.0, node, dest)
            }
        }
        for bidirectional in [false, true] {
            let ring = Ring::new(24, bidirectional);
            assert_eq!(Plain(ring).mean_distance_hint(), ring.mean_distance_hint());
        }
    }

    #[test]
    fn ring_greedy_routes_both_variants() {
        for bidirectional in [false, true] {
            let r = Ring::new(11, bidirectional);
            for src in 0..11u64 {
                for dest in 0..11u64 {
                    assert_greedy_route(&r, src, dest);
                }
            }
        }
    }

    #[test]
    fn node_encoding_round_trips() {
        let b = Butterfly::new(3);
        for level in 0..=3usize {
            for row in 0..8u64 {
                assert_eq!(b.decode_node(b.encode_node(row, level)), (row, level));
            }
        }
    }

    #[test]
    fn fattree_greedy_routes() {
        let f = FatTree::new(4);
        for src in 0..16u64 {
            for dest in 0..16u64 {
                assert_greedy_route(&f, src, dest);
            }
        }
        assert_eq!(RoutingTopology::num_arcs(&f), 256);
        assert_eq!(f.mean_distance_hint(), f.mean_path_length());
    }

    #[test]
    fn source_prefixes_are_the_injection_nodes() {
        // Default: every node injects.
        assert_eq!(Hypercube::new(4).num_sources(), 16);
        assert_eq!(Torus::new(4, 2).num_sources(), 16);
        // Levelled topologies inject at their distinguished level, which
        // the level-major encodings place at the node-id prefix.
        let b = Butterfly::new(3);
        assert_eq!(b.num_sources(), 8);
        for row in 0..8u64 {
            assert_eq!(b.encode_node(row, 0), row);
        }
        let f = FatTree::new(3);
        assert_eq!(f.num_sources(), 8);
        for word in 0..8u64 {
            assert_eq!(f.encode_node(word, 0), word);
        }
    }

    /// Deflecting onto any alternate still leaves a terminating greedy
    /// route — the contract Retry/Multipath fallbacks rely on: alternates
    /// are valid non-greedy arcs out of the node (the butterfly wrap's
    /// tail is the level-0 re-entry instead) and each deflection costs at
    /// most `max_extra` hops over the greedy route.
    fn assert_alternates_recoverable<T: RoutingTopology>(
        t: &T,
        src: u64,
        dest: u64,
        wrap: bool,
        max_extra: usize,
    ) {
        let mut alts = Vec::new();
        let mut at = src;
        while let Some(greedy) = t.next_arc(at, dest) {
            alts.clear();
            t.alternate_arcs(at, dest, &mut alts);
            let mut seen = alts.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), alts.len(), "duplicate alternates at {at}");
            for &alt in &alts {
                assert!(alt < t.num_arcs());
                assert_ne!(alt, greedy, "greedy arc listed as alternate at {at}");
                if !wrap {
                    assert_eq!(t.arc_tail(alt), at, "alternate not out of {at}");
                }
                // Bounded stretch: the deflected route still terminates,
                // within `max_extra` hops of the greedy one.
                let deflected = t.arc_head(alt);
                // (One hop onto the alternate + remaining distance, vs the
                // greedy distance plus the allowed stretch.)
                assert!(
                    t.distance(deflected, dest) < t.distance(at, dest) + max_extra,
                    "deflection at {at} toward {dest} stretches past {max_extra}"
                );
                let mut walk = deflected;
                let mut hops = 0;
                while let Some(arc) = t.next_arc(walk, dest) {
                    walk = t.arc_head(arc);
                    hops += 1;
                    assert!(hops <= 4 * t.num_nodes(), "deflected route cycles");
                }
                assert_eq!(walk, dest, "deflection at {at} strands the packet");
            }
            at = t.arc_head(greedy);
        }
    }

    #[test]
    fn alternates_recover_on_every_topology() {
        // Stretch budgets: strict progress (0 extra) on the hypercube and
        // torus, a wasted round trip (2) on the fat tree and ring, a full
        // re-route on the diameter-bounded shift/pass graphs.
        let c = Hypercube::new(4);
        let t = Torus::new(4, 2);
        let g = DeBruijn::new(4);
        let f = FatTree::new(4);
        let r = Ring::new(9, true);
        for src in 0..16u64 {
            for dest in [0u64, 5, 10, 15] {
                assert_alternates_recoverable(&c, src, dest, false, 0);
                assert_alternates_recoverable(&t, src, dest, false, 0);
                assert_alternates_recoverable(&g, src, dest, false, g.dim());
                assert_alternates_recoverable(&f, src, dest, false, 2);
            }
        }
        for src in 0..9u64 {
            assert_alternates_recoverable(&r, src, 4, false, 2);
        }
        let b = Butterfly::new(3);
        for src_row in 0..8u64 {
            for dest_row in 0..8u64 {
                assert_alternates_recoverable(
                    &b,
                    b.encode_node(src_row, 0),
                    b.encode_node(dest_row, 3),
                    true,
                    b.dim(),
                );
            }
        }
    }

    #[test]
    fn hypercube_and_torus_alternates_make_strict_progress() {
        let c = Hypercube::new(5);
        let t = Torus::new(5, 2);
        let mut alts = Vec::new();
        for src in 0..25u64 {
            for dest in 0..25u64 {
                for (topo, ok) in [
                    (&c as &dyn RoutingTopology, src < 32 && dest < 32),
                    (&t, true),
                ] {
                    if src == dest || !ok {
                        continue;
                    }
                    alts.clear();
                    topo.alternate_arcs(src, dest, &mut alts);
                    for &alt in &alts {
                        assert_eq!(
                            topo.distance(topo.arc_head(alt), dest),
                            topo.distance(src, dest) - 1,
                            "alternate {alt} out of {src} toward {dest} regresses"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn butterfly_wrap_restarts_the_pass_and_terminates() {
        // Misroute a packet on its first hop (take the sibling arc), then
        // follow greedy: it finishes the ruined pass, wraps at level d,
        // and delivers after exactly one extra pass — 2d hops total.
        let b = Butterfly::new(3);
        let d = 3;
        for src_row in 0..8u64 {
            for dest_row in 0..8u64 {
                let src = b.encode_node(src_row, 0);
                let dest = b.encode_node(dest_row, d);
                let mut alts = Vec::new();
                b.alternate_arcs(src, dest, &mut alts);
                assert_eq!(alts.len(), 1);
                let mut at = b.arc_head(alts[0]);
                // The sibling arc ruined bit 0 of the row.
                assert_eq!(b.distance(at, dest), 2 * d - 1);
                let mut hops = 1;
                while let Some(arc) = b.next_arc(at, dest) {
                    let next = b.arc_head(arc);
                    assert_eq!(b.distance(next, dest), b.distance(at, dest) - 1);
                    if b.decode_node(at).1 == d {
                        // The wrap: re-enter the pass at the packet's row.
                        assert_eq!(b.arc_tail(arc), b.encode_node(b.decode_node(at).0, 0));
                    } else {
                        assert_eq!(b.arc_tail(arc), at);
                    }
                    at = next;
                    hops += 1;
                }
                assert_eq!(at, dest);
                assert_eq!(hops, 2 * d, "{src_row}→{dest_row}");
            }
        }
    }
}
