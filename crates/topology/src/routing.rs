//! The topology-generic greedy-routing abstraction.
//!
//! [`RoutingTopology`] is what a network must provide for the generic
//! simulation core (`hyperroute-core::engine`) to route packets over it:
//! a dense arc space and a deterministic greedy next-arc function. The
//! contract — property-tested in `tests/proptest_routing.rs` over every
//! implementation — is:
//!
//! 1. **Dense arcs.** Arc indices cover `0..num_arcs()` without gaps;
//!    [`RoutingTopology::arc_tail`] / [`RoutingTopology::arc_head`] invert
//!    the indexing.
//! 2. **Greedy progress.** For `node != dest` (with `dest` reachable),
//!    [`RoutingTopology::next_arc`] returns an arc whose tail is `node`
//!    and whose head is **strictly closer** to `dest` — so every greedy
//!    route terminates in exactly `distance(node, dest)` hops and the
//!    per-hop simulators never cycle.
//! 3. **Delivery.** `next_arc(node, node)` is `None`.
//!
//! The packet-level engines keep their packed per-arc fast paths (bit
//! tricks over XOR masks for the hypercube, level words for the
//! butterfly), but those fast paths must agree with the trait — the
//! property tests pin them together. "Add a topology" means implementing
//! this trait and nothing else: the blanket `GraphSpec<T>` in
//! `hyperroute-core::graph_sim` runs any impl on the generic engine (the
//! torus and de Bruijn graphs are the worked examples).
//!
//! Node encodings are plain `u64`s, chosen per topology:
//!
//! * [`Hypercube`]: the node id `0..2^d`.
//! * [`Butterfly`]: `level · 2^d + row` (level-major); routing
//!   destinations are level-`d` nodes.
//! * [`Ring`]: the node id `0..n`.
//! * [`Torus`]: the node id `0..k^d` (base-`k` digit vector).
//! * [`DeBruijn`]: the `n`-bit shift-register word `0..2^n`.

use crate::arcs::{ArcKind, ButterflyArc, HypercubeArc};
use crate::butterfly::Butterfly;
use crate::debruijn::DeBruijn;
use crate::hypercube::Hypercube;
use crate::node::NodeId;
use crate::ring::Ring;
use crate::torus::Torus;

/// A network with dense arc indexing and deterministic greedy routing.
///
/// See the [module docs](self) for the full contract.
pub trait RoutingTopology {
    /// Number of nodes (the size of the node-id space actually used).
    fn num_nodes(&self) -> usize;

    /// Number of directed arcs; indices are dense in `0..num_arcs()`.
    fn num_arcs(&self) -> usize;

    /// Dense index of the greedy arc out of `node` toward `dest`, or
    /// `None` when `node == dest` (the packet is delivered).
    fn next_arc(&self, node: u64, dest: u64) -> Option<usize>;

    /// Tail node of arc `arc`.
    fn arc_tail(&self, arc: usize) -> u64;

    /// Head node of arc `arc`.
    fn arc_head(&self, arc: usize) -> u64;

    /// Hops a greedy route takes from `node` to `dest`.
    fn distance(&self, node: u64, dest: u64) -> usize;

    /// Expected greedy path length under uniform destinations — a
    /// **sizing hint** (the simulators use it to pick scheduler bucket
    /// counts; correctness never depends on it). The default samples
    /// distances out of node 0, which is exact for vertex-transitive
    /// topologies; implementations with closed forms override it.
    fn mean_distance_hint(&self) -> f64 {
        let n = self.num_nodes();
        let stride = n.div_ceil(4096).max(1);
        let mut total = 0usize;
        let mut count = 0usize;
        let mut dest = 0usize;
        while dest < n {
            total += self.distance(0, dest as u64);
            count += 1;
            dest += stride;
        }
        total as f64 / count as f64
    }
}

impl RoutingTopology for Hypercube {
    fn num_nodes(&self) -> usize {
        Hypercube::num_nodes(*self)
    }

    fn num_arcs(&self) -> usize {
        Hypercube::num_arcs(*self)
    }

    /// Canonical greedy order (paper §1.1): cross the lowest differing
    /// dimension first.
    fn next_arc(&self, node: u64, dest: u64) -> Option<usize> {
        let diff = node ^ dest;
        if diff == 0 {
            return None;
        }
        let dim = diff.trailing_zeros() as usize;
        Some(
            HypercubeArc {
                from: NodeId(node),
                dim,
            }
            .index(self.dim()),
        )
    }

    fn arc_tail(&self, arc: usize) -> u64 {
        HypercubeArc::from_index(arc, self.dim()).from.0
    }

    fn arc_head(&self, arc: usize) -> u64 {
        HypercubeArc::from_index(arc, self.dim()).to().0
    }

    fn distance(&self, node: u64, dest: u64) -> usize {
        NodeId(node).hamming(NodeId(dest)) as usize
    }

    /// Uniform destinations flip each bit with probability 1/2: `d/2`.
    fn mean_distance_hint(&self) -> f64 {
        self.dim() as f64 / 2.0
    }
}

impl Butterfly {
    /// Flat node encoding for [`RoutingTopology`]: `level · 2^d + row`.
    #[inline]
    pub fn encode_node(self, row: u64, level: usize) -> u64 {
        debug_assert!(row < (1u64 << self.dim()) && level <= self.dim());
        ((level as u64) << self.dim()) | row
    }

    /// Inverse of [`Butterfly::encode_node`]: `(row, level)`.
    #[inline]
    pub fn decode_node(self, node: u64) -> (u64, usize) {
        let rows = 1u64 << self.dim();
        (node & (rows - 1), (node >> self.dim()) as usize)
    }
}

impl RoutingTopology for Butterfly {
    fn num_nodes(&self) -> usize {
        Butterfly::num_nodes(*self)
    }

    fn num_arcs(&self) -> usize {
        Butterfly::num_arcs(*self)
    }

    /// The unique (hence greedy) next arc: straight when bit `level` of
    /// the row already matches the destination row, vertical otherwise.
    /// `dest` must be a level-`d` node.
    fn next_arc(&self, node: u64, dest: u64) -> Option<usize> {
        let (row, level) = self.decode_node(node);
        let (dest_row, dest_level) = self.decode_node(dest);
        debug_assert_eq!(dest_level, self.dim(), "butterfly dests sit at level d");
        if node == dest {
            return None;
        }
        let kind = if (row >> level) & 1 == (dest_row >> level) & 1 {
            ArcKind::Straight
        } else {
            ArcKind::Vertical
        };
        Some(
            ButterflyArc {
                row: NodeId(row),
                level,
                kind,
            }
            .index(self.dim()),
        )
    }

    fn arc_tail(&self, arc: usize) -> u64 {
        let a = ButterflyArc::from_index(arc, self.dim());
        self.encode_node(a.row.0, a.level)
    }

    fn arc_head(&self, arc: usize) -> u64 {
        let a = ButterflyArc::from_index(arc, self.dim());
        self.encode_node(a.to_row().0, a.level + 1)
    }

    /// Levels remaining: the unique path from `[row; j]` to `[z; d]`
    /// always has exactly `d - j` arcs (paper §4.1).
    fn distance(&self, node: u64, dest: u64) -> usize {
        let (_, level) = self.decode_node(node);
        let (_, dest_level) = self.decode_node(dest);
        debug_assert!(dest_level >= level);
        dest_level - level
    }
}

impl RoutingTopology for Ring {
    fn num_nodes(&self) -> usize {
        Ring::num_nodes(*self)
    }

    fn num_arcs(&self) -> usize {
        Ring::num_arcs(*self)
    }

    /// Shorter way around (ties clockwise); always clockwise on
    /// unidirectional rings.
    fn next_arc(&self, node: u64, dest: u64) -> Option<usize> {
        if node == dest {
            return None;
        }
        Some(self.arc_index(node, self.greedy_direction(node, dest)))
    }

    fn arc_tail(&self, arc: usize) -> u64 {
        self.arc_from_index(arc).0
    }

    fn arc_head(&self, arc: usize) -> u64 {
        let (node, dir) = self.arc_from_index(arc);
        self.step(node, dir)
    }

    fn distance(&self, node: u64, dest: u64) -> usize {
        Ring::distance(*self, node, dest)
    }

    /// Closed form: `(n-1)/2` clockwise-only, `⌊n²/4⌋/n` bidirectional.
    fn mean_distance_hint(&self) -> f64 {
        self.mean_path_length()
    }
}

impl RoutingTopology for Torus {
    fn num_nodes(&self) -> usize {
        Torus::num_nodes(*self)
    }

    fn num_arcs(&self) -> usize {
        Torus::num_arcs(*self)
    }

    /// Lowest differing dimension first (the hypercube's canonical
    /// order), walked the shorter way around that digit's ring (ties
    /// toward `+1`).
    fn next_arc(&self, node: u64, dest: u64) -> Option<usize> {
        if node == dest {
            return None;
        }
        let (dim, dir) = self.greedy_step(node, dest);
        Some(self.arc_index(node, dim, dir))
    }

    fn arc_tail(&self, arc: usize) -> u64 {
        self.arc_from_index(arc).0
    }

    fn arc_head(&self, arc: usize) -> u64 {
        let (node, dim, dir) = self.arc_from_index(arc);
        self.step(node, dim, dir)
    }

    fn distance(&self, node: u64, dest: u64) -> usize {
        Torus::distance(*self, node, dest)
    }

    /// Closed form: `d·⌊k²/4⌋/k` (independent uniform ring offsets).
    fn mean_distance_hint(&self) -> f64 {
        self.mean_path_length()
    }
}

impl RoutingTopology for DeBruijn {
    fn num_nodes(&self) -> usize {
        DeBruijn::num_nodes(*self)
    }

    fn num_arcs(&self) -> usize {
        DeBruijn::num_arcs(*self)
    }

    /// Shift in the destination's highest unmatched bit (the unique
    /// shortest-path step; never a self-loop).
    fn next_arc(&self, node: u64, dest: u64) -> Option<usize> {
        if node == dest {
            return None;
        }
        Some(self.arc_index(node, self.greedy_bit(node, dest)))
    }

    fn arc_tail(&self, arc: usize) -> u64 {
        self.arc_from_index(arc).0
    }

    fn arc_head(&self, arc: usize) -> u64 {
        let (node, bit) = self.arc_from_index(arc);
        self.shift(node, bit)
    }

    fn distance(&self, node: u64, dest: u64) -> usize {
        DeBruijn::distance(*self, node, dest)
    }

    /// Closed form for the node-0 row: `n - 1 + 2^-n` (see
    /// [`DeBruijn::mean_path_length_hint`]).
    fn mean_distance_hint(&self) -> f64 {
        self.mean_path_length_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walk the greedy route and check termination + strict progress.
    fn assert_greedy_route<T: RoutingTopology>(t: &T, src: u64, dest: u64) {
        let mut at = src;
        let mut hops = 0;
        while let Some(arc) = t.next_arc(at, dest) {
            assert!(arc < t.num_arcs());
            assert_eq!(t.arc_tail(arc), at);
            let next = t.arc_head(arc);
            assert_eq!(
                t.distance(next, dest),
                t.distance(at, dest) - 1,
                "hop {at}→{next} toward {dest} is not strict progress"
            );
            at = next;
            hops += 1;
            assert!(hops <= t.num_nodes(), "greedy route cycles");
        }
        assert_eq!(at, dest);
        assert_eq!(hops, t.distance(src, dest));
    }

    #[test]
    fn hypercube_greedy_routes() {
        let c = Hypercube::new(5);
        for src in [0u64, 7, 19, 31] {
            for dest in [0u64, 1, 21, 30] {
                assert_greedy_route(&c, src, dest);
            }
        }
        assert_eq!(RoutingTopology::num_arcs(&c), 160);
    }

    #[test]
    fn hypercube_greedy_matches_canonical_path() {
        let c = Hypercube::new(6);
        let (src, dest) = (NodeId(0b100101), NodeId(0b011001));
        let canonical: Vec<usize> = c.canonical_path(src, dest).map(|a| a.index(6)).collect();
        let mut walked = Vec::new();
        let mut at = src.0;
        while let Some(arc) = c.next_arc(at, dest.0) {
            walked.push(arc);
            at = RoutingTopology::arc_head(&c, arc);
        }
        assert_eq!(walked, canonical);
    }

    #[test]
    fn butterfly_greedy_routes() {
        let b = Butterfly::new(4);
        for src_row in [0u64, 5, 12, 15] {
            for dest_row in [0u64, 3, 9, 15] {
                let src = b.encode_node(src_row, 0);
                let dest = b.encode_node(dest_row, 4);
                assert_eq!(b.distance(src, dest), 4);
                assert_greedy_route(&b, src, dest);
            }
        }
    }

    #[test]
    fn torus_greedy_routes() {
        let t = Torus::new(4, 2);
        for src in 0..16u64 {
            for dest in 0..16u64 {
                assert_greedy_route(&t, src, dest);
            }
        }
        assert_eq!(RoutingTopology::num_arcs(&t), 64);
        assert_eq!(t.mean_distance_hint(), t.mean_path_length());
    }

    #[test]
    fn debruijn_greedy_routes() {
        let g = DeBruijn::new(4);
        for src in 0..16u64 {
            for dest in 0..16u64 {
                assert_greedy_route(&g, src, dest);
            }
        }
        assert_eq!(RoutingTopology::num_arcs(&g), 30);
    }

    #[test]
    fn default_mean_distance_hint_samples_node_zero_row() {
        // The ring override (closed form) must agree with the default
        // sampling implementation on a vertex-transitive topology.
        struct Plain(Ring);
        impl RoutingTopology for Plain {
            fn num_nodes(&self) -> usize {
                RoutingTopology::num_nodes(&self.0)
            }
            fn num_arcs(&self) -> usize {
                RoutingTopology::num_arcs(&self.0)
            }
            fn next_arc(&self, node: u64, dest: u64) -> Option<usize> {
                self.0.next_arc(node, dest)
            }
            fn arc_tail(&self, arc: usize) -> u64 {
                RoutingTopology::arc_tail(&self.0, arc)
            }
            fn arc_head(&self, arc: usize) -> u64 {
                RoutingTopology::arc_head(&self.0, arc)
            }
            fn distance(&self, node: u64, dest: u64) -> usize {
                RoutingTopology::distance(&self.0, node, dest)
            }
        }
        for bidirectional in [false, true] {
            let ring = Ring::new(24, bidirectional);
            assert_eq!(Plain(ring).mean_distance_hint(), ring.mean_distance_hint());
        }
    }

    #[test]
    fn ring_greedy_routes_both_variants() {
        for bidirectional in [false, true] {
            let r = Ring::new(11, bidirectional);
            for src in 0..11u64 {
                for dest in 0..11u64 {
                    assert_greedy_route(&r, src, dest);
                }
            }
        }
    }

    #[test]
    fn node_encoding_round_trips() {
        let b = Butterfly::new(3);
        for level in 0..=3usize {
            for row in 0..8u64 {
                assert_eq!(b.decode_node(b.encode_node(row, level)), (row, level));
            }
        }
    }
}
