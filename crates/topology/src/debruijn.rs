//! The binary de Bruijn graph `B(2, n)` under shift-register greedy
//! routing.
//!
//! Node `x` (an `n`-bit word) has arcs to `(2x + b) mod 2^n` for
//! `b ∈ {0, 1}` — shifting one bit in from the right. Routing from `x` to
//! `z` shifts in the bits of `z` from the most significant end of the
//! *unmatched* suffix: the shortest path has length
//! `min { k : high n-k bits of z = low n-k bits of x }`, and taking the
//! next bit of that overlap-maximising path shortens the distance by
//! exactly one per hop (one hop can never shorten it by more, so greedy
//! progress is strict). Diameter `n` with `log N` degree — the classic
//! constant-degree alternative to the hypercube's `log N` degree.
//!
//! Arc indexing is dense and **excludes the two self-loops** (`0 → 0` and
//! `2^n-1 → 2^n-1`), which no greedy route ever takes: the raw arc
//! `(x, b)` has raw index `2x + b`; the self-loops are raw `0` and
//! `2^(n+1)-1`, so dense index = raw - 1 over `0..2^(n+1)-2`.

use crate::node::NodeId;

/// Maximum supported shift-register width (nodes `2^26`, matching the
/// hypercube/ring/torus caps).
pub const MAX_DEBRUIJN_DIM: usize = 26;

/// The binary de Bruijn graph on `2^n` nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeBruijn {
    dim: usize,
}

impl DeBruijn {
    /// The de Bruijn graph `B(2, n)`. Panics unless `1 <= n <= 26`.
    pub fn new(dim: usize) -> DeBruijn {
        assert!(
            (1..=MAX_DEBRUIJN_DIM).contains(&dim),
            "de Bruijn width must be in 1..={MAX_DEBRUIJN_DIM}"
        );
        DeBruijn { dim }
    }

    /// Shift-register width `n`.
    #[inline]
    pub fn dim(self) -> usize {
        self.dim
    }

    /// Number of nodes `2^n`.
    #[inline]
    pub fn num_nodes(self) -> usize {
        1 << self.dim
    }

    /// Number of directed arcs `2^(n+1) - 2` (the two self-loops are
    /// excluded from the arc space).
    #[inline]
    pub fn num_arcs(self) -> usize {
        (1 << (self.dim + 1)) - 2
    }

    /// Network diameter `n`.
    #[inline]
    pub fn diameter(self) -> usize {
        self.dim
    }

    /// Iterator over all node identities `0..2^n`.
    pub fn nodes(self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.num_nodes()).map(|v| NodeId(v as u64))
    }

    /// Head of the arc shifting bit `b` into `x`: `(2x + b) mod 2^n`.
    #[inline]
    pub fn shift(self, node: u64, bit: u64) -> u64 {
        debug_assert!(bit <= 1);
        ((node << 1) | bit) & ((1u64 << self.dim) - 1)
    }

    /// Shortest-path distance: the smallest `k` such that the high
    /// `n - k` bits of `dst` equal the low `n - k` bits of `src` (the
    /// suffix of `src` already forms a prefix of `dst`).
    pub fn distance(self, src: u64, dst: u64) -> usize {
        let n = self.dim;
        for k in 0..n {
            if dst >> k == src & ((1u64 << (n - k)) - 1) {
                return k;
            }
        }
        n
    }

    /// The bit the greedy (shortest-path) route shifts in next:
    /// bit `distance - 1` of `dst`. Requires `src != dst`.
    #[inline]
    pub fn greedy_bit(self, src: u64, dst: u64) -> u64 {
        debug_assert!(src != dst);
        let d = self.distance(src, dst);
        (dst >> (d - 1)) & 1
    }

    /// Dense arc index of the arc shifting `bit` into `node` (raw index
    /// `2·node + bit`, minus one for the excluded `0 → 0` self-loop).
    /// Panics in debug builds on the two self-loop arcs.
    #[inline]
    pub fn arc_index(self, node: u64, bit: u64) -> usize {
        let raw = 2 * node as usize + bit as usize;
        debug_assert!(
            raw != 0 && raw != 2 * self.num_nodes() - 1,
            "self-loop arc has no index"
        );
        raw - 1
    }

    /// Tail node and shifted-in bit of the arc with dense index `idx`.
    #[inline]
    pub fn arc_from_index(self, idx: usize) -> (u64, u64) {
        debug_assert!(idx < self.num_arcs());
        let raw = idx + 1;
        ((raw >> 1) as u64, (raw & 1) as u64)
    }

    /// Mean greedy path length out of node 0 under uniform destinations —
    /// exactly `n - 1 + 2^-n` (from node 0, `distance(0, d)` is the bit
    /// length of `d`). The graph is not vertex-transitive, so this is a
    /// *hint* for the global mean (suffix overlaps only shave an `O(1)`
    /// constant off it); the simulators use it to size their schedulers,
    /// never for correctness.
    pub fn mean_path_length_hint(self) -> f64 {
        self.dim as f64 - 1.0 + (2.0f64).powi(-(self.dim as i32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_diameter() {
        let g = DeBruijn::new(4);
        assert_eq!(g.num_nodes(), 16);
        assert_eq!(g.num_arcs(), 30);
        assert_eq!(g.diameter(), 4);
    }

    #[test]
    fn shift_wraps_at_width() {
        let g = DeBruijn::new(3);
        assert_eq!(g.shift(0b110, 1), 0b101);
        assert_eq!(g.shift(0b011, 0), 0b110);
    }

    #[test]
    fn distance_is_overlap_complement() {
        let g = DeBruijn::new(3);
        assert_eq!(g.distance(0b101, 0b101), 0);
        // 101 → 011: suffix "01" of src is prefix "01" of dst → 1 hop.
        assert_eq!(g.distance(0b101, 0b011), 1);
        assert_eq!(g.distance(0b000, 0b111), 3);
        assert_eq!(g.distance(0b000, 0b100), 3);
        assert_eq!(g.distance(0b000, 0b001), 1);
    }

    #[test]
    fn greedy_walk_reaches_destination_in_distance_hops() {
        let g = DeBruijn::new(4);
        for src in 0..16u64 {
            for dst in 0..16u64 {
                let mut at = src;
                let mut hops = 0;
                while at != dst {
                    let before = g.distance(at, dst);
                    at = g.shift(at, g.greedy_bit(at, dst));
                    assert_eq!(g.distance(at, dst), before - 1, "{src}→{dst} via {at}");
                    hops += 1;
                }
                assert_eq!(hops, g.distance(src, dst), "{src}→{dst}");
            }
        }
    }

    #[test]
    fn greedy_never_takes_a_self_loop() {
        // The only self-loops are at 0 and all-ones; greedy shifts in the
        // destination's highest unmatched bit, which at node 0 is always 1
        // (else the distance were shorter) and at all-ones always 0.
        let g = DeBruijn::new(5);
        for dst in 1..32u64 {
            assert_eq!(g.greedy_bit(0, dst), 1, "dst {dst:b}");
            assert_eq!(g.greedy_bit(31, dst - 1), 0, "dst {:b}", dst - 1);
        }
    }

    #[test]
    fn arc_index_round_trips_densely_without_self_loops() {
        let g = DeBruijn::new(3);
        let mut seen = vec![false; g.num_arcs()];
        for node in 0..8u64 {
            for bit in 0..2u64 {
                if g.shift(node, bit) == node {
                    continue; // the two self-loops
                }
                let idx = g.arc_index(node, bit);
                assert!(!seen[idx], "collision at {idx}");
                seen[idx] = true;
                assert_eq!(g.arc_from_index(idx), (node, bit));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_path_hint_is_exact_from_origin_and_close_globally() {
        for n in 1..=8usize {
            let g = DeBruijn::new(n);
            let nodes = g.num_nodes() as u64;
            let from_zero: usize = (0..nodes).map(|d| g.distance(0, d)).sum();
            let mean_zero = from_zero as f64 / nodes as f64;
            assert!(
                (g.mean_path_length_hint() - mean_zero).abs() < 1e-12,
                "n={n}: hint {} vs node-0 mean {mean_zero}",
                g.mean_path_length_hint()
            );
            // Global mean (all pairs) stays within an O(1) constant.
            let total: usize = (0..nodes)
                .flat_map(|s| (0..nodes).map(move |d| (s, d)))
                .map(|(s, d)| g.distance(s, d))
                .sum();
            let global = total as f64 / (nodes * nodes) as f64;
            assert!(
                (g.mean_path_length_hint() - global).abs() < 1.0,
                "n={n}: hint {} vs global {global}",
                g.mean_path_length_hint()
            );
        }
    }
}
