//! The `d`-dimensional butterfly network (paper §4.1).
//!
//! An "unfolded" hypercube: `(d+1) · 2^d` nodes arranged in `d + 1` levels
//! of `2^d` rows. Node `[x; j]` (row `x`, level `j`) connects to
//! `[x; j+1]` (straight arc) and `[x ⊕ e_j; j+1]` (vertical arc). Packets
//! enter at level 0 and exit at level `d`; the path between `[x; 0]` and
//! `[z; d]` is **unique** and crosses the dimensions where `x` and `z`
//! differ via vertical arcs, in increasing index order — the butterfly
//! hard-wires the hypercube's canonical order.

use crate::arcs::{ArcKind, ButterflyArc};
use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// Maximum supported butterfly dimension (same rationale as the hypercube).
pub const MAX_DIM: usize = 24;

/// A butterfly node `[row; level]`; levels run `0..=d` (the paper uses
/// `1..=d+1`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ButterflyNode {
    /// Row identity, `0..2^d`.
    pub row: NodeId,
    /// Level, `0..=d`.
    pub level: usize,
}

impl std::fmt::Display for ButterflyNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}; {}]", self.row, self.level)
    }
}

/// The `d`-dimensional butterfly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Butterfly {
    dim: usize,
}

impl Butterfly {
    /// Create a `d`-dimensional butterfly. Panics if `d == 0` or too large.
    pub fn new(dim: usize) -> Butterfly {
        assert!(dim >= 1, "butterfly dimension must be at least 1");
        assert!(dim <= MAX_DIM, "butterfly dimension must be ≤ {MAX_DIM}");
        Butterfly { dim }
    }

    /// Dimension `d`.
    #[inline]
    pub fn dim(self) -> usize {
        self.dim
    }

    /// Rows per level, `2^d`.
    #[inline]
    pub fn num_rows(self) -> usize {
        1 << self.dim
    }

    /// Node levels, `d + 1`.
    #[inline]
    pub fn num_levels(self) -> usize {
        self.dim + 1
    }

    /// Total nodes, `(d+1) · 2^d`.
    #[inline]
    pub fn num_nodes(self) -> usize {
        (self.dim + 1) << self.dim
    }

    /// Total directed arcs, `d · 2^(d+1)` (two out-arcs per node on levels
    /// `0..d`).
    #[inline]
    pub fn num_arcs(self) -> usize {
        self.dim << (self.dim + 1)
    }

    /// Whether `node` is a valid node.
    #[inline]
    pub fn contains(self, node: ButterflyNode) -> bool {
        node.level <= self.dim && node.row.0 < (1u64 << self.dim)
    }

    /// Iterator over all rows `0..2^d`.
    pub fn rows(self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.num_rows()).map(|v| NodeId(v as u64))
    }

    /// Iterator over all nodes, level-major.
    pub fn nodes(self) -> impl Iterator<Item = ButterflyNode> {
        let rows = self.num_rows() as u64;
        (0..=self.dim).flat_map(move |level| {
            (0..rows).map(move |r| ButterflyNode {
                row: NodeId(r),
                level,
            })
        })
    }

    /// Iterator over all arcs, dense-index order.
    pub fn arcs(self) -> impl Iterator<Item = ButterflyArc> {
        let rows = self.num_rows() as u64;
        (0..self.dim).flat_map(move |level| {
            (0..rows).flat_map(move |r| {
                [ArcKind::Straight, ArcKind::Vertical]
                    .into_iter()
                    .map(move |kind| ButterflyArc {
                        row: NodeId(r),
                        level,
                        kind,
                    })
            })
        })
    }

    /// The two out-neighbours of `[row; level]` for `level < d`:
    /// `(straight, vertical)`.
    #[inline]
    pub fn out_neighbors(self, node: ButterflyNode) -> (ButterflyNode, ButterflyNode) {
        debug_assert!(node.level < self.dim);
        (
            ButterflyNode {
                row: node.row,
                level: node.level + 1,
            },
            ButterflyNode {
                row: node.row.flip(node.level),
                level: node.level + 1,
            },
        )
    }

    /// The unique path from `[src_row; 0]` to `[dst_row; d]`.
    ///
    /// At level `j` the packet takes the vertical arc iff bit `j` of the
    /// current row differs from bit `j` of the destination row; the number
    /// of vertical arcs equals `H(src_row, dst_row)` and the total length is
    /// always exactly `d` (paper §4.1).
    pub fn path(self, src_row: NodeId, dst_row: NodeId) -> ButterflyPath {
        debug_assert!(src_row.0 < (1u64 << self.dim) && dst_row.0 < (1u64 << self.dim));
        ButterflyPath {
            row: src_row,
            dst: dst_row,
            level: 0,
            dim: self.dim,
        }
    }
}

/// Iterator over the `d` arcs of the unique path `[src; 0] → [dst; d]`.
#[derive(Clone, Debug)]
pub struct ButterflyPath {
    row: NodeId,
    dst: NodeId,
    level: usize,
    dim: usize,
}

impl Iterator for ButterflyPath {
    type Item = ButterflyArc;

    #[inline]
    fn next(&mut self) -> Option<ButterflyArc> {
        if self.level >= self.dim {
            return None;
        }
        let kind = if self.row.bit(self.level) == self.dst.bit(self.level) {
            ArcKind::Straight
        } else {
            ArcKind::Vertical
        };
        let arc = ButterflyArc {
            row: self.row,
            level: self.level,
            kind,
        };
        self.row = arc.to_row();
        self.level += 1;
        Some(arc)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.dim - self.level;
        (n, Some(n))
    }
}

impl ExactSizeIterator for ButterflyPath {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_counts() {
        // Paper Fig. 3a: the 2-dimensional butterfly has 3 levels of 4 rows.
        let b = Butterfly::new(2);
        assert_eq!(b.num_rows(), 4);
        assert_eq!(b.num_levels(), 3);
        assert_eq!(b.num_nodes(), 12);
        assert_eq!(b.num_arcs(), 16);
        assert_eq!(b.nodes().count(), 12);
        assert_eq!(b.arcs().count(), 16);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_dim_rejected() {
        Butterfly::new(0);
    }

    #[test]
    fn out_neighbors_structure() {
        let b = Butterfly::new(3);
        let n = ButterflyNode {
            row: NodeId(0b010),
            level: 1,
        };
        let (s, v) = b.out_neighbors(n);
        assert_eq!(s.row, NodeId(0b010));
        assert_eq!(s.level, 2);
        assert_eq!(v.row, NodeId(0b000));
        assert_eq!(v.level, 2);
    }

    #[test]
    fn path_has_length_d_and_reaches_destination() {
        let b = Butterfly::new(5);
        for src in [0u64, 7, 19, 31] {
            for dst in [0u64, 1, 30, 31] {
                let path: Vec<ButterflyArc> = b.path(NodeId(src), NodeId(dst)).collect();
                assert_eq!(path.len(), 5);
                let mut row = NodeId(src);
                for (j, arc) in path.iter().enumerate() {
                    assert_eq!(arc.level, j);
                    assert_eq!(arc.row, row);
                    row = arc.to_row();
                }
                assert_eq!(row, NodeId(dst));
            }
        }
    }

    #[test]
    fn vertical_count_equals_hamming_distance() {
        let b = Butterfly::new(6);
        for (src, dst) in [(0u64, 63u64), (5, 5), (12, 33), (63, 0)] {
            let verticals = b
                .path(NodeId(src), NodeId(dst))
                .filter(|a| a.kind == ArcKind::Vertical)
                .count() as u32;
            assert_eq!(verticals, NodeId(src).hamming(NodeId(dst)));
        }
    }

    #[test]
    fn vertical_levels_match_differing_dims() {
        // The vertical arcs occur exactly at the levels where the rows
        // differ — the butterfly's hard-wired increasing index order.
        let b = Butterfly::new(6);
        let (src, dst) = (NodeId(0b010110), NodeId(0b101010));
        let vertical_levels: Vec<usize> = b
            .path(src, dst)
            .filter(|a| a.kind == ArcKind::Vertical)
            .map(|a| a.level)
            .collect();
        let expected: Vec<usize> = src.differing_dims(dst).collect();
        assert_eq!(vertical_levels, expected);
    }

    #[test]
    fn all_source_destination_pairs_unique_paths_3d() {
        // Distinct (src,dst) pairs never share both row trajectory and kinds
        // unless equal — path uniqueness sanity.
        let b = Butterfly::new(3);
        let mut sigs = std::collections::HashSet::new();
        for src in 0..8u64 {
            for dst in 0..8u64 {
                let sig: Vec<(u64, usize, bool)> = b
                    .path(NodeId(src), NodeId(dst))
                    .map(|a| (a.row.0, a.level, a.kind == ArcKind::Vertical))
                    .collect();
                assert!(sigs.insert(sig), "paths collide for ({src},{dst})");
            }
        }
        assert_eq!(sigs.len(), 64);
    }

    #[test]
    fn contains_bounds() {
        let b = Butterfly::new(2);
        assert!(b.contains(ButterflyNode {
            row: NodeId(3),
            level: 2
        }));
        assert!(!b.contains(ButterflyNode {
            row: NodeId(4),
            level: 0
        }));
        assert!(!b.contains(ButterflyNode {
            row: NodeId(0),
            level: 3
        }));
    }
}
