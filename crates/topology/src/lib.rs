//! Interconnection-network topologies for the Stamoulis–Tsitsiklis greedy
//! routing reproduction.
//!
//! This crate provides the two networks analysed in the paper —
//! the *d*-dimensional binary [`Hypercube`] and the *d*-dimensional
//! [`Butterfly`] — together with the abstract **levelled queueing networks**
//! that the paper's proofs reduce them to (network `Q` for the hypercube,
//! §3.1, and network `R` for the butterfly, §4.3), and Graphviz export for
//! the paper's structural figures.
//!
//! # Conventions
//!
//! The paper numbers hypercube dimensions `1..=d`; this crate uses `0..d`
//! everywhere. Dimension `i` in code corresponds to dimension `i + 1` in the
//! paper. Greedy ("canonical") paths cross the required dimensions in
//! increasing index order, exactly as in the paper.
//!
//! # Example
//!
//! ```
//! use hyperroute_topology::{Hypercube, NodeId};
//!
//! let cube = Hypercube::new(4);
//! let path: Vec<_> = cube.canonical_path(NodeId(0b0000), NodeId(0b1011)).collect();
//! // Dimensions are crossed in increasing order: 0, 1, 3.
//! assert_eq!(path.len(), 3);
//! assert_eq!(path[0].dim, 0);
//! assert_eq!(path[1].dim, 1);
//! assert_eq!(path[2].dim, 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arcs;
pub mod butterfly;
pub mod debruijn;
pub mod dot;
pub mod fattree;
pub mod hypercube;
pub mod levelled;
pub mod node;
pub mod ring;
pub mod routing;
pub mod torus;

pub use arcs::{ArcKind, ButterflyArc, HypercubeArc};
pub use butterfly::{Butterfly, ButterflyNode};
pub use debruijn::DeBruijn;
pub use fattree::FatTree;
pub use hypercube::Hypercube;
pub use levelled::{LevelledNetwork, ServerId};
pub use node::NodeId;
pub use ring::{Ring, RingDirection};
pub use routing::RoutingTopology;
pub use torus::{Torus, TorusDirection};
