//! The `n`-node ring under greedy (shortest-way-around) routing.
//!
//! The ring is the simplest topology outside the paper's pair, and the
//! canonical proof that the simulation core is topology-generic: greedy
//! routing in rings is the setting of Abraham et al., *Papillon: Greedy
//! Routing in Rings* (the related-work direction this reproduction grows
//! toward). Two variants:
//!
//! * **Unidirectional** (clockwise): node `i` has one outgoing arc
//!   `i → i+1 (mod n)`; the unique greedy route walks clockwise until the
//!   destination. Mean path length under uniform destinations is
//!   `(n-1)/2`, so stability needs `λ(n-1)/2 < 1`.
//! * **Bidirectional**: node `i` also has `i → i-1 (mod n)`; greedy takes
//!   the shorter way around (ties at distance `n/2` break clockwise, so
//!   routes stay deterministic). Mean path length is `≈ n/4`.
//!
//! Arc indexing is dense, like the hypercube's `node·d + dim` layout:
//! clockwise arc of node `i` is `2i`, counter-clockwise `2i + 1`
//! (unidirectional rings use index `i` directly).

use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// Maximum supported ring size (`2^26` nodes matches the hypercube cap and
/// keeps node ids inside the packed per-arc routing words the simulators
/// use).
pub const MAX_RING_NODES: usize = 1 << 26;

/// The `n`-node ring (cycle graph), directed clockwise or both ways.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ring {
    nodes: usize,
    bidirectional: bool,
}

/// Direction of a ring arc.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RingDirection {
    /// `i → i + 1 (mod n)`.
    Clockwise,
    /// `i → i - 1 (mod n)` (bidirectional rings only).
    CounterClockwise,
}

impl Ring {
    /// An `n`-node ring. Panics unless `3 <= n <= MAX_RING_NODES`.
    pub fn new(nodes: usize, bidirectional: bool) -> Ring {
        assert!(nodes >= 3, "a ring needs at least 3 nodes");
        assert!(
            nodes <= MAX_RING_NODES,
            "ring size must be ≤ {MAX_RING_NODES}"
        );
        Ring {
            nodes,
            bidirectional,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(self) -> usize {
        self.nodes
    }

    /// Whether counter-clockwise arcs exist.
    #[inline]
    pub fn bidirectional(self) -> bool {
        self.bidirectional
    }

    /// Number of directed arcs: `n` clockwise-only, `2n` bidirectional.
    #[inline]
    pub fn num_arcs(self) -> usize {
        if self.bidirectional {
            2 * self.nodes
        } else {
            self.nodes
        }
    }

    /// Network diameter: `n-1` clockwise-only, `⌊n/2⌋` bidirectional.
    #[inline]
    pub fn diameter(self) -> usize {
        if self.bidirectional {
            self.nodes / 2
        } else {
            self.nodes - 1
        }
    }

    /// Iterator over all node identities `0..n`.
    pub fn nodes(self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.nodes).map(|v| NodeId(v as u64))
    }

    /// Clockwise distance from `src` to `dst` (arcs walked going `+1`).
    #[inline]
    pub fn clockwise_distance(self, src: u64, dst: u64) -> usize {
        let n = self.nodes as u64;
        debug_assert!(src < n && dst < n);
        ((dst + n - src) % n) as usize
    }

    /// Greedy (shortest-path) distance from `src` to `dst`.
    #[inline]
    pub fn distance(self, src: u64, dst: u64) -> usize {
        let cw = self.clockwise_distance(src, dst);
        if self.bidirectional {
            cw.min(self.nodes - cw)
        } else {
            cw
        }
    }

    /// The greedy direction out of `src` toward `dst != src`: the shorter
    /// way around, clockwise on ties (and always, when unidirectional).
    #[inline]
    pub fn greedy_direction(self, src: u64, dst: u64) -> RingDirection {
        debug_assert!(src != dst);
        let cw = self.clockwise_distance(src, dst);
        if self.bidirectional && 2 * cw > self.nodes {
            RingDirection::CounterClockwise
        } else {
            RingDirection::Clockwise
        }
    }

    /// Dense index of `node`'s outgoing arc in `direction`.
    ///
    /// Unidirectional rings index clockwise arcs as `node`; bidirectional
    /// rings interleave (`2·node` clockwise, `2·node + 1` counter-
    /// clockwise), keeping both arcs of a node on one cache line.
    #[inline]
    pub fn arc_index(self, node: u64, direction: RingDirection) -> usize {
        debug_assert!(self.bidirectional || direction == RingDirection::Clockwise);
        if self.bidirectional {
            2 * node as usize + (direction == RingDirection::CounterClockwise) as usize
        } else {
            node as usize
        }
    }

    /// Tail node and direction of the arc with dense index `idx`.
    #[inline]
    pub fn arc_from_index(self, idx: usize) -> (u64, RingDirection) {
        debug_assert!(idx < self.num_arcs());
        if self.bidirectional {
            let dir = if idx & 1 == 0 {
                RingDirection::Clockwise
            } else {
                RingDirection::CounterClockwise
            };
            ((idx >> 1) as u64, dir)
        } else {
            (idx as u64, RingDirection::Clockwise)
        }
    }

    /// Head node of `node`'s arc in `direction`.
    #[inline]
    pub fn step(self, node: u64, direction: RingDirection) -> u64 {
        let n = self.nodes as u64;
        match direction {
            RingDirection::Clockwise => (node + 1) % n,
            RingDirection::CounterClockwise => (node + n - 1) % n,
        }
    }

    /// Expected greedy path length under uniform destinations (including
    /// the origin itself, which contributes zero): `(n-1)/2` clockwise,
    /// `⌊n²/4⌋/n ≈ n/4` bidirectional. This is the ring's analogue of
    /// the hypercube's `dp` (Lemma 1). Closed forms, so the engine can
    /// call this per construction even at `n = 2^26`.
    pub fn mean_path_length(self) -> f64 {
        let n = self.nodes as f64;
        if self.bidirectional {
            // Σ_d min(d, n-d) over d in 0..n is ⌊n²/4⌋.
            ((self.nodes * self.nodes) / 4) as f64 / n
        } else {
            (n - 1.0) / 2.0
        }
    }

    /// Per-arc load factor under per-node Poisson rate `λ` and uniform
    /// destinations: by symmetry every arc (or every arc of one direction)
    /// sees the same rate, `λ · E[hops in that direction]`. Stability
    /// needs this below 1 — the ring's analogue of `ρ = λp` (Prop. 5).
    pub fn load_factor(self, lambda: f64) -> f64 {
        if self.bidirectional {
            // Clockwise hops only (ccw is symmetric by the tie rule up to
            // an O(1/n) asymmetry for even n, where antipode ties go
            // clockwise): destinations with 2·cw ≤ n contribute cw, i.e.
            // Σ_{k=1}^{⌊n/2⌋} k = m(m+1)/2 over the n destinations.
            let m = self.nodes / 2;
            lambda * (m * (m + 1) / 2) as f64 / self.nodes as f64
        } else {
            lambda * self.mean_path_length()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_diameter() {
        let uni = Ring::new(8, false);
        assert_eq!(uni.num_nodes(), 8);
        assert_eq!(uni.num_arcs(), 8);
        assert_eq!(uni.diameter(), 7);
        let bi = Ring::new(8, true);
        assert_eq!(bi.num_arcs(), 16);
        assert_eq!(bi.diameter(), 4);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_rejected() {
        Ring::new(2, false);
    }

    #[test]
    fn unidirectional_distance_is_clockwise() {
        let r = Ring::new(10, false);
        assert_eq!(r.distance(0, 1), 1);
        assert_eq!(r.distance(1, 0), 9);
        assert_eq!(r.distance(7, 7), 0);
    }

    #[test]
    fn bidirectional_distance_is_shorter_way() {
        let r = Ring::new(10, true);
        assert_eq!(r.distance(0, 1), 1);
        assert_eq!(r.distance(1, 0), 1);
        assert_eq!(r.distance(0, 5), 5);
        assert_eq!(r.distance(0, 6), 4);
    }

    #[test]
    fn greedy_direction_shorter_way_ties_clockwise() {
        let r = Ring::new(8, true);
        assert_eq!(r.greedy_direction(0, 3), RingDirection::Clockwise);
        assert_eq!(r.greedy_direction(0, 5), RingDirection::CounterClockwise);
        // Antipode at distance 4 = n/2: tie broken clockwise.
        assert_eq!(r.greedy_direction(0, 4), RingDirection::Clockwise);
    }

    #[test]
    fn greedy_walk_reaches_destination_in_distance_hops() {
        for bidirectional in [false, true] {
            let r = Ring::new(9, bidirectional);
            for src in 0..9u64 {
                for dst in 0..9u64 {
                    let mut at = src;
                    let mut hops = 0;
                    while at != dst {
                        let dir = r.greedy_direction(at, dst);
                        // Greedy strictly shrinks the distance.
                        let before = r.distance(at, dst);
                        at = r.step(at, dir);
                        assert_eq!(r.distance(at, dst), before - 1);
                        hops += 1;
                    }
                    assert_eq!(hops, r.distance(src, dst), "{src}→{dst}");
                }
            }
        }
    }

    #[test]
    fn arc_index_round_trips() {
        for bidirectional in [false, true] {
            let r = Ring::new(7, bidirectional);
            let mut seen = vec![false; r.num_arcs()];
            for node in 0..7u64 {
                let dirs: &[RingDirection] = if bidirectional {
                    &[RingDirection::Clockwise, RingDirection::CounterClockwise]
                } else {
                    &[RingDirection::Clockwise]
                };
                for &dir in dirs {
                    let idx = r.arc_index(node, dir);
                    assert!(!seen[idx], "collision at {idx}");
                    seen[idx] = true;
                    assert_eq!(r.arc_from_index(idx), (node, dir));
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn closed_forms_match_distance_sums() {
        // The O(1) formulas equal the brute-force distance sums.
        for n in 3..=40usize {
            for bidirectional in [false, true] {
                let r = Ring::new(n, bidirectional);
                let mean: f64 =
                    (0..n as u64).map(|d| r.distance(0, d) as f64).sum::<f64>() / n as f64;
                assert!(
                    (r.mean_path_length() - mean).abs() < 1e-12,
                    "n={n} bidir={bidirectional}: {} vs {mean}",
                    r.mean_path_length()
                );
                let cw_total: usize = (0..n as u64)
                    .map(|d| {
                        let cw = r.clockwise_distance(0, d);
                        if bidirectional && 2 * cw > n {
                            0
                        } else {
                            cw
                        }
                    })
                    .sum();
                let expect = cw_total as f64 / n as f64;
                assert!(
                    (r.load_factor(1.0) - expect).abs() < 1e-12,
                    "n={n} bidir={bidirectional}: {} vs {expect}",
                    r.load_factor(1.0)
                );
            }
        }
    }

    #[test]
    fn mean_path_and_load_factor() {
        let uni = Ring::new(9, false);
        assert!((uni.mean_path_length() - 4.0).abs() < 1e-12); // (n-1)/2
        assert!((uni.load_factor(0.2) - 0.8).abs() < 1e-12);
        let bi = Ring::new(8, true);
        // Distances from 0: 0,1,2,3,4,3,2,1 → mean 2.0.
        assert!((bi.mean_path_length() - 2.0).abs() < 1e-12);
        // Clockwise hops: 0,1,2,3,4,0,0,0 → 10/8 per packet.
        assert!((bi.load_factor(0.4) - 0.5).abs() < 1e-12);
    }
}
