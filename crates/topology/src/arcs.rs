//! Arc identities and dense arc indexing.
//!
//! Both simulators are *arc-indexed*: every directed arc of the network maps
//! to a dense integer so that per-arc queue state lives in flat vectors
//! (cache-friendly, no hashing — see the engine design notes in DESIGN.md).

use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// A directed hypercube arc `(from, from ⊕ e_dim)`.
///
/// The paper calls `dim` the arc's *type*; the set of all arcs of one type
/// forms a *dimension* (paper §1.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HypercubeArc {
    /// Tail node of the arc.
    pub from: NodeId,
    /// Dimension (type) of the arc, `0..d`.
    pub dim: usize,
}

impl HypercubeArc {
    /// Head node of the arc: `from ⊕ e_dim`.
    #[inline]
    pub fn to(self) -> NodeId {
        self.from.flip(self.dim)
    }

    /// Dense index of this arc in a `d`-cube: `from * d + dim`.
    ///
    /// The inverse is [`HypercubeArc::from_index`]. Indices cover
    /// `0..d * 2^d` without gaps.
    #[inline]
    pub fn index(self, d: usize) -> usize {
        self.from.0 as usize * d + self.dim
    }

    /// Reconstruct an arc from its dense index.
    #[inline]
    pub fn from_index(idx: usize, d: usize) -> HypercubeArc {
        HypercubeArc {
            from: NodeId((idx / d) as u64),
            dim: idx % d,
        }
    }
}

/// Whether a butterfly arc keeps the row (`Straight`) or crosses the level's
/// dimension (`Vertical`) — paper §4.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArcKind {
    /// `[x; j] → [x; j+1]`, written `(x; j; s)` in the paper.
    Straight,
    /// `[x; j] → [x ⊕ e_j; j+1]`, written `(x; j; v)` in the paper.
    Vertical,
}

impl ArcKind {
    /// 0 for straight, 1 for vertical; used by the dense index.
    #[inline]
    pub fn as_usize(self) -> usize {
        match self {
            ArcKind::Straight => 0,
            ArcKind::Vertical => 1,
        }
    }

    /// Inverse of [`ArcKind::as_usize`].
    #[inline]
    pub fn from_usize(v: usize) -> ArcKind {
        if v == 0 {
            ArcKind::Straight
        } else {
            ArcKind::Vertical
        }
    }
}

impl std::fmt::Display for ArcKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArcKind::Straight => write!(f, "s"),
            ArcKind::Vertical => write!(f, "v"),
        }
    }
}

/// A directed butterfly arc out of node `[row; level]`.
///
/// Levels are numbered `0..d` for arcs (an arc of level `j` connects node
/// level `j` to node level `j + 1`; the paper numbers node levels `1..=d+1`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ButterflyArc {
    /// Row of the tail node.
    pub row: NodeId,
    /// Arc level `0..d`.
    pub level: usize,
    /// Straight or vertical.
    pub kind: ArcKind,
}

impl ButterflyArc {
    /// Row of the head node (level `level + 1`).
    #[inline]
    pub fn to_row(self) -> NodeId {
        match self.kind {
            ArcKind::Straight => self.row,
            ArcKind::Vertical => self.row.flip(self.level),
        }
    }

    /// Dense index of this arc in a `d`-dimensional butterfly:
    /// `(level * 2^d + row) * 2 + kind`. Indices cover `0..d * 2^(d+1)`.
    #[inline]
    pub fn index(self, d: usize) -> usize {
        ((self.level << d) + self.row.0 as usize) * 2 + self.kind.as_usize()
    }

    /// Reconstruct an arc from its dense index.
    #[inline]
    pub fn from_index(idx: usize, d: usize) -> ButterflyArc {
        let kind = ArcKind::from_usize(idx & 1);
        let cell = idx >> 1;
        let rows = 1usize << d;
        ButterflyArc {
            row: NodeId((cell % rows) as u64),
            level: cell / rows,
            kind,
        }
    }
}

impl std::fmt::Display for ButterflyArc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}; {}; {})", self.row, self.level, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_arc_head() {
        let a = HypercubeArc {
            from: NodeId(0b0100),
            dim: 0,
        };
        assert_eq!(a.to(), NodeId(0b0101));
        let b = HypercubeArc {
            from: NodeId(0b0100),
            dim: 2,
        };
        assert_eq!(b.to(), NodeId(0b0000));
    }

    #[test]
    fn hypercube_arc_index_roundtrip_exhaustive() {
        let d = 4;
        let mut seen = vec![false; d << d];
        for node in 0..(1u64 << d) {
            for dim in 0..d {
                let arc = HypercubeArc {
                    from: NodeId(node),
                    dim,
                };
                let idx = arc.index(d);
                assert!(idx < d << d);
                assert!(!seen[idx], "index collision at {idx}");
                seen[idx] = true;
                assert_eq!(HypercubeArc::from_index(idx, d), arc);
            }
        }
        assert!(seen.iter().all(|&s| s), "index space not covered");
    }

    #[test]
    fn butterfly_arc_heads() {
        let s = ButterflyArc {
            row: NodeId(0b10),
            level: 0,
            kind: ArcKind::Straight,
        };
        assert_eq!(s.to_row(), NodeId(0b10));
        let v = ButterflyArc {
            row: NodeId(0b10),
            level: 1,
            kind: ArcKind::Vertical,
        };
        assert_eq!(v.to_row(), NodeId(0b00));
    }

    #[test]
    fn butterfly_arc_index_roundtrip_exhaustive() {
        let d = 3;
        let total = d << (d + 1);
        let mut seen = vec![false; total];
        for level in 0..d {
            for row in 0..(1u64 << d) {
                for kind in [ArcKind::Straight, ArcKind::Vertical] {
                    let arc = ButterflyArc {
                        row: NodeId(row),
                        level,
                        kind,
                    };
                    let idx = arc.index(d);
                    assert!(idx < total, "index {idx} out of range {total}");
                    assert!(!seen[idx]);
                    seen[idx] = true;
                    assert_eq!(ButterflyArc::from_index(idx, d), arc);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn arc_kind_display() {
        let v = ButterflyArc {
            row: NodeId(3),
            level: 1,
            kind: ArcKind::Vertical,
        };
        assert_eq!(v.to_string(), "(3; 1; v)");
    }
}
