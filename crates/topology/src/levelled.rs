//! Levelled queueing networks with Markovian routing (paper §3.1, §4.3).
//!
//! Under greedy routing the hypercube is *equivalent* to a queueing network
//! `Q` with one deterministic unit-service FIFO server per arc, organised in
//! `d` levels (one per dimension), independent external Poisson arrivals
//! (Property A), level-increasing movement (Property B), and Markovian
//! routing (Property C / Lemma 4). The butterfly reduces likewise to a
//! network `R`. This module represents such networks explicitly: they drive
//! the abstract simulator in `hyperroute-core`, the product-form computation
//! in `hyperroute-queueing`, and the Fig. 1b / Fig. 3b exports.

use crate::arcs::{ArcKind, ButterflyArc, HypercubeArc};
use crate::butterfly::Butterfly;
use crate::hypercube::Hypercube;
use serde::{Deserialize, Serialize};

/// Index of a server ("arc") in a [`LevelledNetwork`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ServerId(pub usize);

/// A feed-forward ("levelled") queueing network with Markovian routing.
///
/// Each server has a *level*; customers finishing service at a server either
/// move to a server of a **strictly higher** level (with fixed
/// probabilities) or depart. All servers are deterministic with unit service
/// time in the paper's model; service discipline (FIFO vs PS) is chosen by
/// the simulator, not encoded here.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LevelledNetwork {
    level: Vec<usize>,
    external_rate: Vec<f64>,
    /// Forwarding alternatives per server; residual probability = departure.
    routing: Vec<Vec<(ServerId, f64)>>,
    labels: Vec<String>,
    num_levels: usize,
}

impl LevelledNetwork {
    /// Build a network from raw parts and validate it.
    ///
    /// Panics when the data violate the levelled-network invariants
    /// (see [`LevelledNetwork::validate`]); the long-form constructors below
    /// are the usual entry points.
    pub fn new(
        level: Vec<usize>,
        external_rate: Vec<f64>,
        routing: Vec<Vec<(ServerId, f64)>>,
        labels: Vec<String>,
    ) -> LevelledNetwork {
        let num_levels = level.iter().copied().max().map_or(0, |m| m + 1);
        let net = LevelledNetwork {
            level,
            external_rate,
            routing,
            labels,
            num_levels,
        };
        if let Err(e) = net.validate() {
            panic!("invalid levelled network: {e}");
        }
        net
    }

    /// Number of servers.
    #[inline]
    pub fn num_servers(&self) -> usize {
        self.level.len()
    }

    /// Number of levels (1 + maximum level index).
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// Level of server `s`.
    #[inline]
    pub fn level(&self, s: ServerId) -> usize {
        self.level[s.0]
    }

    /// External Poisson arrival rate of server `s` (Property A).
    #[inline]
    pub fn external_rate(&self, s: ServerId) -> f64 {
        self.external_rate[s.0]
    }

    /// Forwarding alternatives `(next, probability)` of server `s`; the
    /// residual probability is the departure probability.
    #[inline]
    pub fn routes(&self, s: ServerId) -> &[(ServerId, f64)] {
        &self.routing[s.0]
    }

    /// Probability that a customer departs the network after server `s`.
    pub fn departure_prob(&self, s: ServerId) -> f64 {
        1.0 - self.routing[s.0].iter().map(|&(_, q)| q).sum::<f64>()
    }

    /// Human-readable label of server `s` (used by the DOT export).
    pub fn label(&self, s: ServerId) -> &str {
        &self.labels[s.0]
    }

    /// Iterator over all server ids.
    pub fn servers(&self) -> impl ExactSizeIterator<Item = ServerId> {
        (0..self.num_servers()).map(ServerId)
    }

    /// Check the structural invariants:
    /// vectors agree in length, rates are finite and non-negative,
    /// forwarding probabilities are in `[0, 1]` and sum to at most 1, and
    /// every route targets a server of a **strictly higher** level
    /// (Property B).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.level.len();
        if self.external_rate.len() != n || self.routing.len() != n || self.labels.len() != n {
            return Err("length mismatch between per-server vectors".into());
        }
        for s in 0..n {
            let rate = self.external_rate[s];
            if !rate.is_finite() || rate < 0.0 {
                return Err(format!("server {s}: bad external rate {rate}"));
            }
            let mut sum = 0.0;
            for &(t, q) in &self.routing[s] {
                if t.0 >= n {
                    return Err(format!("server {s}: route to missing server {}", t.0));
                }
                if !(0.0..=1.0).contains(&q) {
                    return Err(format!("server {s}: bad probability {q}"));
                }
                if self.level[t.0] <= self.level[s] {
                    return Err(format!(
                        "server {s} (level {}) routes to server {} (level {}): not levelled",
                        self.level[s], t.0, self.level[t.0]
                    ));
                }
                sum += q;
            }
            if sum > 1.0 + 1e-9 {
                return Err(format!("server {s}: forwarding probabilities sum to {sum}"));
            }
        }
        Ok(())
    }

    /// Total (external + internal) arrival rate of every server, obtained by
    /// solving the traffic equations level by level — exact because the
    /// network is feed-forward.
    ///
    /// For the hypercube network `Q` this equals `λp` at every server
    /// (Proposition 5); for the butterfly network `R` it is `λ(1-p)` at
    /// straight and `λp` at vertical servers (Proposition 15).
    pub fn total_arrival_rates(&self) -> Vec<f64> {
        let n = self.num_servers();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&s| self.level[s]);
        let mut rate = self.external_rate.clone();
        for &s in &order {
            let r = rate[s];
            for &(t, q) in &self.routing[s] {
                rate[t.0] += r * q;
            }
        }
        rate
    }

    /// Largest per-server utilisation (arrival rate × unit service time);
    /// the network is stable iff this is `< 1` (Theorem 2A of \[Bor87\] as
    /// invoked by Propositions 6 and 16).
    pub fn max_utilization(&self) -> f64 {
        self.total_arrival_rates()
            .into_iter()
            .fold(0.0_f64, f64::max)
    }

    /// Aggregate external arrival rate into the network.
    pub fn total_external_rate(&self) -> f64 {
        self.external_rate.iter().sum()
    }

    // -----------------------------------------------------------------
    // The paper's concrete networks.
    // -----------------------------------------------------------------

    /// Network `Q`: the queueing network equivalent to the `d`-cube under
    /// greedy routing with per-node generation rate `lambda` and bit-flip
    /// probability `p` (paper §3.1, Fig. 1b).
    ///
    /// One server per hypercube arc (dense arc index); level = dimension.
    /// * Property A: external rate at arc `(x, x ⊕ e_i)` is
    ///   `λ p (1-p)^i` (0-based `i`).
    /// * Property C: after crossing dimension `i` at node `y'`, a packet
    ///   joins `(y', e_j)` with probability `p (1-p)^(j-i-1)` for
    ///   `j = i+1..d`, and departs with probability `(1-p)^(d-1-i)`.
    pub fn equivalent_q(cube: Hypercube, lambda: f64, p: f64) -> LevelledNetwork {
        assert!(lambda >= 0.0, "negative arrival rate");
        assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1]");
        let d = cube.dim();
        let n = cube.num_arcs();
        let mut level = vec![0usize; n];
        let mut external = vec![0.0f64; n];
        let mut routing: Vec<Vec<(ServerId, f64)>> = vec![Vec::new(); n];
        let mut labels = vec![String::new(); n];

        for arc in cube.arcs() {
            let s = arc.index(d);
            let i = arc.dim;
            level[s] = i;
            external[s] = lambda * p * (1.0 - p).powi(i as i32);
            labels[s] = format!("({},{})", arc.from, arc.to());
            let next_node = arc.to();
            let mut routes = Vec::with_capacity(d - i - 1);
            for j in (i + 1)..d {
                let q = p * (1.0 - p).powi((j - i - 1) as i32);
                if q > 0.0 {
                    let t = HypercubeArc {
                        from: next_node,
                        dim: j,
                    }
                    .index(d);
                    routes.push((ServerId(t), q));
                }
            }
            routing[s] = routes;
        }
        LevelledNetwork::new(level, external, routing, labels)
    }

    /// Network `R`: the queueing network equivalent to the `d`-dimensional
    /// butterfly under greedy routing (paper §4.3, Fig. 3b).
    ///
    /// One server per butterfly arc; level = arc level. External arrivals
    /// only at level-0 arcs: rate `λ(1-p)` straight, `λp` vertical. After
    /// any level-`j` arc a packet continues straight with probability
    /// `1-p` and vertically with probability `p` (Property B of §4.3),
    /// departing after level `d-1`.
    pub fn equivalent_r(bf: Butterfly, lambda: f64, p: f64) -> LevelledNetwork {
        assert!(lambda >= 0.0, "negative arrival rate");
        assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1]");
        let d = bf.dim();
        let n = bf.num_arcs();
        let mut level = vec![0usize; n];
        let mut external = vec![0.0f64; n];
        let mut routing: Vec<Vec<(ServerId, f64)>> = vec![Vec::new(); n];
        let mut labels = vec![String::new(); n];

        for arc in bf.arcs() {
            let s = arc.index(d);
            level[s] = arc.level;
            if arc.level == 0 {
                external[s] = match arc.kind {
                    ArcKind::Straight => lambda * (1.0 - p),
                    ArcKind::Vertical => lambda * p,
                };
            }
            labels[s] = arc.to_string();
            if arc.level + 1 < d {
                let row = arc.to_row();
                let straight = ButterflyArc {
                    row,
                    level: arc.level + 1,
                    kind: ArcKind::Straight,
                }
                .index(d);
                let vertical = ButterflyArc {
                    row,
                    level: arc.level + 1,
                    kind: ArcKind::Vertical,
                }
                .index(d);
                let mut routes = Vec::with_capacity(2);
                if 1.0 - p > 0.0 {
                    routes.push((ServerId(straight), 1.0 - p));
                }
                if p > 0.0 {
                    routes.push((ServerId(vertical), p));
                }
                routing[s] = routes;
            }
        }
        LevelledNetwork::new(level, external, routing, labels)
    }

    /// The three-server network `G` of Lemma 9 (paper Fig. 2a): servers
    /// `S1`, `S2` on level 0 feeding server `S3` on level 1 with
    /// probabilities `q1`, `q2`; independent external arrivals at all three.
    pub fn fig2_network(rate1: f64, rate2: f64, rate3: f64, q1: f64, q2: f64) -> LevelledNetwork {
        LevelledNetwork::new(
            vec![0, 0, 1],
            vec![rate1, rate2, rate3],
            vec![vec![(ServerId(2), q1)], vec![(ServerId(2), q2)], Vec::new()],
            vec!["S1".into(), "S2".into(), "S3".into()],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn equivalent_q_structure_3cube() {
        // Fig. 1b: network Q of the 3-cube has 24 servers on 3 levels.
        let net = LevelledNetwork::equivalent_q(Hypercube::new(3), 0.5, 0.5);
        assert_eq!(net.num_servers(), 24);
        assert_eq!(net.num_levels(), 3);
        assert!(net.validate().is_ok());
        // Level sizes: 8 servers per dimension.
        for lvl in 0..3 {
            assert_eq!(net.servers().filter(|&s| net.level(s) == lvl).count(), 8);
        }
    }

    #[test]
    fn equivalent_q_external_rates_follow_property_a() {
        let (lambda, p) = (0.8, 0.3);
        let cube = Hypercube::new(4);
        let net = LevelledNetwork::equivalent_q(cube, lambda, p);
        for arc in cube.arcs() {
            let s = ServerId(arc.index(4));
            let expect = lambda * p * (1.0 - p).powi(arc.dim as i32);
            assert!((net.external_rate(s) - expect).abs() < EPS);
        }
    }

    #[test]
    fn equivalent_q_routing_probabilities_sum_to_departure() {
        // Property C: forward sum + departure = 1, departure = (1-p)^(d-1-i).
        let (d, p) = (5usize, 0.35);
        let net = LevelledNetwork::equivalent_q(Hypercube::new(d), 1.0, p);
        for s in net.servers() {
            let i = net.level(s);
            let dep = net.departure_prob(s);
            let expect = (1.0 - p).powi((d - 1 - i) as i32);
            assert!(
                (dep - expect).abs() < 1e-9,
                "server {s:?} level {i}: departure {dep} vs {expect}"
            );
        }
    }

    #[test]
    fn proposition_5_arc_rates_equal_rho() {
        // Prop. 5: total arrival rate at EVERY arc equals λp.
        for &(lambda, p) in &[(0.5, 0.5), (1.2, 0.7), (0.9, 0.25), (1.9, 1.0)] {
            let net = LevelledNetwork::equivalent_q(Hypercube::new(5), lambda, p);
            let rho = lambda * p;
            for (s, rate) in net.total_arrival_rates().into_iter().enumerate() {
                assert!(
                    (rate - rho).abs() < 1e-9,
                    "λ={lambda} p={p} server {s}: rate {rate} ≠ ρ {rho}"
                );
            }
            assert!((net.max_utilization() - rho).abs() < 1e-9);
        }
    }

    #[test]
    fn equivalent_r_structure_2butterfly() {
        // Fig. 3b: network R of the 2-dimensional butterfly: 16 servers,
        // 2 levels.
        let net = LevelledNetwork::equivalent_r(Butterfly::new(2), 0.5, 0.5);
        assert_eq!(net.num_servers(), 16);
        assert_eq!(net.num_levels(), 2);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn proposition_15_butterfly_arc_rates() {
        // Prop. 15: straight arcs carry λ(1-p), vertical arcs carry λp,
        // at every level.
        let (lambda, p) = (0.9, 0.3);
        let bf = Butterfly::new(4);
        let net = LevelledNetwork::equivalent_r(bf, lambda, p);
        let rates = net.total_arrival_rates();
        for arc in bf.arcs() {
            let expect = match arc.kind {
                ArcKind::Straight => lambda * (1.0 - p),
                ArcKind::Vertical => lambda * p,
            };
            let got = rates[arc.index(4)];
            assert!(
                (got - expect).abs() < 1e-9,
                "{arc}: rate {got} vs expected {expect}"
            );
        }
    }

    #[test]
    fn butterfly_max_utilization_is_load_factor() {
        // ρ_bf = λ max{p, 1-p} (Prop. 16 / Eq. 17).
        for &(lambda, p) in &[(1.0, 0.3), (1.0, 0.5), (1.5, 0.6)] {
            let net = LevelledNetwork::equivalent_r(Butterfly::new(3), lambda, p);
            let expect = lambda * p.max(1.0 - p);
            assert!((net.max_utilization() - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn fig2_network_shape() {
        let net = LevelledNetwork::fig2_network(0.3, 0.4, 0.1, 0.5, 0.8);
        assert_eq!(net.num_servers(), 3);
        assert_eq!(net.num_levels(), 2);
        let rates = net.total_arrival_rates();
        assert!((rates[2] - (0.1 + 0.3 * 0.5 + 0.4 * 0.8)).abs() < EPS);
        assert!((net.departure_prob(ServerId(0)) - 0.5).abs() < EPS);
        assert!((net.departure_prob(ServerId(2)) - 1.0).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "not levelled")]
    fn rejects_same_level_route() {
        LevelledNetwork::new(
            vec![0, 0],
            vec![0.1, 0.1],
            vec![vec![(ServerId(1), 0.5)], vec![]],
            vec!["a".into(), "b".into()],
        );
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn rejects_excess_probability() {
        LevelledNetwork::new(
            vec![0, 1],
            vec![0.1, 0.0],
            vec![vec![(ServerId(1), 0.7), (ServerId(1), 0.6)], vec![]],
            vec!["a".into(), "b".into()],
        );
    }

    #[test]
    fn degenerate_p_zero_and_one() {
        // p = 0: all packets stay home; every rate is 0.
        let net0 = LevelledNetwork::equivalent_q(Hypercube::new(3), 1.0, 0.0);
        assert!(net0.total_arrival_rates().iter().all(|&r| r.abs() < EPS));
        // p = 1: every packet crosses every dimension; rate λ on each arc,
        // routing after dim i goes to dim i+1 with probability 1.
        let net1 = LevelledNetwork::equivalent_q(Hypercube::new(3), 0.7, 1.0);
        for r in net1.total_arrival_rates() {
            assert!((r - 0.7).abs() < 1e-9);
        }
        for s in net1.servers() {
            if net1.level(s) < 2 {
                assert_eq!(net1.routes(s).len(), 1);
                assert!((net1.routes(s)[0].1 - 1.0).abs() < EPS);
            }
        }
    }
}
