//! Node identities and bit-level helpers.
//!
//! A hypercube node is identified by the integer whose binary representation
//! is the node's binary identity `(z_{d-1}, ..., z_0)` (paper §1.1, shifted
//! to 0-based dimensions).

use serde::{Deserialize, Serialize};

/// Identity of a hypercube node (also a butterfly *row*).
///
/// Bit `i` of the wrapped integer is the node's coordinate along dimension
/// `i`. Supports dimensions up to 63.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u64);

impl NodeId {
    /// The all-zero node, origin of the canonical coordinate system.
    pub const ZERO: NodeId = NodeId(0);

    /// Value of the `dim`-th coordinate bit.
    #[inline]
    pub fn bit(self, dim: usize) -> bool {
        (self.0 >> dim) & 1 == 1
    }

    /// The node reached from `self` by crossing dimension `dim`
    /// (`e_j`-translation in the paper: `x ⊕ e_{dim+1}`).
    #[inline]
    pub fn flip(self, dim: usize) -> NodeId {
        NodeId(self.0 ^ (1 << dim))
    }

    /// Bitwise XOR of two identities (`x ⊕ y` in the paper).
    #[inline]
    pub fn xor(self, other: NodeId) -> NodeId {
        NodeId(self.0 ^ other.0)
    }

    /// Hamming distance `H(x, y)`: the number of coordinate bits in which
    /// the two identities differ. Every path between the nodes contains at
    /// least this many arcs (paper §1.1).
    #[inline]
    pub fn hamming(self, other: NodeId) -> u32 {
        (self.0 ^ other.0).count_ones()
    }

    /// Iterator over the dimensions in which `self` and `other` differ, in
    /// **increasing index order** — precisely the order in which the greedy
    /// scheme crosses them.
    #[inline]
    pub fn differing_dims(self, other: NodeId) -> DifferingDims {
        DifferingDims {
            rest: self.0 ^ other.0,
        }
    }

    /// Number of trailing coordinate bits equal between the nodes; i.e. the
    /// first dimension the greedy scheme would have to cross, if any.
    #[inline]
    pub fn first_differing_dim(self, other: NodeId) -> Option<usize> {
        let x = self.0 ^ other.0;
        if x == 0 {
            None
        } else {
            Some(x.trailing_zeros() as usize)
        }
    }
}

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NodeId({:#b})", self.0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

/// Iterator over set bits of an XOR mask in increasing order.
///
/// Yields the dimensions a greedy packet must cross, lowest first.
#[derive(Clone, Debug)]
pub struct DifferingDims {
    rest: u64,
}

impl Iterator for DifferingDims {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.rest == 0 {
            None
        } else {
            let d = self.rest.trailing_zeros() as usize;
            self.rest &= self.rest - 1;
            Some(d)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.rest.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for DifferingDims {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_and_flip_roundtrip() {
        let x = NodeId(0b1010);
        assert!(!x.bit(0));
        assert!(x.bit(1));
        assert!(!x.bit(2));
        assert!(x.bit(3));
        assert_eq!(x.flip(0), NodeId(0b1011));
        assert_eq!(x.flip(0).flip(0), x);
        assert_eq!(x.flip(3), NodeId(0b0010));
    }

    #[test]
    fn hamming_matches_bit_count() {
        assert_eq!(NodeId(0).hamming(NodeId(0)), 0);
        assert_eq!(NodeId(0).hamming(NodeId(0b1111)), 4);
        assert_eq!(NodeId(0b1010).hamming(NodeId(0b0101)), 4);
        assert_eq!(NodeId(0b1010).hamming(NodeId(0b1000)), 1);
    }

    #[test]
    fn hamming_is_symmetric_and_triangle() {
        // Small exhaustive check on 4-bit identities.
        for a in 0..16u64 {
            for b in 0..16u64 {
                let (a, b) = (NodeId(a), NodeId(b));
                assert_eq!(a.hamming(b), b.hamming(a));
                for c in 0..16u64 {
                    let c = NodeId(c);
                    assert!(a.hamming(c) <= a.hamming(b) + b.hamming(c));
                }
            }
        }
    }

    #[test]
    fn differing_dims_increasing_and_complete() {
        let x = NodeId(0b0000);
        let z = NodeId(0b1011);
        let dims: Vec<usize> = x.differing_dims(z).collect();
        assert_eq!(dims, vec![0, 1, 3]);
        // Increasing order is the defining property of the canonical path.
        assert!(dims.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(dims.len() as u32, x.hamming(z));
    }

    #[test]
    fn first_differing_dim_cases() {
        assert_eq!(NodeId(5).first_differing_dim(NodeId(5)), None);
        assert_eq!(NodeId(0).first_differing_dim(NodeId(0b100)), Some(2));
        assert_eq!(NodeId(0b1).first_differing_dim(NodeId(0b0)), Some(0));
    }

    #[test]
    fn exact_size_iterator_len() {
        let it = NodeId(0).differing_dims(NodeId(0b1101));
        assert_eq!(it.len(), 3);
    }
}
