//! Graphviz (DOT) export for the paper's structural figures.
//!
//! * Fig. 1a — the 3-dimensional hypercube ([`hypercube_dot`]).
//! * Fig. 1b — the equivalent levelled network `Q` ([`levelled_dot`]).
//! * Fig. 2a — the three-server Lemma-9 network (also [`levelled_dot`]).
//! * Fig. 3a — the 2-dimensional butterfly ([`butterfly_dot`]).
//! * Fig. 3b — the equivalent network `R` (also [`levelled_dot`]).
//!
//! The output is deterministic (stable node ordering) so the rendered
//! figures are reproducible artifacts.

use crate::butterfly::Butterfly;
use crate::hypercube::Hypercube;
use crate::levelled::LevelledNetwork;
use std::fmt::Write as _;

/// Render a hypercube as DOT (directed arcs, nodes labelled with their
/// binary identity as in Fig. 1a).
pub fn hypercube_dot(cube: Hypercube) -> String {
    let d = cube.dim();
    let mut out = String::new();
    let _ = writeln!(out, "digraph hypercube_{d} {{");
    let _ = writeln!(out, "  // Fig. 1a analogue: the {d}-dimensional hypercube");
    let _ = writeln!(out, "  node [shape=circle];");
    for x in cube.nodes() {
        let _ = writeln!(out, "  n{} [label=\"{:0width$b}\"];", x.0, x.0, width = d);
    }
    for arc in cube.arcs() {
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}\"];",
            arc.from.0,
            arc.to().0,
            arc.dim
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render a butterfly as DOT with ranked levels, as in Fig. 3a.
pub fn butterfly_dot(bf: Butterfly) -> String {
    let d = bf.dim();
    let mut out = String::new();
    let _ = writeln!(out, "digraph butterfly_{d} {{");
    let _ = writeln!(out, "  // Fig. 3a analogue: the {d}-dimensional butterfly");
    let _ = writeln!(out, "  rankdir=LR; node [shape=circle];");
    for level in 0..=d {
        let _ = writeln!(out, "  subgraph level_{level} {{ rank=same;");
        for row in bf.rows() {
            let _ = writeln!(
                out,
                "    n{}_{} [label=\"[{:0width$b};{}]\"];",
                row.0,
                level,
                row.0,
                level,
                width = d
            );
        }
        let _ = writeln!(out, "  }}");
    }
    for arc in bf.arcs() {
        let style = match arc.kind {
            crate::arcs::ArcKind::Straight => "solid",
            crate::arcs::ArcKind::Vertical => "dashed",
        };
        let _ = writeln!(
            out,
            "  n{}_{} -> n{}_{} [style={style}];",
            arc.row.0,
            arc.level,
            arc.to_row().0,
            arc.level + 1,
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render a levelled queueing network as DOT: servers as boxes ranked by
/// level, routing arcs labelled with probabilities, external-arrival and
/// departure stubs shown as in Figs. 1b/2a/3b.
pub fn levelled_dot(net: &LevelledNetwork, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR; node [shape=box];");
    for lvl in 0..net.num_levels() {
        let _ = writeln!(out, "  subgraph level_{lvl} {{ rank=same;");
        for s in net.servers().filter(|&s| net.level(s) == lvl) {
            let _ = writeln!(out, "    s{} [label=\"{}\"];", s.0, net.label(s));
        }
        let _ = writeln!(out, "  }}");
    }
    for s in net.servers() {
        if net.external_rate(s) > 0.0 {
            let _ = writeln!(
                out,
                "  ext{0} [shape=point]; ext{0} -> s{0} [label=\"{1:.4}\"];",
                s.0,
                net.external_rate(s)
            );
        }
        for &(t, q) in net.routes(s) {
            let _ = writeln!(out, "  s{} -> s{} [label=\"{q:.4}\"];", s.0, t.0);
        }
        let dep = net.departure_prob(s);
        if dep > 1e-12 {
            let _ = writeln!(
                out,
                "  out{0} [shape=point]; s{0} -> out{0} [label=\"{dep:.4}\"];",
                s.0
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levelled::LevelledNetwork;

    #[test]
    fn hypercube_dot_mentions_every_node_and_arc() {
        let cube = Hypercube::new(3);
        let dot = hypercube_dot(cube);
        assert!(dot.starts_with("digraph hypercube_3 {"));
        // 8 node declarations + 24 arc labels.
        assert_eq!(dot.matches("[label=\"").count(), 8 + 24);
        // 24 arcs.
        assert_eq!(dot.matches(" -> ").count(), 24);
        assert!(dot.contains("n0 [label=\"000\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn butterfly_dot_shape() {
        let bf = Butterfly::new(2);
        let dot = butterfly_dot(bf);
        // 12 nodes across 3 ranks, 16 arcs (8 solid + 8 dashed).
        assert_eq!(dot.matches("style=solid").count(), 8);
        assert_eq!(dot.matches("style=dashed").count(), 8);
        assert_eq!(dot.matches("rank=same").count(), 3);
    }

    #[test]
    fn levelled_dot_includes_external_and_departures() {
        let net = LevelledNetwork::fig2_network(0.2, 0.2, 0.1, 0.5, 0.5);
        let dot = levelled_dot(&net, "fig2");
        assert!(dot.contains("digraph fig2"));
        // Three external stubs, two internal routes, three departure stubs.
        assert_eq!(dot.matches("ext").count() / 2, 3);
        assert_eq!(dot.matches("s0 -> s2").count(), 1);
        assert_eq!(dot.matches("s1 -> s2").count(), 1);
        assert_eq!(dot.matches("out").count() / 2, 3);
    }

    #[test]
    fn dot_output_is_deterministic() {
        let cube = Hypercube::new(3);
        assert_eq!(hypercube_dot(cube), hypercube_dot(cube));
        let bf = Butterfly::new(2);
        assert_eq!(butterfly_dot(bf), butterfly_dot(bf));
    }
}
