//! The proof device made visible: replace FIFO by Processor Sharing in the
//! equivalent network and watch departures only get later (Lemmas 7–10,
//! Prop. 11), with the PS network exactly product-form (experiments
//! E08–E10).

use hyperroute::experiments::{e08_fifo_ps_servers, e09_ps_dominance, e10_product_form, Scale};
use hyperroute::prelude::*;

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };

    // A tiny coupled pair, narrated. One scenario per discipline; equal
    // seeds give the paper's coupled sample path.
    println!("Coupled FIFO/PS run of the 3-cube's equivalent network Q:");
    let mk = |discipline| {
        Scenario::builder(Topology::EqNet {
            net: EqNetSpec::HypercubeQ { dim: 3 },
            record_departures: true,
            occupancy_cap: 0,
        })
        .lambda(1.2)
        .p(0.5)
        .discipline(discipline)
        .horizon(2_000.0)
        .warmup(400.0)
        .seed(99)
        .build()
        .expect("valid scenario")
        .run()
        .expect("scenario runs")
    };
    let fifo = mk(Discipline::Fifo);
    let ps = mk(Discipline::Ps);
    println!(
        "  FIFO: mean delay {:.3}, mean in system {:.2}",
        fifo.delay.mean, fifo.mean_in_system
    );
    println!(
        "  PS  : mean delay {:.3}, mean in system {:.2}",
        ps.delay.mean, ps.mean_in_system
    );
    println!(
        "  departures: FIFO {} / PS {} (same coupled sample path)",
        fifo.eqnet().expect("eqnet report").departures.len(),
        ps.eqnet().expect("eqnet report").departures.len()
    );
    println!();

    println!("{}", e08_fifo_ps_servers::run(scale).render());
    println!();
    println!("{}", e09_ps_dominance::run(scale).render());
    println!();
    println!("{}", e10_product_form::run(scale).render());
}
