//! The headline experiment as a declarative [`Sweep`]: delay vs load for
//! several hypercube sizes, printed against the Prop. 12 upper and
//! Prop. 13 lower bounds.
//!
//! The grid is a data structure — two named axes over one base scenario —
//! expanded in deterministic row-major order with a splitmix-derived seed
//! per point, and fanned out over all cores. The full experiment tables
//! remain available via `--tables` (experiments E06/E07).
//!
//! Run with `cargo run --release --example delay_sweep [--tables]`.

use hyperroute::experiments::{e06_delay_upper_bound, e07_greedy_lower_bound, Scale};
use hyperroute::prelude::*;
use hyperroute::routing::scenario::{Axis, SweepParam};

fn main() {
    if std::env::args().any(|a| a == "--tables") {
        println!("{}", e06_delay_upper_bound::run(Scale::Quick).render());
        println!();
        println!("{}", e07_greedy_lower_bound::run(Scale::Quick).render());
        return;
    }

    let p = 0.5;
    let base = Scenario::builder(Topology::Hypercube { dim: 4 })
        .p(p)
        .horizon(3_000.0)
        .warmup(600.0)
        .seed(0xDE1A)
        .build()
        .expect("valid scenario");

    let dims = [4.0, 6.0, 8.0];
    let rhos = [0.3, 0.5, 0.7, 0.85, 0.95];
    let sweep = Sweep::new(
        base,
        vec![
            Axis::new(SweepParam::Dim, dims.to_vec()),
            // λ = ρ/p at p = 0.5.
            Axis::new(SweepParam::Lambda, rhos.iter().map(|r| r / p).collect()),
        ],
    );
    println!(
        "sweeping {} grid points ({} dims × {} loads) over all cores ...\n",
        sweep.len(),
        dims.len(),
        rhos.len()
    );
    let reports = sweep.run(0).expect("sweep runs");

    println!("   d     rho    T_meas        LB        UB   inside");
    for (i, report) in reports.iter().enumerate() {
        let d = dims[i / rhos.len()] as usize;
        let rho = rhos[i % rhos.len()];
        let lambda = rho / p;
        let b = greedy_delay_bounds(d, lambda, p);
        println!(
            "{d:4}  {rho:6.2}  {t:8.3}  {lb:8.3}  {ub:8.3}   {ok}",
            t = report.delay.mean,
            lb = b.lower,
            ub = b.upper,
            ok = if b.contains(report.delay.mean, 0.05) {
                "yes"
            } else {
                "NO"
            },
        );
        assert!(
            b.contains(report.delay.mean, 0.05),
            "d={d} rho={rho}: {} outside [{}, {}]",
            report.delay.mean,
            b.lower,
            b.upper
        );
    }
    println!("\n✓ every grid point sits inside the paper's bracket");
}
