//! The headline experiment: delay vs load for several hypercube sizes,
//! printed against the Prop. 12 upper and Prop. 13 lower bounds
//! (experiments E06/E07).
//!
//! Run with `cargo run --release --example delay_sweep [--full]`.

use hyperroute::experiments::{e06_delay_upper_bound, e07_greedy_lower_bound, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    println!("scale: {scale:?} (pass --full for the EXPERIMENTS.md grids)\n");
    println!("{}", e06_delay_upper_bound::run(scale).render());
    println!();
    println!("{}", e07_greedy_lower_bound::run(scale).render());
}
