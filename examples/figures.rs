//! Emit the paper's structural figures (Figs. 1a, 1b, 2a, 3a, 3b) as
//! Graphviz DOT files under `figures/`, and print the structural
//! verification table.

use hyperroute::experiments::{figures, Scale};
use std::fs;
use std::path::Path;

fn main() -> std::io::Result<()> {
    println!("{}", figures::run(Scale::Quick).render());

    let dir = Path::new("figures");
    fs::create_dir_all(dir)?;
    for (name, dot) in figures::dot_documents() {
        let path = dir.join(name);
        fs::write(&path, &dot)?;
        println!("wrote {} ({} bytes)", path.display(), dot.len());
    }
    println!("\nrender with e.g.: dot -Tpng figures/fig1a_hypercube_3d.dot -o fig1a.png");
    Ok(())
}
