//! Quickstart: describe a greedy-routing run on an 8-cube at 70% load as
//! one [`Scenario`], run it, and check the paper's delay bracket.
//!
//! Run with `cargo run --release --example quickstart`.

use hyperroute::prelude::*;

fn main() {
    let (dim, lambda, p) = (8usize, 1.4f64, 0.5f64);
    let rho = hypercube_load_factor(lambda, p);
    println!("d-dimensional hypercube, d = {dim}");
    println!("per-node Poisson rate λ = {lambda}, bit-flip probability p = {p}");
    println!("load factor ρ = λp = {rho}\n");

    // One typed spec: topology + workload + policy + run control. The
    // builder validates the combination and returns a ConfigError for
    // anything malformed (no panics, no partially-applied settings).
    let scenario = Scenario::builder(Topology::Hypercube { dim })
        .lambda(lambda)
        .p(p)
        .horizon(5_000.0)
        .warmup(1_000.0)
        .seed(2026)
        .build()
        .expect("valid scenario");

    println!(
        "running {} node-units of simulated time ...",
        scenario.run.horizon
    );
    let report = scenario.run().expect("scenario runs");
    let cube = report.hypercube().expect("hypercube extension");

    let bounds = greedy_delay_bounds(dim, lambda, p);
    println!("packets generated : {}", report.generated);
    println!("packets delivered : {}", report.delivered);
    println!(
        "mean hops         : {:.3}  (dp = {})",
        cube.mean_hops,
        dim as f64 * p
    );
    println!();
    println!(
        "Prop. 13 lower bound  T >= dp + pρ/(2(1-ρ)) = {:.3}",
        bounds.lower
    );
    println!(
        "measured delay        T  = {:.3} ± {:.3} (95% CI)",
        report.delay.mean, report.delay.ci95
    );
    println!(
        "Prop. 12 upper bound  T <= dp/(1-ρ)          = {:.3}",
        bounds.upper
    );
    println!();
    println!(
        "delay quantiles: p50 = {:.2}, p90 = {:.2}, p99 = {:.2}",
        report.delay.p50, report.delay.p90, report.delay.p99
    );
    println!(
        "mean packets in network = {:.1} (Little check error {:.2}%)",
        report.mean_in_system,
        report.little_error * 100.0
    );

    assert!(
        bounds.contains(report.delay.mean, 0.05),
        "measured delay escaped the paper's bracket!"
    );
    println!("\n✓ measured delay sits inside the paper's bracket");

    // The same spec is a machine-readable artifact: print it as the JSON
    // scenario-file format (see examples/scenario_file.rs for loading).
    println!("\nthis run as a scenario file:\n{}", scenario.to_json());
}
