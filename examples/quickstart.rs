//! Quickstart: simulate greedy routing on an 8-cube at 70% load and check
//! the paper's delay bracket.
//!
//! Run with `cargo run --release --example quickstart`.

use hyperroute::prelude::*;

fn main() {
    let (dim, lambda, p) = (8usize, 1.4f64, 0.5f64);
    let rho = hypercube_load_factor(lambda, p);
    println!("d-dimensional hypercube, d = {dim}");
    println!("per-node Poisson rate λ = {lambda}, bit-flip probability p = {p}");
    println!("load factor ρ = λp = {rho}\n");

    let cfg = HypercubeSimConfig {
        dim,
        lambda,
        p,
        horizon: 5_000.0,
        warmup: 1_000.0,
        seed: 2026,
        ..Default::default()
    };
    println!("running {} node-units of simulated time ...", cfg.horizon);
    let report = HypercubeSim::new(cfg).run();

    let bounds = greedy_delay_bounds(dim, lambda, p);
    println!("packets generated : {}", report.generated);
    println!("packets delivered : {}", report.delivered);
    println!(
        "mean hops         : {:.3}  (dp = {})",
        report.mean_hops,
        dim as f64 * p
    );
    println!();
    println!(
        "Prop. 13 lower bound  T >= dp + pρ/(2(1-ρ)) = {:.3}",
        bounds.lower
    );
    println!(
        "measured delay        T  = {:.3} ± {:.3} (95% CI)",
        report.delay.mean, report.delay.ci95
    );
    println!(
        "Prop. 12 upper bound  T <= dp/(1-ρ)          = {:.3}",
        bounds.upper
    );
    println!();
    println!(
        "delay quantiles: p50 = {:.2}, p90 = {:.2}, p99 = {:.2}",
        report.delay.p50, report.delay.p90, report.delay.p99
    );
    println!(
        "mean packets in network = {:.1} (Little check error {:.2}%)",
        report.mean_in_system,
        report.little_error * 100.0
    );

    assert!(
        bounds.contains(report.delay.mean, 0.05),
        "measured delay escaped the paper's bracket!"
    );
    println!("\n✓ measured delay sits inside the paper's bracket");
}
