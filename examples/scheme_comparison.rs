//! Why greedy? Compare the paper's scheme against the §2.3 pipelined
//! Valiant–Brebner batches (which collapse as `d` grows) and the §5
//! two-phase "mixing" (which halves the sustainable load), plus the
//! random-dimension-order ablation (experiments E12 and E19).

use hyperroute::experiments::{e12_pipelined_instability, e19_scheme_ablation, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    println!("{}", e12_pipelined_instability::run(scale).render());
    println!();
    println!("{}", e19_scheme_ablation::run(scale).render());
}
