//! Scenario files: load a JSON spec from disk, run it, and archive the
//! unified report — the workflow CI perf grids and batch studies build on.
//!
//! Run with
//! `cargo run --release --example scenario_file [path/to/scenario.json]`
//! (defaults to `examples/scenarios/butterfly_rush.json`).

use hyperroute::prelude::*;

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/examples/scenarios/butterfly_rush.json"
        )
        .to_string()
    });
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read scenario file {path}: {e}"));

    // Parsing validates: a malformed or inconsistent spec is rejected here
    // with a structured message, before anything runs.
    let scenario = Scenario::from_json(&text).expect("scenario file is valid");
    println!(
        "loaded {path}:\n  topology = {:?}\n  λ = {}, p = {}, horizon = {}, seed = {}\n",
        scenario.topology,
        scenario.workload.lambda,
        scenario.workload.p,
        scenario.run.horizon,
        scenario.run.seed
    );

    let report = scenario.run().expect("scenario runs");
    println!(
        "mean delay {:.3} (p50 {:.2}, p99 {:.2}), {} packets delivered",
        report.delay.mean, report.delay.p50, report.delay.p99, report.delivered
    );

    // Reports serialise too — the grid-runner workflow is "scenario file
    // in, report file out", both diff-friendly JSON.
    let out = serde_json::to_string_pretty(&report).expect("reports serialise");
    println!("\nreport as JSON (first lines):");
    for line in out.lines().take(12) {
        println!("  {line}");
    }
    println!("  ...");

    // Round-trip sanity: re-parse the spec and re-run — bit-identical.
    let again = Scenario::from_json(&scenario.to_json())
        .expect("round-trip parses")
        .run()
        .expect("round-trip runs");
    assert_eq!(report, again, "round-tripped scenario diverged!");
    println!("\n✓ JSON round-trip reproduces the report bit-for-bit");
}
