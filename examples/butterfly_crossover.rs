//! Butterfly bottleneck crossover: sweep the destination skew `p` at fixed
//! arrival rate and watch the stability window open around `p = 1/2`
//! (Prop. 16 / experiment E17), then check the delay bracket inside the
//! window (Props. 14/17).

use hyperroute::experiments::{
    e15_butterfly_lower_bound, e17_butterfly_stability, e18_butterfly_upper_bound, Scale,
};

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    println!("{}", e17_butterfly_stability::run(scale).render());
    println!();
    println!("{}", e15_butterfly_lower_bound::run(scale).render());
    println!();
    println!("{}", e18_butterfly_upper_bound::run(scale).render());
}
