//! A sharded sweep campaign through `hyperroute-grid`: the paper's delay
//! grid cut into slices, executed on subprocess workers, checkpointed to
//! a manifest directory, and merged back byte-identical to the
//! in-process `Sweep::run`.
//!
//! What this demonstrates, end to end:
//!
//! 1. **Slicing** — the sweep is partitioned into self-contained
//!    [`hyperroute_grid::GridSlice`] jobs (each carries the full spec, so
//!    it can cross a process/machine boundary as one JSON line).
//! 2. **Backends** — the same campaign runs on the in-process thread
//!    pool and on `hyperroute-grid worker` subprocesses speaking the
//!    NDJSON protocol; both merge to identical reports.
//! 3. **Checkpoint/resume** — every finished slice lands in the manifest
//!    directory; rerun the example and it resumes (here: recomputes
//!    nothing and still produces the same bytes).
//!
//! Run with `cargo run --release --example grid_campaign`.

use hyperroute::prelude::*;
use hyperroute::routing::scenario::{Axis, SweepParam};
use hyperroute_grid::{partition, Campaign, SubprocessBackend, ThreadPoolBackend};

fn main() {
    let p = 0.5;
    let base = Scenario::builder(Topology::Hypercube { dim: 6 })
        .p(p)
        .horizon(1_000.0)
        .warmup(200.0)
        .seed(0x6121D)
        .build()
        .expect("valid scenario");
    let sweep = Sweep::new(
        base,
        vec![
            Axis::new(SweepParam::Dim, vec![4.0, 6.0]),
            Axis::new(SweepParam::Lambda, vec![0.6, 1.0, 1.4, 1.7]),
        ],
    );

    let slice_len = 2;
    println!(
        "campaign: {} grid points in {} slices of ≤{slice_len}\n",
        sweep.len(),
        partition(&sweep, slice_len).len(),
    );

    // Reference: the plain in-process sweep.
    let direct = sweep.run(0).expect("sweep runs");

    // Same grid through the thread-pool backend.
    let threads = Campaign::new(sweep.clone(), slice_len)
        .run(&ThreadPoolBackend::new(0))
        .expect("thread-pool campaign runs");
    assert_eq!(threads, direct);
    println!(
        "thread-pool backend: {} reports, identical to Sweep::run",
        threads.len()
    );

    // Same grid again on subprocess workers (this very binary has no
    // `worker` mode, so spawn the real `hyperroute-grid` CLI if it is
    // built; otherwise skip gracefully).
    let grid_bin =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/release/hyperroute-grid");
    if grid_bin.exists() {
        let ckpt = std::env::temp_dir().join(format!("grid-campaign-{}", std::process::id()));
        let backend =
            SubprocessBackend::new(vec![grid_bin.display().to_string(), "worker".into()], 4);
        let campaign = Campaign::new(sweep.clone(), slice_len).with_checkpoint(&ckpt);
        let subprocess = campaign.run(&backend).expect("subprocess campaign runs");
        assert_eq!(subprocess, direct);
        println!(
            "subprocess backend:  {} reports, identical to Sweep::run",
            subprocess.len()
        );

        // Resume: everything is checkpointed, so this recomputes nothing.
        let resumed = campaign.run(&backend).expect("resume runs");
        assert_eq!(resumed, direct);
        println!(
            "resume from {}: all slices loaded from checkpoints",
            ckpt.display()
        );
        let _ = std::fs::remove_dir_all(&ckpt);
    } else {
        println!(
            "subprocess backend:  skipped (build the CLI first: cargo build --release -p hyperroute-grid)"
        );
    }

    println!("\n   d    λ      ρ    T_meas");
    for (i, report) in direct.iter().enumerate() {
        let dims = [4usize, 6];
        let lambdas = [0.6, 1.0, 1.4, 1.7];
        let d = dims[i / lambdas.len()];
        let lambda = lambdas[i % lambdas.len()];
        println!(
            "{d:4} {lambda:5.2} {rho:6.2}  {t:8.3}",
            rho = lambda * p,
            t = report.delay.mean,
        );
    }
    println!("\n✓ sharded execution is byte-identical to the in-process sweep");
}
