//! Capacity planning with the paper's guarantees: size a hypercube for a
//! processor count, read off how much traffic it sustains at a target
//! delay, and verify the plan by simulation.

use hyperroute::analysis::capacity;
use hyperroute::prelude::*;

fn main() {
    let processors = 200u64;
    let p = 0.5;
    let target_delay = 12.0;

    let d = capacity::dimension_for_nodes(processors);
    println!("{processors} processors → d = {d} ({} nodes)", 1u64 << d);

    let rho = capacity::hypercube_max_load_for_delay(d, p, target_delay)
        .expect("target above the bare path length");
    let lambda = capacity::hypercube_max_lambda_for_delay(d, p, target_delay).unwrap();
    println!(
        "guaranteed mean delay ≤ {target_delay}: sustain ρ ≤ {rho:.4} (λ ≤ {lambda:.4}/node, {:.1} pkts/unit total)",
        lambda * (1u64 << d) as f64
    );

    println!("\nthroughput–delay frontier (guaranteed):");
    for (thru, delay) in capacity::hypercube_frontier(d, p, &[0.2, 0.4, 0.6, 0.8, 0.9]) {
        println!("  {thru:8.1} pkts/unit  →  T ≤ {delay:6.2}");
    }

    // Verify the plan at 95% of the planned rate.
    let lam_run = lambda * 0.95;
    println!("\nverifying by simulation at 95% of planned λ ({lam_run:.4}) ...");
    let report = Scenario::builder(Topology::Hypercube { dim: d })
        .lambda(lam_run)
        .p(p)
        .horizon(4_000.0)
        .warmup(800.0)
        .seed(7)
        .build()
        .expect("valid scenario")
        .run()
        .expect("scenario runs");
    println!(
        "measured T = {:.2} (target {target_delay}) — the guarantee is conservative, as promised",
        report.delay.mean
    );
    assert!(report.delay.mean <= target_delay);

    // Butterfly variant.
    let bf_lambda = capacity::butterfly_max_lambda_for_delay(d, p, 2.5 * d as f64).unwrap();
    println!(
        "\nbutterfly of the same dimension: λ ≤ {bf_lambda:.4}/row guarantees T ≤ {:.1}",
        2.5 * d as f64
    );
}
