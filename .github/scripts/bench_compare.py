#!/usr/bin/env python3
"""Compare a freshly-generated BENCH_engine.json against the checked-in one.

Usage: bench_compare.py <baseline.json> <fresh.json>

CI machines are slower and noisier than the dev boxes that generate the
checked-in report, so raw events/sec cells are not comparable across
machines. The trick: every report carries in-process `seed` cells (the
frozen pre-PR engine) measured on the *same* machine and run as the
shipped cells, so the median seed-cell ratio fresh/baseline estimates the
machine-speed factor. Each shipped cell's throughput ratio is divided by
that factor before gating:

  * normalised ratio < 1 - THRESHOLD  -> regression, job FAILS
  * raw ratio < 1 - THRESHOLD only    -> warning (machine speed, not code)
  * cells missing on either side      -> warning (grid drift)

Exit status: 0 clean/warnings, 1 regression or unusable input.
"""

import json
import statistics
import sys

THRESHOLD = 0.25  # fail on >25% normalised regression


def cells_by_key(report):
    # `workers` arrived with schema v6; default 1 keeps older reports
    # comparable.
    return {
        (c["sim"], c["dim"], c["rho"], c["engine"], c.get("workers", 1)):
            c["events_per_sec"]
        for c in report["results"]
    }


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 1
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)

    base = cells_by_key(baseline)
    new = cells_by_key(fresh)

    seed_ratios = [
        new[k] / base[k]
        for k in base
        if k[3] == "seed" and k in new and base[k] > 0
    ]
    if not seed_ratios:
        print("bench-compare: no common seed cells; cannot normalise machine speed")
        return 1
    machine = statistics.median(seed_ratios)
    print(f"bench-compare: machine-speed factor (median of {len(seed_ratios)} "
          f"seed cells) = {machine:.3f}")

    regressions, warnings = [], []
    shipped = sorted(k for k in base if k[3] != "seed")
    for key in shipped:
        if key not in new:
            warnings.append(f"cell {key} missing from fresh report")
            continue
        raw = new[key] / base[key]
        norm = raw / machine
        marker = "ok"
        if norm < 1.0 - THRESHOLD:
            if key[4] > 1:
                # Sharded cells scale with the host's core count, which
                # the seed-cell normalisation cannot cancel (seed is
                # single-threaded); a CI runner with a different core
                # count than the report box shifts these cells without
                # any code change. Warn, never fail.
                marker = "warn(cores)"
                warnings.append(
                    f"{key}: sharded cell normalised ratio {norm:.3f} "
                    f"(core-count dependent, not gated)"
                )
            else:
                marker = "REGRESSION"
                regressions.append(
                    f"{key}: normalised throughput ratio {norm:.3f} "
                    f"(raw {raw:.3f}, machine {machine:.3f})"
                )
        elif raw < 1.0 - THRESHOLD:
            marker = "warn(raw)"
            warnings.append(
                f"{key}: raw ratio {raw:.3f} low but normalised {norm:.3f} fine "
                f"(slow machine)"
            )
        sim, dim, rho, engine, workers = key
        print(f"  {sim:10s} dim={dim:<5} rho={rho:<5} {engine:9s} w={workers} "
              f"raw={raw:6.3f} norm={norm:6.3f}  {marker}")
    for key in sorted(new):
        if key[3] != "seed" and key not in base:
            warnings.append(f"cell {key} missing from checked-in report "
                            f"(regenerate BENCH_engine.json)")

    for w in warnings:
        print(f"bench-compare: WARNING: {w}")
    if regressions:
        print(f"bench-compare: FAILED — {len(regressions)} cell(s) regressed "
              f"by more than {THRESHOLD:.0%} after machine normalisation:")
        for r in regressions:
            print(f"  {r}")
        return 1
    print(f"bench-compare: {len(shipped)} shipped cells within "
          f"{THRESHOLD:.0%} of the checked-in report")
    return 0


if __name__ == "__main__":
    sys.exit(main())
