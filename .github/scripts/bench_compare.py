#!/usr/bin/env python3
"""Compare a freshly-generated BENCH_engine.json against the checked-in one.

Usage: bench_compare.py [--threshold F] <baseline.json> <fresh.json>

CI machines are slower and noisier than the dev boxes that generate the
checked-in report, so raw events/sec cells are not comparable across
machines. The trick: every report carries in-process `seed` cells (the
frozen pre-PR engine) measured on the *same* machine and run as the
shipped cells, so the median seed-cell ratio fresh/baseline estimates the
machine-speed factor. Each shipped cell's throughput ratio is divided by
that factor before gating:

  * normalised ratio < 1 - threshold  -> regression, job FAILS
  * raw ratio < 1 - threshold only    -> warning (machine speed, not code)
  * cell missing from fresh report    -> the grid shrank, job FAILS
  * cell only in fresh report         -> warning (regenerate baseline)

`--threshold` defaults to 0.25 for the noisy reduced (HYPERROUTE_SCALE=ci)
grid; the full-scale pipeline tightens it to 0.05. When the
GITHUB_STEP_SUMMARY environment variable points at a writable file, a
markdown table of every gated cell is appended to it.

Exit status: 0 clean/warnings, 1 regression, missing cell, or unusable
input.
"""

import json
import os
import statistics
import sys


def cells_by_key(report):
    # `workers` arrived with schema v6; default 1 keeps older reports
    # comparable.
    return {
        (c["sim"], c["dim"], c["rho"], c["engine"], c.get("workers", 1)):
            c["events_per_sec"]
        for c in report["results"]
    }


def machine_factor(base, new):
    """Median fresh/baseline ratio over the common single-threaded seed
    cells, or None when the reports share no usable seed cell."""
    seed_ratios = [
        new[k] / base[k]
        for k in base
        if k[3] == "seed" and k in new and base[k] > 0
    ]
    if not seed_ratios:
        return None
    return statistics.median(seed_ratios)


def compare(baseline, fresh, threshold):
    """Gate every shipped cell of `fresh` against `baseline`.

    Returns (rows, regressions, warnings, machine). `rows` is one
    (key, raw, norm, marker) tuple per shipped baseline cell, in key
    order, with raw/norm None for cells the fresh report dropped;
    `regressions` non-empty means the gate fails.
    """
    base = cells_by_key(baseline)
    new = cells_by_key(fresh)
    machine = machine_factor(base, new)
    if machine is None:
        return [], ["no common seed cells; cannot normalise machine speed"], \
            [], None

    rows, regressions, warnings = [], [], []
    for key in sorted(k for k in base if k[3] != "seed"):
        if key not in new:
            rows.append((key, None, None, "MISSING"))
            regressions.append(
                f"cell {key} missing from fresh report (the bench grid "
                f"shrank; fix the grid or regenerate the baseline)"
            )
            continue
        raw = new[key] / base[key]
        norm = raw / machine
        marker = "ok"
        if norm < 1.0 - threshold:
            if key[4] > 1:
                # Sharded cells scale with the host's core count, which
                # the seed-cell normalisation cannot cancel (seed is
                # single-threaded); a CI runner with a different core
                # count than the report box shifts these cells without
                # any code change. Warn, never fail.
                marker = "warn(cores)"
                warnings.append(
                    f"{key}: sharded cell normalised ratio {norm:.3f} "
                    f"(core-count dependent, not gated)"
                )
            else:
                marker = "REGRESSION"
                regressions.append(
                    f"{key}: normalised throughput ratio {norm:.3f} "
                    f"(raw {raw:.3f}, machine {machine:.3f})"
                )
        elif raw < 1.0 - threshold:
            marker = "warn(raw)"
            warnings.append(
                f"{key}: raw ratio {raw:.3f} low but normalised {norm:.3f} "
                f"fine (slow machine)"
            )
        rows.append((key, raw, norm, marker))
    for key in sorted(new):
        if key[3] != "seed" and key not in base:
            warnings.append(f"cell {key} missing from checked-in report "
                            f"(regenerate BENCH_engine.json)")
    return rows, regressions, warnings, machine


def render_markdown(rows, threshold, machine):
    """The gated cells as a GitHub-flavoured markdown table."""
    lines = [
        f"### Bench throughput gate (threshold {threshold:.0%}, "
        f"machine factor {machine:.3f})",
        "",
        "| sim | dim | rho | engine | workers | raw | normalised | verdict |",
        "| --- | --- | --- | --- | --- | --- | --- | --- |",
    ]
    for (sim, dim, rho, engine, workers), raw, norm, marker in rows:
        raw_s = "—" if raw is None else f"{raw:.3f}"
        norm_s = "—" if norm is None else f"{norm:.3f}"
        lines.append(f"| {sim} | {dim} | {rho} | {engine} | {workers} "
                     f"| {raw_s} | {norm_s} | {marker} |")
    return "\n".join(lines) + "\n"


def write_step_summary(markdown):
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with open(path, "a") as f:
        f.write(markdown)


def main(argv) -> int:
    args = list(argv)
    threshold = 0.25
    if "--threshold" in args:
        i = args.index("--threshold")
        try:
            threshold = float(args[i + 1])
        except (IndexError, ValueError):
            print("bench-compare: --threshold needs a number", file=sys.stderr)
            return 1
        del args[i:i + 2]
    if len(args) != 2 or not 0.0 < threshold < 1.0:
        print(__doc__, file=sys.stderr)
        return 1
    with open(args[0]) as f:
        baseline = json.load(f)
    with open(args[1]) as f:
        fresh = json.load(f)

    rows, regressions, warnings, machine = compare(baseline, fresh, threshold)
    if machine is None:
        print(f"bench-compare: {regressions[0]}")
        return 1
    print(f"bench-compare: machine-speed factor = {machine:.3f}, "
          f"threshold {threshold:.0%}")
    for (sim, dim, rho, engine, workers), raw, norm, marker in rows:
        raw_s = "   na " if raw is None else f"{raw:6.3f}"
        norm_s = "   na " if norm is None else f"{norm:6.3f}"
        print(f"  {sim:10s} dim={dim:<5} rho={rho:<5} {engine:9s} "
              f"w={workers} raw={raw_s} norm={norm_s}  {marker}")
    write_step_summary(render_markdown(rows, threshold, machine))

    for w in warnings:
        print(f"bench-compare: WARNING: {w}")
    if regressions:
        print(f"bench-compare: FAILED — {len(regressions)} problem(s) at "
              f"threshold {threshold:.0%}:")
        for r in regressions:
            print(f"  {r}")
        return 1
    print(f"bench-compare: {len(rows)} shipped cells within "
          f"{threshold:.0%} of the checked-in report")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
