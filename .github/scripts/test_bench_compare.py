"""Unit tests for bench_compare.py (pytest- and unittest-compatible).

Run with `python3 -m pytest .github/scripts/test_bench_compare.py -q`
or, where pytest is not installed,
`python3 -m unittest discover -s .github/scripts -p 'test_*.py'`.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_compare  # noqa: E402


def report(cells):
    """A minimal report: cells = [(sim, dim, rho, engine, workers, eps)]."""
    return {
        "results": [
            {"sim": s, "dim": d, "rho": r, "engine": e, "workers": w,
             "events_per_sec": eps}
            for (s, d, r, e, w, eps) in cells
        ]
    }


BASELINE = report([
    ("hypercube", 10, 0.5, "seed", 1, 100.0),
    ("torus", 8, 0.5, "seed", 1, 100.0),
    ("hypercube", 10, 0.5, "event", 1, 200.0),
    ("torus", 8, 0.5, "event", 1, 300.0),
    ("hypercube", 12, 0.5, "event", 8, 900.0),
])


def fresh(scale_seed, scale_shipped, drop=()):
    cells = []
    for c in BASELINE["results"]:
        key = (c["sim"], c["dim"], c["rho"], c["engine"], c["workers"])
        if key in drop:
            continue
        scale = scale_seed if c["engine"] == "seed" else scale_shipped
        cells.append((*key, c["events_per_sec"] * scale))
    return report(cells)


class MachineFactor(unittest.TestCase):
    def test_median_of_seed_cells(self):
        base = bench_compare.cells_by_key(BASELINE)
        new = bench_compare.cells_by_key(fresh(0.5, 1.0))
        self.assertAlmostEqual(bench_compare.machine_factor(base, new), 0.5)

    def test_no_seed_overlap_is_unusable(self):
        base = bench_compare.cells_by_key(BASELINE)
        rows, regressions, _, machine = bench_compare.compare(
            BASELINE, report([("ring", 4, 0.5, "event", 1, 1.0)]), 0.25)
        self.assertIsNone(machine)
        self.assertEqual(rows, [])
        self.assertTrue(regressions)
        self.assertIn("seed", regressions[0])
        del base


class Gate(unittest.TestCase):
    def test_machine_slowdown_alone_passes(self):
        # Everything (seed and shipped) at half speed: a slow runner,
        # not a code regression.
        rows, regressions, warnings, machine = bench_compare.compare(
            BASELINE, fresh(0.5, 0.5), 0.25)
        self.assertAlmostEqual(machine, 0.5)
        self.assertEqual(regressions, [])
        # Raw ratios look bad (0.5) but every cell normalises clean.
        self.assertEqual({m for (_, _, _, m) in rows}, {"warn(raw)"})
        self.assertTrue(all("slow machine" in w for w in warnings))

    def test_real_regression_fails(self):
        # Seed cells steady, shipped cells down 40%: a code regression.
        rows, regressions, _, _ = bench_compare.compare(
            BASELINE, fresh(1.0, 0.6), 0.25)
        markers = {key: m for (key, _, _, m) in rows}
        self.assertEqual(
            markers[("hypercube", 10, 0.5, "event", 1)], "REGRESSION")
        self.assertEqual(len(regressions), 2)

    def test_threshold_is_respected(self):
        # A 10% normalised drop passes at 25% but fails at 5%.
        _, loose, _, _ = bench_compare.compare(BASELINE, fresh(1.0, 0.9), 0.25)
        _, tight, _, _ = bench_compare.compare(BASELINE, fresh(1.0, 0.9), 0.05)
        self.assertEqual(loose, [])
        self.assertEqual(len(tight), 2)

    def test_sharded_cells_warn_but_never_fail(self):
        drop_to = fresh(1.0, 1.0)
        for c in drop_to["results"]:
            if c["workers"] > 1:
                c["events_per_sec"] *= 0.3
        rows, regressions, warnings, _ = bench_compare.compare(
            BASELINE, drop_to, 0.25)
        markers = {key: m for (key, _, _, m) in rows}
        self.assertEqual(
            markers[("hypercube", 12, 0.5, "event", 8)], "warn(cores)")
        self.assertEqual(regressions, [])
        self.assertTrue(any("core-count" in w for w in warnings))

    def test_missing_fresh_cell_hard_fails(self):
        gone = ("torus", 8, 0.5, "event", 1)
        rows, regressions, _, _ = bench_compare.compare(
            BASELINE, fresh(1.0, 1.0, drop={gone}), 0.25)
        markers = {key: m for (key, _, _, m) in rows}
        self.assertEqual(markers[gone], "MISSING")
        self.assertEqual(len(regressions), 1)
        self.assertIn("missing from fresh report", regressions[0])

    def test_extra_fresh_cell_only_warns(self):
        extra = fresh(1.0, 1.0)
        extra["results"].append(
            {"sim": "ring", "dim": 6, "rho": 0.5, "engine": "event",
             "workers": 1, "events_per_sec": 50.0})
        _, regressions, warnings, _ = bench_compare.compare(
            BASELINE, extra, 0.25)
        self.assertEqual(regressions, [])
        self.assertTrue(any("checked-in report" in w for w in warnings))


class Output(unittest.TestCase):
    def test_markdown_table_lists_every_row(self):
        rows, _, _, machine = bench_compare.compare(
            BASELINE, fresh(1.0, 1.0), 0.05)
        md = bench_compare.render_markdown(rows, 0.05, machine)
        self.assertIn("| sim | dim | rho | engine | workers |", md)
        self.assertEqual(md.count("| hypercube |"), 2)
        self.assertIn("threshold 5%", md)

    def test_step_summary_written_when_env_set(self):
        with tempfile.TemporaryDirectory() as d:
            summary = os.path.join(d, "summary.md")
            base_p = os.path.join(d, "base.json")
            fresh_p = os.path.join(d, "fresh.json")
            with open(base_p, "w") as f:
                json.dump(BASELINE, f)
            with open(fresh_p, "w") as f:
                json.dump(fresh(1.0, 1.0), f)
            old = os.environ.get("GITHUB_STEP_SUMMARY")
            os.environ["GITHUB_STEP_SUMMARY"] = summary
            try:
                code = bench_compare.main(
                    ["--threshold", "0.05", base_p, fresh_p])
            finally:
                if old is None:
                    del os.environ["GITHUB_STEP_SUMMARY"]
                else:
                    os.environ["GITHUB_STEP_SUMMARY"] = old
            self.assertEqual(code, 0)
            with open(summary) as f:
                self.assertIn("Bench throughput gate", f.read())

    def test_main_exit_codes(self):
        with tempfile.TemporaryDirectory() as d:
            base_p = os.path.join(d, "base.json")
            ok_p = os.path.join(d, "ok.json")
            bad_p = os.path.join(d, "bad.json")
            with open(base_p, "w") as f:
                json.dump(BASELINE, f)
            with open(ok_p, "w") as f:
                json.dump(fresh(1.0, 1.0), f)
            with open(bad_p, "w") as f:
                json.dump(fresh(1.0, 0.5), f)
            self.assertEqual(bench_compare.main([base_p, ok_p]), 0)
            self.assertEqual(bench_compare.main([bad_p]), 1)  # bad usage
            self.assertEqual(bench_compare.main([base_p, bad_p]), 1)


if __name__ == "__main__":
    unittest.main()
