//! Cross-crate integration tests: the packet-level simulators, the
//! abstract equivalent networks, and the closed-form bounds must all agree
//! with each other — every system expressed as one `Scenario`.

use hyperroute::prelude::*;
use hyperroute::routing::stability::{probe_butterfly, probe_hypercube, probe_ring};

fn hypercube(dim: usize) -> Scenario {
    Scenario::builder(Topology::Hypercube { dim })
        .build()
        .expect("valid scenario")
}

/// §3.1: the hypercube under greedy routing IS the network Q. The
/// packet-level simulator and the abstract FIFO network simulator are
/// independent implementations; their stationary delays must coincide
/// (after conditioning on packets that actually move — Q has no zero-hop
/// customers).
#[test]
fn packet_sim_equals_equivalent_network_q() {
    let (d, lambda, p) = (4usize, 1.2f64, 0.5f64);
    let horizon = 4_000.0;

    let packet = Scenario::builder(Topology::Hypercube { dim: d })
        .lambda(lambda)
        .p(p)
        .horizon(horizon)
        .warmup(horizon * 0.2)
        .seed(101)
        .build()
        .expect("valid scenario")
        .run()
        .expect("scenario runs");

    let eq = Scenario::builder(Topology::EqNet {
        net: EqNetSpec::HypercubeQ { dim: d },
        record_departures: false,
        occupancy_cap: 0,
    })
    .lambda(lambda)
    .p(p)
    .horizon(horizon)
    .warmup(horizon * 0.2)
    .seed(202) // independent seed: distributional, not pathwise, equality
    .build()
    .expect("valid scenario")
    .run()
    .expect("scenario runs");

    // Packet-sim delay averages over ALL packets incl. zero-hop ones
    // (fraction (1-p)^d with delay 0); Q only sees moving packets.
    let moving = 1.0 - (1.0 - p).powi(d as i32);
    let packet_conditional = packet.delay.mean / moving;
    let rel = (packet_conditional - eq.delay.mean).abs() / eq.delay.mean;
    assert!(
        rel < 0.05,
        "packet sim {packet_conditional} vs equivalent network {} (rel {rel})",
        eq.delay.mean
    );
}

/// The three layers of Prop. 12's proof, measured:
/// packet-level T ≤ PS-network T̄ (Prop. 11) ≤ closed form dp/(1-ρ).
#[test]
fn three_layer_upper_bound_chain() {
    let (d, lambda, p) = (4usize, 1.4f64, 0.5f64); // ρ = 0.7
    let horizon = 6_000.0;

    let packet = Scenario::builder(Topology::Hypercube { dim: d })
        .lambda(lambda)
        .p(p)
        .horizon(horizon)
        .warmup(horizon * 0.2)
        .seed(11)
        .build()
        .expect("valid scenario")
        .run()
        .expect("scenario runs");

    let ps = Scenario::builder(Topology::EqNet {
        net: EqNetSpec::HypercubeQ { dim: d },
        record_departures: false,
        occupancy_cap: 0,
    })
    .lambda(lambda)
    .p(p)
    .discipline(Discipline::Ps)
    .horizon(horizon)
    .warmup(horizon * 0.2)
    .seed(12)
    .build()
    .expect("valid scenario")
    .run()
    .expect("scenario runs");

    let moving = 1.0 - (1.0 - p).powi(d as i32);
    let t_packet_cond = packet.delay.mean / moving;
    let closed_form = greedy_upper_bound(d, lambda, p) / moving;
    assert!(
        t_packet_cond <= ps.delay.mean * 1.05,
        "packet {t_packet_cond} above PS network {}",
        ps.delay.mean
    );
    assert!(
        ps.delay.mean <= closed_form * 1.05,
        "PS network {} above closed form {closed_form}",
        ps.delay.mean
    );
}

/// Hypercube and butterfly brackets hold at a matrix of parameter points —
/// expressed as one deterministic `Sweep` per topology.
#[test]
fn delay_brackets_hold_meshwide() {
    let p = 0.5;
    for &(d, rho) in &[(3usize, 0.4f64), (4, 0.7), (5, 0.85)] {
        let lambda = rho / p;
        let horizon = 4_000.0;
        let r = Scenario::builder(Topology::Hypercube { dim: d })
            .lambda(lambda)
            .p(p)
            .horizon(horizon)
            .warmup(horizon * 0.2)
            .seed(31 + d as u64)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs");
        let b = greedy_delay_bounds(d, lambda, p);
        assert!(
            b.contains(r.delay.mean, 0.05),
            "hypercube d={d} ρ={rho}: {} outside [{}, {}]",
            r.delay.mean,
            b.lower,
            b.upper
        );
    }

    for &(d, lambda, p) in &[(3usize, 1.0f64, 0.5f64), (4, 1.4, 0.3)] {
        let horizon = 4_000.0;
        let r = Scenario::builder(Topology::Butterfly { dim: d })
            .lambda(lambda)
            .p(p)
            .horizon(horizon)
            .warmup(horizon * 0.2)
            .seed(41 + d as u64)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs");
        let lb = butterfly_bounds::universal_lower_bound(d, lambda, p);
        let ub = butterfly_bounds::greedy_upper_bound(d, lambda, p);
        assert!(
            r.delay.mean >= lb * 0.95 && r.delay.mean <= ub * 1.05,
            "butterfly d={d}: {} outside [{lb}, {ub}]",
            r.delay.mean
        );
    }
}

/// Stability frontiers: both networks flip from stable to unstable exactly
/// where their load factors cross 1.
#[test]
fn stability_frontiers() {
    // Hypercube: ρ = λp.
    assert!(probe_hypercube(4, 1.7, 0.5, Scheme::Greedy, 3_000.0, 51).stable);
    assert!(!probe_hypercube(4, 2.4, 0.5, Scheme::Greedy, 3_000.0, 52).stable);
    // Butterfly: ρ_bf = λ·max{p, 1-p}; skew p breaks it sooner.
    assert!(probe_butterfly(4, 1.2, 0.5, 3_000.0, 53).stable);
    assert!(!probe_butterfly(4, 1.2, 0.1, 3_000.0, 54).stable); // ρ_bf=1.08
                                                                // Ring (clockwise-only n=9): ρ_ring = λ(n-1)/2 crosses 1 at λ = 0.25.
    assert!(probe_ring(9, false, 0.2, 3_000.0, 55).stable); // ρ = 0.8
    assert!(!probe_ring(9, false, 0.32, 3_000.0, 56).stable); // ρ = 1.28
}

/// Slotted arrivals obey the §3.4 bound and approach the continuous delay
/// as slots shrink.
#[test]
fn slotted_time_consistency() {
    let (d, lambda, p) = (4usize, 1.2f64, 0.5f64);
    let horizon = 4_000.0;
    let run = |arrivals| {
        Scenario::builder(Topology::Hypercube { dim: d })
            .lambda(lambda)
            .p(p)
            .arrivals(arrivals)
            .horizon(horizon)
            .warmup(horizon * 0.2)
            .seed(61)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs")
            .delay
            .mean
    };
    let continuous = run(ArrivalModel::Poisson);
    let coarse = run(ArrivalModel::Slotted { slots_per_unit: 1 });
    let fine = run(ArrivalModel::Slotted { slots_per_unit: 8 });
    let bound = hyperroute::analysis::hypercube_bounds::slotted_upper_bound(d, lambda, p, 1.0);
    assert!(
        coarse <= bound * 1.03,
        "coarse slotted {coarse} above {bound}"
    );
    // Finer slots converge towards the continuous model.
    assert!(
        (fine - continuous).abs() < (coarse - continuous).abs() + 0.15,
        "fine {fine} not closer to continuous {continuous} than coarse {coarse}"
    );
}

/// A `Sweep` over the default hypercube scenario reproduces what running
/// each expanded scenario by hand produces, in grid order.
#[test]
fn sweep_matches_pointwise_runs() {
    use hyperroute::routing::scenario::{Axis, SweepParam};
    let mut base = hypercube(4);
    base.run.horizon = 400.0;
    base.run.warmup = 80.0;
    let sweep = Sweep::new(
        base,
        vec![Axis::new(SweepParam::Lambda, vec![0.8, 1.2, 1.6])],
    );
    let grid = sweep.run(0).expect("sweep runs");
    let pointwise: Vec<Report> = sweep
        .scenarios()
        .expect("expands")
        .iter()
        .map(|s| s.run().expect("runs"))
        .collect();
    assert_eq!(grid, pointwise);
}

/// The experiment harness end-to-end: every registered experiment renders
/// a non-empty table at Quick scale. (This is the bench harness's code
/// path, exercised in CI.)
#[test]
#[ignore = "slow: runs all 20 experiment harnesses; use --ignored to include"]
fn all_experiments_render() {
    for (name, f) in hyperroute::experiments::all_experiments() {
        let t = f(Scale::Quick);
        assert!(!t.rows.is_empty(), "{name} produced an empty table");
        assert!(t.render().contains("=="));
    }
}
