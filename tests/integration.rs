//! Cross-crate integration tests: the packet-level simulators, the
//! abstract equivalent networks, and the closed-form bounds must all agree
//! with each other.

use hyperroute::prelude::*;
use hyperroute::routing::stability::{probe_butterfly, probe_hypercube};

/// §3.1: the hypercube under greedy routing IS the network Q. The
/// packet-level simulator and the abstract FIFO network simulator are
/// independent implementations; their stationary delays must coincide
/// (after conditioning on packets that actually move — Q has no zero-hop
/// customers).
#[test]
fn packet_sim_equals_equivalent_network_q() {
    let (d, lambda, p) = (4usize, 1.2f64, 0.5f64);
    let horizon = 4_000.0;

    let packet = HypercubeSim::new(HypercubeSimConfig {
        dim: d,
        lambda,
        p,
        horizon,
        warmup: horizon * 0.2,
        seed: 101,
        ..Default::default()
    })
    .run();

    let net = LevelledNetwork::equivalent_q(Hypercube::new(d), lambda, p);
    let eq = EqNetSim::new(
        &net,
        EqNetConfig {
            discipline: Discipline::Fifo,
            horizon,
            warmup: horizon * 0.2,
            seed: 202, // independent seed: distributional, not pathwise, equality
            ..Default::default()
        },
    )
    .run();

    // Packet-sim delay averages over ALL packets incl. zero-hop ones
    // (fraction (1-p)^d with delay 0); Q only sees moving packets.
    let moving = 1.0 - (1.0 - p).powi(d as i32);
    let packet_conditional = packet.delay.mean / moving;
    let rel = (packet_conditional - eq.delay.mean).abs() / eq.delay.mean;
    assert!(
        rel < 0.05,
        "packet sim {packet_conditional} vs equivalent network {} (rel {rel})",
        eq.delay.mean
    );
}

/// The three layers of Prop. 12's proof, measured:
/// packet-level T ≤ PS-network T̄ (Prop. 11) ≤ closed form dp/(1-ρ).
#[test]
fn three_layer_upper_bound_chain() {
    let (d, lambda, p) = (4usize, 1.4f64, 0.5f64); // ρ = 0.7
    let horizon = 6_000.0;

    let packet = HypercubeSim::new(HypercubeSimConfig {
        dim: d,
        lambda,
        p,
        horizon,
        warmup: horizon * 0.2,
        seed: 11,
        ..Default::default()
    })
    .run();

    let net = LevelledNetwork::equivalent_q(Hypercube::new(d), lambda, p);
    let ps = EqNetSim::new(
        &net,
        EqNetConfig {
            discipline: Discipline::Ps,
            horizon,
            warmup: horizon * 0.2,
            seed: 12,
            ..Default::default()
        },
    )
    .run();

    let moving = 1.0 - (1.0 - p).powi(d as i32);
    let t_packet_cond = packet.delay.mean / moving;
    let closed_form = greedy_upper_bound(d, lambda, p) / moving;
    assert!(
        t_packet_cond <= ps.delay.mean * 1.05,
        "packet {t_packet_cond} above PS network {}",
        ps.delay.mean
    );
    assert!(
        ps.delay.mean <= closed_form * 1.05,
        "PS network {} above closed form {closed_form}",
        ps.delay.mean
    );
}

/// Hypercube and butterfly brackets hold at a matrix of parameter points.
#[test]
fn delay_brackets_hold_meshwide() {
    for &(d, rho) in &[(3usize, 0.4f64), (4, 0.7), (5, 0.85)] {
        let p = 0.5;
        let lambda = rho / p;
        let horizon = 4_000.0;
        let r = HypercubeSim::new(HypercubeSimConfig {
            dim: d,
            lambda,
            p,
            horizon,
            warmup: horizon * 0.2,
            seed: 31 + d as u64,
            ..Default::default()
        })
        .run();
        let b = greedy_delay_bounds(d, lambda, p);
        assert!(
            b.contains(r.delay.mean, 0.05),
            "hypercube d={d} ρ={rho}: {} outside [{}, {}]",
            r.delay.mean,
            b.lower,
            b.upper
        );
    }

    for &(d, lambda, p) in &[(3usize, 1.0f64, 0.5f64), (4, 1.4, 0.3)] {
        let horizon = 4_000.0;
        let r = ButterflySim::new(ButterflySimConfig {
            dim: d,
            lambda,
            p,
            horizon,
            warmup: horizon * 0.2,
            seed: 41 + d as u64,
            ..Default::default()
        })
        .run();
        let lb = butterfly_bounds::universal_lower_bound(d, lambda, p);
        let ub = butterfly_bounds::greedy_upper_bound(d, lambda, p);
        assert!(
            r.delay.mean >= lb * 0.95 && r.delay.mean <= ub * 1.05,
            "butterfly d={d}: {} outside [{lb}, {ub}]",
            r.delay.mean
        );
    }
}

/// Stability frontiers: both networks flip from stable to unstable exactly
/// where their load factors cross 1.
#[test]
fn stability_frontiers() {
    // Hypercube: ρ = λp.
    assert!(probe_hypercube(4, 1.7, 0.5, Scheme::Greedy, 3_000.0, 51).stable);
    assert!(!probe_hypercube(4, 2.4, 0.5, Scheme::Greedy, 3_000.0, 52).stable);
    // Butterfly: ρ_bf = λ·max{p, 1-p}; skew p breaks it sooner.
    assert!(probe_butterfly(4, 1.2, 0.5, 3_000.0, 53).stable);
    assert!(!probe_butterfly(4, 1.2, 0.1, 3_000.0, 54).stable); // ρ_bf=1.08
}

/// Slotted arrivals obey the §3.4 bound and approach the continuous delay
/// as slots shrink.
#[test]
fn slotted_time_consistency() {
    let (d, lambda, p) = (4usize, 1.2f64, 0.5f64);
    let horizon = 4_000.0;
    let run = |arrivals| {
        HypercubeSim::new(HypercubeSimConfig {
            dim: d,
            lambda,
            p,
            arrivals,
            horizon,
            warmup: horizon * 0.2,
            seed: 61,
            ..Default::default()
        })
        .run()
        .delay
        .mean
    };
    let continuous = run(ArrivalModel::Poisson);
    let coarse = run(ArrivalModel::Slotted { slots_per_unit: 1 });
    let fine = run(ArrivalModel::Slotted { slots_per_unit: 8 });
    let bound = hyperroute::analysis::hypercube_bounds::slotted_upper_bound(d, lambda, p, 1.0);
    assert!(
        coarse <= bound * 1.03,
        "coarse slotted {coarse} above {bound}"
    );
    // Finer slots converge towards the continuous model.
    assert!(
        (fine - continuous).abs() < (coarse - continuous).abs() + 0.15,
        "fine {fine} not closer to continuous {continuous} than coarse {coarse}"
    );
}

/// The experiment harness end-to-end: every registered experiment renders
/// a non-empty table at Quick scale. (This is the bench harness's code
/// path, exercised in CI.)
#[test]
#[ignore = "slow: runs all 20 experiment harnesses; use --ignored to include"]
fn all_experiments_render() {
    for (name, f) in hyperroute::experiments::all_experiments() {
        let t = f(Scale::Quick);
        assert!(!t.rows.is_empty(), "{name} produced an empty table");
        assert!(t.render().contains("=="));
    }
}
