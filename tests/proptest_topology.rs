//! Property-based tests of the topology substrate: canonical paths,
//! butterfly paths, arc indexing, and the equivalent networks' traffic
//! equations.

use hyperroute::topology::{
    Butterfly, ButterflyArc, Hypercube, HypercubeArc, LevelledNetwork, NodeId,
};
use proptest::prelude::*;

fn dim_and_two_nodes() -> impl Strategy<Value = (usize, u64, u64)> {
    (1usize..=10).prop_flat_map(|d| {
        let n = 1u64 << d;
        (Just(d), 0..n, 0..n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn canonical_path_is_shortest_connected_monotone((d, src, dst) in dim_and_two_nodes()) {
        let cube = Hypercube::new(d);
        let (src, dst) = (NodeId(src), NodeId(dst));
        let path: Vec<_> = cube.canonical_path(src, dst).collect();
        // Shortest.
        prop_assert_eq!(path.len() as u32, src.hamming(dst));
        // Connected, ends at dst.
        let mut at = src;
        for arc in &path {
            prop_assert_eq!(arc.from, at);
            at = arc.to();
        }
        prop_assert_eq!(at, dst);
        // Increasing dimension order — the defining greedy property.
        prop_assert!(path.windows(2).all(|w| w[0].dim < w[1].dim));
    }

    #[test]
    fn translation_invariance((d, src, dst) in dim_and_two_nodes(), shift in any::<u64>()) {
        let cube = Hypercube::new(d);
        let mask = shift & ((1u64 << d) - 1);
        let dims_base: Vec<_> = cube
            .canonical_path(NodeId(src), NodeId(dst))
            .map(|a| a.dim)
            .collect();
        let dims_shift: Vec<_> = cube
            .canonical_path(NodeId(src ^ mask), NodeId(dst ^ mask))
            .map(|a| a.dim)
            .collect();
        prop_assert_eq!(dims_base, dims_shift);
    }

    #[test]
    fn hypercube_arc_index_roundtrip((d, node, _) in dim_and_two_nodes(), dim_pick in any::<usize>()) {
        let dim = dim_pick % d;
        let arc = HypercubeArc { from: NodeId(node), dim };
        let idx = arc.index(d);
        prop_assert!(idx < d << d);
        prop_assert_eq!(HypercubeArc::from_index(idx, d), arc);
    }

    #[test]
    fn butterfly_path_properties((d, src, dst) in dim_and_two_nodes()) {
        let bf = Butterfly::new(d);
        let (src, dst) = (NodeId(src), NodeId(dst));
        let path: Vec<ButterflyArc> = bf.path(src, dst).collect();
        // Always exactly d arcs, levels 0..d in order.
        prop_assert_eq!(path.len(), d);
        for (j, arc) in path.iter().enumerate() {
            prop_assert_eq!(arc.level, j);
        }
        // Verticals exactly at the differing dimensions, in order.
        let verticals: Vec<usize> = path
            .iter()
            .filter(|a| a.kind == hyperroute::topology::ArcKind::Vertical)
            .map(|a| a.level)
            .collect();
        let expected: Vec<usize> = src.differing_dims(dst).collect();
        prop_assert_eq!(verticals, expected);
        // Ends at the destination row.
        let mut row = src;
        for arc in &path {
            row = arc.to_row();
        }
        prop_assert_eq!(row, dst);
    }

    #[test]
    fn q_network_traffic_equations(
        d in 1usize..=6,
        lambda in 0.01f64..2.0,
        p in 0.05f64..=1.0,
    ) {
        let net = LevelledNetwork::equivalent_q(Hypercube::new(d), lambda, p);
        prop_assert!(net.validate().is_ok());
        // Prop. 5: every server's total arrival rate is λp.
        let rho = lambda * p;
        for rate in net.total_arrival_rates() {
            prop_assert!((rate - rho).abs() < 1e-9, "rate {} vs ρ {}", rate, rho);
        }
    }

    #[test]
    fn r_network_traffic_equations(
        d in 1usize..=6,
        lambda in 0.01f64..2.0,
        p in 0.0f64..=1.0,
    ) {
        let bf = Butterfly::new(d);
        let net = LevelledNetwork::equivalent_r(bf, lambda, p);
        prop_assert!(net.validate().is_ok());
        let rates = net.total_arrival_rates();
        for arc in bf.arcs() {
            let expect = match arc.kind {
                hyperroute::topology::ArcKind::Straight => lambda * (1.0 - p),
                hyperroute::topology::ArcKind::Vertical => lambda * p,
            };
            prop_assert!((rates[arc.index(d)] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn num_shortest_paths_is_factorial((d, src, dst) in dim_and_two_nodes()) {
        let cube = Hypercube::new(d);
        let k = NodeId(src).hamming(NodeId(dst)) as u64;
        let expect: u64 = (1..=k).product::<u64>().max(1);
        prop_assert_eq!(cube.num_shortest_paths(NodeId(src), NodeId(dst)), expect);
    }
}
