//! Property-based tests of the packet-level simulators: structural
//! invariants that must hold for *any* stable configuration and seed —
//! plus pop-order equivalence of the two event-scheduler backends on
//! random event streams.

use hyperroute::prelude::*;
use hyperroute_desim::{CalendarQueue, EventQueue, SchedulerKind};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct SimCase {
    dim: usize,
    rho: f64,
    p: f64,
    seed: u64,
}

fn sim_case() -> impl Strategy<Value = SimCase> {
    (2usize..=4, 0.1f64..0.85, 0.2f64..=1.0, any::<u64>()).prop_map(|(dim, rho, p, seed)| SimCase {
        dim,
        rho,
        p,
        seed,
    })
}

fn run_case(c: &SimCase, horizon: f64) -> Report {
    Scenario::builder(Topology::Hypercube { dim: c.dim })
        .lambda(c.rho / c.p)
        .p(c.p)
        .horizon(horizon)
        .warmup(horizon * 0.2)
        .seed(c.seed)
        .build()
        .expect("valid scenario")
        .run()
        .expect("scenario runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conservation_and_quantile_order(c in sim_case()) {
        let r = run_case(&c, 400.0);
        // With drain enabled, everything generated is delivered.
        prop_assert_eq!(r.generated, r.delivered);
        // Quantiles are ordered and the mean is sane.
        if r.delay.count > 0 {
            prop_assert!(r.delay.p50 <= r.delay.p90 + 1e-9);
            prop_assert!(r.delay.p90 <= r.delay.p99 + 1e-9);
            prop_assert!(r.delay.mean >= 0.0 && r.delay.mean.is_finite());
        }
        // Hop counts cannot exceed the diameter (shortest-path routing).
        let ext = r.hypercube().expect("hypercube report");
        prop_assert!(ext.mean_hops <= c.dim as f64 + 1e-9);
        prop_assert!((0.0..=1.0).contains(&ext.zero_hop_fraction));
    }

    #[test]
    fn determinism_per_seed(c in sim_case()) {
        let a = run_case(&c, 300.0);
        let b = run_case(&c, 300.0);
        prop_assert_eq!(a.generated, b.generated);
        prop_assert_eq!(a.delay.mean, b.delay.mean);
        prop_assert_eq!(a.mean_in_system, b.mean_in_system);
    }

    #[test]
    fn delay_never_below_hops(c in sim_case()) {
        // Every hop takes at least one unit, so mean delay ≥ mean hops.
        let r = run_case(&c, 400.0);
        let hops = r.hypercube().expect("hypercube report").mean_hops;
        if r.delay.count > 0 {
            prop_assert!(
                r.delay.mean >= hops - 1e-9,
                "delay {} below hops {}", r.delay.mean, hops
            );
        }
    }

    #[test]
    fn upper_bound_holds_for_random_configs(c in sim_case()) {
        // Prop. 12 with CI slack; horizon long enough for rough convergence.
        let r = run_case(&c, 1_500.0);
        let ub = greedy_upper_bound(c.dim, c.rho / c.p, c.p);
        prop_assert!(
            r.delay.mean <= ub * 1.10 + 0.1,
            "T {} above UB {} for {:?}", r.delay.mean, ub, c
        );
    }

    #[test]
    fn scheduler_backends_pop_identically_on_batch_streams(
        times in prop::collection::vec(0.0f64..50.0, 1..300),
        rate_hint in 0.5f64..500.0,
    ) {
        // All events pushed up front, then drained: both backends must
        // agree on the full (time, payload) sequence, including FIFO
        // tie-breaks for duplicate times.
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::with_rate_hint(rate_hint);
        for (i, &t) in times.iter().enumerate() {
            heap.push(t, i);
            cal.push(t, i);
        }
        for _ in 0..times.len() {
            prop_assert_eq!(heap.pop(), cal.pop());
        }
        prop_assert_eq!(heap.pop(), None);
        prop_assert_eq!(cal.pop(), None);
    }

    #[test]
    fn scheduler_backends_pop_identically_under_interleaving(
        gaps in prop::collection::vec((0.0f64..2.5, 0u32..4), 10..200),
        rate_hint in 0.5f64..200.0,
    ) {
        // DES-like interleaving: pop one event, then schedule `n` new ones
        // at `now + gap` (sub-unit, unit, and multi-unit gaps mixed).
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::with_rate_hint(rate_hint);
        heap.push(0.0, 0usize);
        cal.push(0.0, 0usize);
        let mut id = 1usize;
        for &(gap, fanout) in &gaps {
            let (Some(a), Some(b)) = (heap.pop(), cal.pop()) else {
                prop_assert!(heap.is_empty() && cal.is_empty());
                break;
            };
            prop_assert_eq!(a, b);
            let now = a.0;
            for k in 0..fanout {
                let t = now + gap * (k as f64 + 0.5);
                heap.push(t, id);
                cal.push(t, id);
                id += 1;
            }
            prop_assert_eq!(heap.len(), cal.len());
        }
        while let Some(a) = heap.pop() {
            prop_assert_eq!(Some(a), cal.pop());
        }
        prop_assert!(cal.is_empty());
    }

    #[test]
    fn hypercube_backends_bit_identical_on_random_configs(c in sim_case()) {
        let run = |kind| {
            Scenario::builder(Topology::Hypercube { dim: c.dim })
                .lambda(c.rho / c.p)
                .p(c.p)
                .scheduler(kind)
                .horizon(250.0)
                .warmup(50.0)
                .seed(c.seed)
                .build()
                .expect("valid scenario")
                .run()
                .expect("scenario runs")
        };
        prop_assert_eq!(run(SchedulerKind::Heap), run(SchedulerKind::Calendar));
    }

    #[test]
    fn butterfly_invariants(
        dim in 2usize..=4,
        load in 0.1f64..0.8,
        p in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        let lambda = load / p.max(1.0 - p);
        let r = Scenario::builder(Topology::Butterfly { dim })
            .lambda(lambda)
            .p(p)
            .horizon(400.0)
            .warmup(80.0)
            .seed(seed)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs");
        prop_assert_eq!(r.generated, r.delivered);
        if r.delay.count > 0 {
            // Unique path of length d: delay at least d, verticals ≤ d.
            prop_assert!(r.delay.mean >= dim as f64 - 1e-9);
            prop_assert!(
                r.butterfly().expect("butterfly report").mean_vertical_hops
                    <= dim as f64 + 1e-9
            );
        }
    }
}
