//! Property tests of the fault-mask workloads: **no packet is ever
//! stranded silently**. Whatever the topology, contention policy,
//! fallback (Drop, Detour, Retry, Multipath) and fault pattern — static
//! masks, dynamic mid-run arc deaths, or both — a drained run accounts
//! for every generated packet as either delivered or dropped:
//! conservation is exact, retried packets are counted once, and the
//! report's delivered/dropped split agrees with the totals.

use hyperroute::prelude::*;
use proptest::prelude::*;

/// Run a faulty scenario to completion and assert exact conservation.
fn assert_conservation(
    topology: Topology,
    lambda: f64,
    spec: FaultSpec,
    contention: ContentionPolicy,
) {
    let scenario = Scenario::builder(topology.clone())
        .lambda(lambda)
        .contention(contention)
        .horizon(120.0)
        .warmup(20.0)
        .seed(0xFA)
        .faults(Some(spec))
        .build()
        .expect("valid faulty scenario");
    let report = scenario.run().expect("runs to completion");
    let ext = report
        .graph()
        .expect("faulty runs report the graph extension");
    assert_eq!(
        report.generated,
        report.delivered + ext.dropped,
        "stranded packets on {topology:?}: generated {} != delivered {} + dropped {}",
        report.generated,
        report.delivered,
        ext.dropped
    );
    assert!(
        ext.dropped_in_window <= ext.dropped,
        "window drops exceed total drops"
    );
    // Measured splits stay within the totals.
    assert!(report.delay.count <= report.delivered);
    if ext.dead_arcs == 0 {
        assert_eq!(ext.dropped, 0, "drops without dead arcs");
    }
    // Rerunning is bit-identical (static mask, dynamic arrival schedule
    // and traffic are all seeded).
    let again = scenario.run().expect("reruns");
    assert_eq!(report, again, "faulty run not deterministic");
}

/// The four fallbacks, indexable by a proptest draw.
fn fallback(pick: usize) -> FaultFallback {
    [
        FaultFallback::Drop,
        FaultFallback::Detour,
        FaultFallback::Retry { budget: 4 },
        FaultFallback::Multipath,
    ][pick]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn faulty_runs_conserve_packets_across_topologies_and_policies(
        fraction in 0.0f64..0.5,
        fault_seed in any::<u64>(),
        contention_pick in 0usize..3,
        fallback_pick in 0usize..4,
        topo_pick in 0usize..6,
        dynamic in any::<bool>(),
    ) {
        let contention = [
            ContentionPolicy::Fifo,
            ContentionPolicy::Lifo,
            ContentionPolicy::Random,
        ][contention_pick];
        let mut fallback = fallback(fallback_pick);
        let mut contention = contention;
        let (topology, lambda) = match topo_pick {
            0 => (Topology::Hypercube { dim: 3 }, 0.8),
            1 => (Topology::Ring { nodes: 12, bidirectional: true }, 0.2),
            2 => (Topology::Torus { radix: 4, dim: 2 }, 0.35),
            3 => (Topology::DeBruijn { dim: 4 }, 0.12),
            4 => (Topology::FatTree { levels: 3 }, 0.25),
            _ => (Topology::Butterfly { dim: 3 }, 0.3),
        };
        if matches!(topology, Topology::Butterfly { .. }) {
            // The butterfly admits only the ranked-alternate fallbacks
            // (unique paths) and FIFO contention.
            if matches!(fallback, FaultFallback::Drop | FaultFallback::Detour) {
                fallback = FaultFallback::Multipath;
            }
            contention = ContentionPolicy::Fifo;
        }
        let spec = FaultSpec {
            mode: FaultMode::Seeded { fraction, seed: fault_seed },
            fallback,
            dynamics: dynamic.then_some(FaultArrivals {
                rate: 0.1,
                seed: fault_seed ^ 0xD1,
            }),
        };
        assert_conservation(topology, lambda, spec, contention);
    }

    #[test]
    fn explicit_masks_conserve_packets_too(
        dead_bits in any::<u32>(),
        fallback_pick in 0usize..4,
        dynamic in any::<bool>(),
    ) {
        // A 12-node unidirectional ring has 12 arcs; kill an arbitrary
        // subset chosen by the low 12 bits, optionally with further
        // mid-run deaths on top.
        let arcs: Vec<usize> = (0..12).filter(|i| dead_bits >> i & 1 == 1).collect();
        let spec = FaultSpec {
            mode: FaultMode::Explicit { arcs },
            fallback: fallback(fallback_pick),
            dynamics: dynamic.then_some(FaultArrivals {
                rate: 0.05,
                seed: dead_bits as u64,
            }),
        };
        assert_conservation(
            Topology::Ring { nodes: 12, bidirectional: false },
            0.15,
            spec,
            ContentionPolicy::Fifo,
        );
    }
}
