//! Property tests of the fault-mask workloads: **no packet is ever
//! stranded silently**. Whatever the topology, contention policy,
//! fallback and fault pattern, a drained run accounts for every generated
//! packet as either delivered or dropped — conservation is exact, and the
//! report's delivered/dropped split agrees with the totals.

use hyperroute::prelude::*;
use proptest::prelude::*;

/// Run a faulty scenario to completion and assert exact conservation.
fn assert_conservation(
    topology: Topology,
    lambda: f64,
    spec: FaultSpec,
    contention: ContentionPolicy,
) {
    let scenario = Scenario::builder(topology.clone())
        .lambda(lambda)
        .contention(contention)
        .horizon(120.0)
        .warmup(20.0)
        .seed(0xFA)
        .faults(Some(spec))
        .build()
        .expect("valid faulty scenario");
    let report = scenario.run().expect("runs to completion");
    let ext = report
        .graph()
        .expect("faulty runs report the graph extension");
    assert_eq!(
        report.generated,
        report.delivered + ext.dropped,
        "stranded packets on {topology:?}: generated {} != delivered {} + dropped {}",
        report.generated,
        report.delivered,
        ext.dropped
    );
    assert!(
        ext.dropped_in_window <= ext.dropped,
        "window drops exceed total drops"
    );
    // Measured splits stay within the totals.
    assert!(report.delay.count <= report.delivered);
    if ext.dead_arcs == 0 {
        assert_eq!(ext.dropped, 0, "drops without dead arcs");
    }
    // Rerunning is bit-identical (fault pattern + traffic both seeded).
    let again = scenario.run().expect("reruns");
    assert_eq!(report, again, "faulty run not deterministic");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn faulty_runs_conserve_packets_across_topologies_and_policies(
        fraction in 0.0f64..0.5,
        fault_seed in any::<u64>(),
        contention_pick in 0usize..3,
        drop_fallback in any::<bool>(),
        topo_pick in 0usize..4,
    ) {
        let contention = [
            ContentionPolicy::Fifo,
            ContentionPolicy::Lifo,
            ContentionPolicy::Random,
        ][contention_pick];
        let fallback = if drop_fallback {
            FaultFallback::Drop
        } else {
            FaultFallback::Detour
        };
        let (topology, lambda) = match topo_pick {
            0 => (Topology::Hypercube { dim: 3 }, 0.8),
            1 => (Topology::Ring { nodes: 12, bidirectional: true }, 0.2),
            2 => (Topology::Torus { radix: 4, dim: 2 }, 0.35),
            _ => (Topology::DeBruijn { dim: 4 }, 0.12),
        };
        let spec = FaultSpec {
            mode: FaultMode::Seeded { fraction, seed: fault_seed },
            fallback,
        };
        assert_conservation(topology, lambda, spec, contention);
    }

    #[test]
    fn explicit_masks_conserve_packets_too(
        dead_bits in any::<u32>(),
        drop_fallback in any::<bool>(),
    ) {
        // A 12-node unidirectional ring has 12 arcs; kill an arbitrary
        // subset chosen by the low 12 bits.
        let arcs: Vec<usize> = (0..12).filter(|i| dead_bits >> i & 1 == 1).collect();
        let spec = FaultSpec {
            mode: FaultMode::Explicit { arcs },
            fallback: if drop_fallback {
                FaultFallback::Drop
            } else {
                FaultFallback::Detour
            },
        };
        assert_conservation(
            Topology::Ring { nodes: 12, bidirectional: false },
            0.15,
            spec,
            ContentionPolicy::Fifo,
        );
    }
}
