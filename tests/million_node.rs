//! Million-node scale proof for the sparse generators: build plus a
//! routed sample must stay single-core interactive (well under a
//! minute). Ignored by default because the budget assumes an optimised
//! build — run with `cargo test --release --test million_node -- --ignored`.

use std::time::{Duration, Instant};

/// Deterministic sample of (src, dest) pairs over `n` nodes.
fn pairs(n: u64, count: u64) -> impl Iterator<Item = (u64, u64)> {
    (0..count).filter_map(move |i| {
        let s = (i * 499_979) % n;
        let d = (i * 737_111 + 13) % n;
        (s != d).then_some((s, d))
    })
}

#[test]
#[ignore = "release-build timing budget; see module docs"]
fn million_node_build_and_route_is_interactive() {
    let budget = Duration::from_secs(60);

    let t0 = Instant::now();
    let sw = hyperroute_sparse::small_world(1000, 2, 2, 2.0, 7);
    let mut delivered = 0u64;
    let mut hops = 0u64;
    for (s, d) in pairs(1_000_000, 2000) {
        if let Ok(h) = sw.greedy_walk(s, d) {
            delivered += 1;
            hops += h as u64;
        }
    }
    let sw_wall = t0.elapsed();
    assert!(
        sw_wall < budget,
        "small-world 10^6 build+route took {sw_wall:?}"
    );
    // Kleinberg at the harmonic exponent: polylog hop counts, far below
    // the ~1000-hop lattice walks of the bare grid.
    assert!(delivered >= 1900, "delivered {delivered}/2000");
    let mean = hops as f64 / delivered as f64;
    assert!(mean < 120.0, "mean greedy hops {mean}");

    let t0 = Instant::now();
    let hy = hyperroute_sparse::hyperbolic(1_000_000, 0.7, -1.5, 7);
    let mut delivered = 0u64;
    let mut hops = 0u64;
    for (s, d) in pairs(1_000_000, 2000) {
        if let Ok(h) = hy.greedy_walk(s, d) {
            delivered += 1;
            hops += h as u64;
        }
    }
    let hy_wall = t0.elapsed();
    assert!(
        hy_wall < budget,
        "hyperbolic 10^6 build+route took {hy_wall:?}"
    );
    // Krioukov greedy: near-ubiquitous success at O(log n) hops.
    assert!(delivered >= 1900, "delivered {delivered}/2000");
    let mean = hops as f64 / delivered as f64;
    assert!(mean < 10.0, "mean greedy hops {mean}");
}
