//! Differential tests of the two future-event-list backends.
//!
//! The calendar queue's contract is not "statistically equivalent" but
//! **bit-identical**: for a fixed seed, a simulation driven by the
//! calendar backend must pop every event in exactly the same order as the
//! heap backend, consume exactly the same random draws, and therefore
//! produce byte-for-byte equal reports. These tests run every simulator
//! (through the unified `Scenario` spec, varying only
//! `RunControl::scheduler`) across schemes, arrival models, and contention
//! policies under both backends and compare full reports with `==` (the
//! reports derive bit-exact `PartialEq`).

use hyperroute::prelude::*;
use hyperroute_desim::SchedulerKind;

fn hypercube_report(
    scheme: Scheme,
    arrivals: ArrivalModel,
    contention: ContentionPolicy,
    dest: DestinationSpec,
    seed: u64,
    kind: SchedulerKind,
) -> Report {
    Scenario::builder(Topology::Hypercube { dim: 4 })
        .lambda(1.0)
        .p(0.5)
        .scheme(scheme)
        .arrivals(arrivals)
        .dest(dest)
        .contention(contention)
        .scheduler(kind)
        .horizon(400.0)
        .warmup(80.0)
        .seed(seed)
        .build()
        .expect("valid scenario")
        .run()
        .expect("scenario runs")
}

#[test]
fn hypercube_reports_identical_across_schemes_arrivals_contention() {
    let schemes = [Scheme::Greedy, Scheme::RandomOrder, Scheme::TwoPhaseValiant];
    let arrivals = [
        ArrivalModel::Poisson,
        ArrivalModel::Slotted { slots_per_unit: 2 },
    ];
    let contentions = [
        ContentionPolicy::Fifo,
        ContentionPolicy::Lifo,
        ContentionPolicy::Random,
    ];
    for (i, &scheme) in schemes.iter().enumerate() {
        for (j, &arrival) in arrivals.iter().enumerate() {
            for (k, &contention) in contentions.iter().enumerate() {
                let seed = 1000 + (i * 10 + j * 100 + k) as u64;
                let heap = hypercube_report(
                    scheme,
                    arrival,
                    contention,
                    DestinationSpec::BitFlip,
                    seed,
                    SchedulerKind::Heap,
                );
                let calendar = hypercube_report(
                    scheme,
                    arrival,
                    contention,
                    DestinationSpec::BitFlip,
                    seed,
                    SchedulerKind::Calendar,
                );
                assert_eq!(
                    heap, calendar,
                    "backends diverged: {scheme:?} / {arrival:?} / {contention:?} / seed {seed}"
                );
                assert!(heap.generated > 0, "degenerate case {scheme:?}");
            }
        }
    }
}

#[test]
fn hypercube_reports_identical_with_custom_destination_pmf() {
    for seed in [7u64, 8, 9] {
        let dest = DestinationSpec::product_of_flips(&[0.9, 0.3, 0.3, 0.1]);
        let heap = hypercube_report(
            Scheme::Greedy,
            ArrivalModel::Poisson,
            ContentionPolicy::Fifo,
            dest.clone(),
            seed,
            SchedulerKind::Heap,
        );
        let calendar = hypercube_report(
            Scheme::Greedy,
            ArrivalModel::Poisson,
            ContentionPolicy::Fifo,
            dest,
            seed,
            SchedulerKind::Calendar,
        );
        assert_eq!(heap, calendar, "seed {seed}");
    }
}

#[test]
fn hypercube_observed_trajectories_identical() {
    let run = |kind| {
        let scenario = Scenario::builder(Topology::Hypercube { dim: 4 })
            .lambda(1.4)
            .p(0.5)
            .scheduler(kind)
            .horizon(500.0)
            .warmup(100.0)
            .seed(33)
            .build()
            .expect("valid scenario");
        let mut probe = TimeSeriesProbe::new(25.0, scenario.run.horizon);
        let report = scenario.run_observed(&mut probe).expect("scenario runs");
        (report, probe.into_samples())
    };
    let (rh, sh) = run(SchedulerKind::Heap);
    let (rc, sc) = run(SchedulerKind::Calendar);
    assert_eq!(rh, rc);
    assert_eq!(sh, sc, "number-in-system sample paths diverged");
    assert!(sh.len() >= 10);
}

#[test]
fn butterfly_reports_identical_both_arrival_models() {
    for (arrivals, seed) in [
        (ArrivalModel::Poisson, 21u64),
        (ArrivalModel::Slotted { slots_per_unit: 2 }, 22),
        (ArrivalModel::Poisson, 0xDEAD),
    ] {
        let run = |kind| {
            Scenario::builder(Topology::Butterfly { dim: 4 })
                .lambda(1.2)
                .p(0.4)
                .arrivals(arrivals)
                .scheduler(kind)
                .horizon(400.0)
                .warmup(80.0)
                .seed(seed)
                .build()
                .expect("valid scenario")
                .run()
                .expect("scenario runs")
        };
        let heap = run(SchedulerKind::Heap);
        let calendar = run(SchedulerKind::Calendar);
        assert_eq!(heap, calendar, "{arrivals:?} / seed {seed}");
        assert!(heap.generated > 0);
    }
}

#[test]
fn ring_reports_identical_across_variants_and_arrivals() {
    for (bidirectional, arrivals, seed) in [
        (false, ArrivalModel::Poisson, 61u64),
        (true, ArrivalModel::Poisson, 62),
        (true, ArrivalModel::Slotted { slots_per_unit: 2 }, 63),
    ] {
        let run = |kind| {
            Scenario::builder(Topology::Ring {
                nodes: 12,
                bidirectional,
            })
            .lambda(0.12)
            .arrivals(arrivals)
            .scheduler(kind)
            .horizon(400.0)
            .warmup(80.0)
            .seed(seed)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs")
        };
        let heap = run(SchedulerKind::Heap);
        let calendar = run(SchedulerKind::Calendar);
        assert_eq!(heap, calendar, "bidir={bidirectional} / {arrivals:?}");
        assert!(heap.generated > 0);
    }
}

#[test]
fn equivalent_network_reports_identical_both_disciplines() {
    for discipline in [Discipline::Fifo, Discipline::Ps] {
        let run = |kind| {
            Scenario::builder(Topology::EqNet {
                net: EqNetSpec::HypercubeQ { dim: 3 },
                record_departures: true,
                occupancy_cap: 0,
            })
            .lambda(1.2)
            .p(0.5)
            .discipline(discipline)
            .scheduler(kind)
            .horizon(400.0)
            .warmup(80.0)
            .seed(55)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs")
        };
        let heap = run(SchedulerKind::Heap);
        let calendar = run(SchedulerKind::Calendar);
        assert_eq!(heap, calendar, "{discipline:?}");
        assert!(heap.generated > 0);
    }
}

#[test]
fn near_zero_rate_identical_and_terminates() {
    // λ so small that the first merged arrival lands ~1e19 time units out:
    // the calendar's epoch arithmetic must not overflow or spin, and both
    // backends must agree on the (empty) run.
    let run = |kind| {
        Scenario::builder(Topology::Hypercube { dim: 3 })
            .lambda(1e-20)
            .p(0.5)
            .scheduler(kind)
            .horizon(100.0)
            .warmup(10.0)
            .seed(5)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs")
    };
    let heap = run(SchedulerKind::Heap);
    let calendar = run(SchedulerKind::Calendar);
    assert_eq!(heap, calendar);
}

#[test]
fn instability_probe_without_drain_identical() {
    // ρ > 1: unstable, queues grow, horizon cut without drain — the
    // backends must agree on the truncated run too.
    let run = |kind| {
        Scenario::builder(Topology::Hypercube { dim: 4 })
            .lambda(2.6)
            .p(0.5)
            .scheduler(kind)
            .horizon(150.0)
            .warmup(30.0)
            .seed(99)
            .drain(false)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs")
    };
    let heap = run(SchedulerKind::Heap);
    let calendar = run(SchedulerKind::Calendar);
    assert_eq!(heap, calendar);
    assert!(
        heap.generated > heap.delivered,
        "expected backlog at ρ = 1.3"
    );
}
