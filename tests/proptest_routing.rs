//! Property tests of the `RoutingTopology` contract — the abstraction the
//! generic simulation core routes over.
//!
//! Two properties, over every implementation (hypercube, butterfly, ring
//! clockwise-only and bidirectional, torus, de Bruijn — which between
//! them back every simulator instantiation: the equivalent networks
//! route over the hypercube/butterfly graphs, the pipelined scheme
//! batch-routes the hypercube, and the blanket `GraphSpec` runs any of
//! them as pure data):
//!
//! 1. **Strict greedy progress**: for any `(node, dest)`, `next_arc`
//!    leaves from `node` and its head is exactly one hop closer to
//!    `dest`, so greedy routes terminate in `distance(node, dest)` hops
//!    and the per-hop engines can never cycle.
//! 2. **Dense arc enumeration**: arc indices cover `0..num_arcs()`
//!    bijectively via `arc_tail`/`arc_head`, and `num_arcs()` matches the
//!    concrete topology's published arc counts (`d·2^d` hypercube,
//!    `d·2^(d+1)` butterfly, `n`/`2n` ring).

use hyperroute::prelude::*;
use proptest::prelude::*;

/// Walk the greedy route, asserting strict per-hop progress; returns hops.
fn walk_greedy<T: RoutingTopology>(t: &T, src: u64, dest: u64) -> usize {
    let mut at = src;
    let mut hops = 0usize;
    while let Some(arc) = t.next_arc(at, dest) {
        assert!(arc < t.num_arcs(), "arc index {arc} out of range");
        assert_eq!(t.arc_tail(arc), at, "next_arc leaves the wrong node");
        let next = t.arc_head(arc);
        assert_eq!(
            t.distance(next, dest) + 1,
            t.distance(at, dest),
            "hop {at}→{next} toward {dest} is not strict progress"
        );
        at = next;
        hops += 1;
        assert!(hops <= t.num_nodes(), "greedy route cycles");
    }
    assert_eq!(at, dest, "greedy route ended off-destination");
    hops
}

/// Check the arc index space is dense and tail/head are total on it.
fn check_arc_enumeration<T: RoutingTopology>(t: &T) {
    let n = t.num_nodes() as u64;
    for arc in 0..t.num_arcs() {
        assert!(t.arc_tail(arc) < n);
        assert!(t.arc_head(arc) < n);
        assert_ne!(t.arc_tail(arc), t.arc_head(arc), "self-loop arc {arc}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hypercube_greedy_strictly_decreases_distance(
        dim in 1usize..=10,
        src_bits in any::<u64>(),
        dest_bits in any::<u64>(),
    ) {
        let cube = Hypercube::new(dim);
        let mask = (1u64 << dim) - 1;
        let (src, dest) = (src_bits & mask, dest_bits & mask);
        let hops = walk_greedy(&cube, src, dest);
        prop_assert_eq!(hops, NodeId(src).hamming(NodeId(dest)) as usize);
    }

    #[test]
    fn butterfly_greedy_strictly_decreases_distance(
        dim in 1usize..=8,
        src_bits in any::<u64>(),
        dest_bits in any::<u64>(),
        level_bits in any::<u64>(),
    ) {
        let bf = Butterfly::new(dim);
        let mask = (1u64 << dim) - 1;
        let level = (level_bits % (dim as u64 + 1)) as usize;
        // A mid-route packet at [row; level] heads for a level-d node
        // whose bits below `level` already match (the crossed levels).
        let row = src_bits & mask;
        let low = (1u64 << level) - 1;
        let dest_row = (dest_bits & mask & !low) | (row & low);
        let src = bf.encode_node(row, level);
        let dest = bf.encode_node(dest_row, dim);
        let hops = walk_greedy(&bf, src, dest);
        prop_assert_eq!(hops, dim - level);
    }

    #[test]
    fn ring_greedy_strictly_decreases_distance(
        nodes in 3usize..=64,
        bidirectional in any::<bool>(),
        src_bits in any::<u64>(),
        dest_bits in any::<u64>(),
    ) {
        let ring = Ring::new(nodes, bidirectional);
        let (src, dest) = (src_bits % nodes as u64, dest_bits % nodes as u64);
        let hops = walk_greedy(&ring, src, dest);
        prop_assert_eq!(hops, ring.distance(src, dest));
        // Bidirectional greedy never walks more than half way around.
        if bidirectional {
            prop_assert!(hops <= nodes / 2);
        }
    }

    #[test]
    fn torus_greedy_strictly_decreases_distance(
        radix in 3usize..=9,
        dim in 1usize..=3,
        src_bits in any::<u64>(),
        dest_bits in any::<u64>(),
    ) {
        let torus = Torus::new(radix, dim);
        let n = torus.num_nodes() as u64;
        let (src, dest) = (src_bits % n, dest_bits % n);
        let hops = walk_greedy(&torus, src, dest);
        prop_assert_eq!(hops, torus.distance(src, dest));
        prop_assert!(hops <= torus.diameter());
    }

    #[test]
    fn debruijn_greedy_strictly_decreases_distance(
        dim in 1usize..=10,
        src_bits in any::<u64>(),
        dest_bits in any::<u64>(),
    ) {
        let g = DeBruijn::new(dim);
        let mask = (1u64 << dim) - 1;
        let (src, dest) = (src_bits & mask, dest_bits & mask);
        let hops = walk_greedy(&g, src, dest);
        prop_assert_eq!(hops, g.distance(src, dest));
        // The shift route never exceeds the diameter n.
        prop_assert!(hops <= dim);
    }

    #[test]
    fn arc_enumeration_matches_topology_arc_counts(
        dim in 1usize..=8,
        nodes in 3usize..=64,
        radix in 3usize..=8,
        bidirectional in any::<bool>(),
    ) {
        let cube = Hypercube::new(dim);
        prop_assert_eq!(RoutingTopology::num_arcs(&cube), dim << dim);
        check_arc_enumeration(&cube);

        let bf = Butterfly::new(dim);
        prop_assert_eq!(RoutingTopology::num_arcs(&bf), dim << (dim + 1));
        check_arc_enumeration(&bf);

        let ring = Ring::new(nodes, bidirectional);
        let expected = if bidirectional { 2 * nodes } else { nodes };
        prop_assert_eq!(RoutingTopology::num_arcs(&ring), expected);
        check_arc_enumeration(&ring);

        let torus = Torus::new(radix, 2);
        prop_assert_eq!(RoutingTopology::num_arcs(&torus), radix * radix * 4);
        check_arc_enumeration(&torus);

        let db = DeBruijn::new(dim);
        prop_assert_eq!(RoutingTopology::num_arcs(&db), (2 << dim) - 2);
        check_arc_enumeration(&db);
    }

    /// The hypercube spec's packed fast path (trailing_zeros over the XOR
    /// mask) must agree with the trait's canonical `next_arc` — the pin
    /// that keeps engine fast paths honest.
    #[test]
    fn hypercube_trait_agrees_with_canonical_path(
        dim in 1usize..=10,
        src_bits in any::<u64>(),
        dest_bits in any::<u64>(),
    ) {
        let cube = Hypercube::new(dim);
        let mask = (1u64 << dim) - 1;
        let (src, dest) = (src_bits & mask, dest_bits & mask);
        let mut canonical = cube.canonical_path(NodeId(src), NodeId(dest));
        let mut at = src;
        while let Some(arc) = cube.next_arc(at, dest) {
            let expected = canonical.next().expect("canonical path too short");
            prop_assert_eq!(arc, expected.index(dim));
            at = RoutingTopology::arc_head(&cube, arc);
        }
        prop_assert!(canonical.next().is_none(), "canonical path too long");
    }
}
