//! The unified `Scenario` API's two core guarantees, tested:
//!
//! 1. **Differential equivalence** — `Scenario::run()` produces reports
//!    byte-identical to the legacy per-simulator entry points
//!    (`HypercubeSim`/`ButterflySim`/`EqNetSim`/`simulate_pipelined`)
//!    for every scheme × arrival model × contention policy × discipline,
//!    because the scenario layer dispatches onto the very same engines
//!    and RNG streams.
//! 2. **Serde round-trip stability** — `Scenario → JSON → Scenario` is
//!    the identity, and (property-tested over random specs) the
//!    round-tripped scenario's report equals the original's bit for bit.

// This file deliberately exercises the deprecated legacy entry points:
// they are the reference implementations the scenario path must match
// during the one-release deprecation window.
#![allow(deprecated)]

use hyperroute::prelude::*;
use hyperroute::routing::pipelined::{simulate_pipelined, PipelinedConfig};
use hyperroute::routing::scenario::ReportExt;
use proptest::prelude::*;

fn hypercube_scenario(
    scheme: Scheme,
    arrivals: ArrivalModel,
    contention: ContentionPolicy,
    dest: DestinationSpec,
    seed: u64,
) -> Scenario {
    Scenario::builder(Topology::Hypercube { dim: 4 })
        .lambda(1.0)
        .p(0.5)
        .scheme(scheme)
        .arrivals(arrivals)
        .dest(dest)
        .contention(contention)
        .horizon(400.0)
        .warmup(80.0)
        .seed(seed)
        .build()
        .expect("valid scenario")
}

/// Field-by-field equality between a unified report and the legacy
/// hypercube report it must mirror.
fn assert_matches_hypercube(report: &Report, legacy: &HypercubeReport) {
    assert_eq!(report.delay, legacy.delay);
    assert_eq!(
        report.mean_in_system.to_bits(),
        legacy.mean_in_system.to_bits()
    );
    assert_eq!(
        report.peak_in_system.to_bits(),
        legacy.peak_in_system.to_bits()
    );
    assert_eq!(report.throughput.to_bits(), legacy.throughput.to_bits());
    assert_eq!(report.little_error.to_bits(), legacy.little_error.to_bits());
    assert_eq!(report.generated, legacy.generated);
    assert_eq!(report.delivered, legacy.delivered);
    assert_eq!(report.events, legacy.events);
    let ReportExt::Hypercube(ext) = &report.ext else {
        panic!("wrong report extension");
    };
    assert_eq!(ext.rho.to_bits(), legacy.rho.to_bits());
    assert_eq!(ext.mean_hops.to_bits(), legacy.mean_hops.to_bits());
    assert_eq!(
        ext.zero_hop_fraction.to_bits(),
        legacy.zero_hop_fraction.to_bits()
    );
    assert_eq!(ext.per_dim_arc_rate, legacy.per_dim_arc_rate);
    assert_eq!(ext.per_dim_mean_queue, legacy.per_dim_mean_queue);
}

#[test]
fn hypercube_scenario_byte_identical_to_legacy_full_matrix() {
    let schemes = [Scheme::Greedy, Scheme::RandomOrder, Scheme::TwoPhaseValiant];
    let arrivals = [
        ArrivalModel::Poisson,
        ArrivalModel::Slotted { slots_per_unit: 2 },
    ];
    let contentions = [
        ContentionPolicy::Fifo,
        ContentionPolicy::Lifo,
        ContentionPolicy::Random,
    ];
    for (i, &scheme) in schemes.iter().enumerate() {
        for (j, &arrival) in arrivals.iter().enumerate() {
            for (k, &contention) in contentions.iter().enumerate() {
                let seed = 0x5CE9 + (i * 100 + j * 10 + k) as u64;
                let scenario =
                    hypercube_scenario(scheme, arrival, contention, DestinationSpec::BitFlip, seed);
                let unified = scenario.run().expect("scenario runs");
                let legacy = HypercubeSim::new(HypercubeSimConfig {
                    dim: 4,
                    lambda: 1.0,
                    p: 0.5,
                    scheme,
                    arrivals: arrival,
                    dest: DestinationSpec::BitFlip,
                    contention,
                    scheduler: Default::default(),
                    horizon: 400.0,
                    warmup: 80.0,
                    seed,
                    drain: true,
                })
                .run();
                assert!(legacy.generated > 0);
                assert_matches_hypercube(&unified, &legacy);
            }
        }
    }
}

#[test]
fn hypercube_scenario_byte_identical_with_custom_pmf() {
    let dest = DestinationSpec::product_of_flips(&[0.9, 0.3, 0.3, 0.1]);
    let scenario = hypercube_scenario(
        Scheme::Greedy,
        ArrivalModel::Poisson,
        ContentionPolicy::Fifo,
        dest.clone(),
        77,
    );
    let unified = scenario.run().expect("scenario runs");
    let legacy = HypercubeSim::new(HypercubeSimConfig {
        dim: 4,
        dest,
        horizon: 400.0,
        warmup: 80.0,
        seed: 77,
        ..Default::default()
    })
    .run();
    assert_matches_hypercube(&unified, &legacy);
}

#[test]
fn butterfly_scenario_byte_identical_to_legacy() {
    for (arrivals, seed) in [
        (ArrivalModel::Poisson, 9u64),
        (ArrivalModel::Slotted { slots_per_unit: 3 }, 10),
    ] {
        let unified = Scenario::builder(Topology::Butterfly { dim: 4 })
            .lambda(1.2)
            .p(0.4)
            .arrivals(arrivals)
            .horizon(400.0)
            .warmup(80.0)
            .seed(seed)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs");
        let legacy = ButterflySim::new(ButterflySimConfig {
            dim: 4,
            lambda: 1.2,
            p: 0.4,
            arrivals,
            horizon: 400.0,
            warmup: 80.0,
            seed,
            ..Default::default()
        })
        .run();
        assert_eq!(unified.delay, legacy.delay);
        assert_eq!(unified.generated, legacy.generated);
        assert_eq!(unified.delivered, legacy.delivered);
        assert_eq!(unified.events, legacy.events);
        let ReportExt::Butterfly(ext) = &unified.ext else {
            panic!("wrong report extension");
        };
        assert_eq!(ext.straight_rate_per_level, legacy.straight_rate_per_level);
        assert_eq!(ext.vertical_rate_per_level, legacy.vertical_rate_per_level);
        assert_eq!(
            ext.mean_vertical_hops.to_bits(),
            legacy.mean_vertical_hops.to_bits()
        );
    }
}

#[test]
fn eqnet_scenario_byte_identical_to_legacy_both_disciplines() {
    for discipline in [Discipline::Fifo, Discipline::Ps] {
        let unified = Scenario::builder(Topology::EqNet {
            net: EqNetSpec::HypercubeQ { dim: 3 },
            record_departures: true,
            occupancy_cap: 4,
        })
        .lambda(1.2)
        .p(0.5)
        .discipline(discipline)
        .horizon(400.0)
        .warmup(80.0)
        .seed(55)
        .build()
        .expect("valid scenario")
        .run()
        .expect("scenario runs");

        let net = LevelledNetwork::equivalent_q(Hypercube::new(3), 1.2, 0.5);
        let legacy = EqNetSim::new(
            &net,
            EqNetConfig {
                discipline,
                horizon: 400.0,
                warmup: 80.0,
                seed: 55,
                record_departures: true,
                occupancy_cap: 4,
                ..Default::default()
            },
        )
        .run();
        assert_eq!(unified.delay, legacy.delay);
        assert_eq!(unified.generated, legacy.generated);
        assert_eq!(unified.delivered, legacy.delivered);
        let ReportExt::EqNet(ext) = &unified.ext else {
            panic!("wrong report extension");
        };
        assert_eq!(ext.departures, legacy.departures);
        assert_eq!(ext.occupancy_fractions, legacy.occupancy_fractions);
    }
}

#[test]
fn pipelined_scenario_byte_identical_to_legacy() {
    let unified = Scenario::builder(Topology::Pipelined { dim: 4, rounds: 80 })
        .lambda(0.05)
        .p(0.5)
        .seed(0x717E)
        .build()
        .expect("valid scenario")
        .run()
        .expect("scenario runs");
    let legacy = simulate_pipelined(PipelinedConfig {
        dim: 4,
        lambda: 0.05,
        p: 0.5,
        rounds: 80,
        seed: 0x717E,
    });
    assert_eq!(unified.generated, legacy.generated);
    assert_eq!(unified.delivered, legacy.delivered);
    assert_eq!(unified.delay.mean.to_bits(), legacy.mean_delay.to_bits());
    let ReportExt::Pipelined(ext) = &unified.ext else {
        panic!("wrong report extension");
    };
    assert_eq!(
        ext.mean_round_length.to_bits(),
        legacy.mean_round_length.to_bits()
    );
    assert_eq!(ext.final_backlog, legacy.final_backlog);
    assert_eq!(
        ext.backlog_slope_per_round.to_bits(),
        legacy.backlog_slope_per_round.to_bits()
    );
}

#[test]
fn deprecated_run_sampled_equals_time_series_probe() {
    let cfg = HypercubeSimConfig {
        dim: 4,
        lambda: 1.4,
        horizon: 500.0,
        warmup: 100.0,
        seed: 33,
        ..Default::default()
    };
    let (legacy_report, legacy_samples) = HypercubeSim::new(cfg.clone()).run_sampled(25.0);
    let mut probe = TimeSeriesProbe::new(25.0, cfg.horizon);
    let report = HypercubeSim::new(cfg).run_observed(&mut probe);
    assert_eq!(report, legacy_report);
    assert_eq!(probe.into_samples(), legacy_samples);
}

// ---------------------------------------------------------------------
// Serde round-trips.
// ---------------------------------------------------------------------

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        2usize..=5,
        0.05f64..1.6,
        0.05f64..=0.95,
        any::<u64>(),
        0usize..3,
        0usize..3,
        0usize..2,
    )
        .prop_map(|(dim, lambda, p, seed, scheme_i, contention_i, slotted)| {
            let slotted = slotted == 1;
            let schemes = [Scheme::Greedy, Scheme::RandomOrder, Scheme::TwoPhaseValiant];
            let contentions = [
                ContentionPolicy::Fifo,
                ContentionPolicy::Lifo,
                ContentionPolicy::Random,
            ];
            Scenario::builder(Topology::Hypercube { dim })
                .lambda(lambda)
                .p(p)
                .scheme(schemes[scheme_i])
                .contention(contentions[contention_i])
                .arrivals(if slotted {
                    ArrivalModel::Slotted { slots_per_unit: 2 }
                } else {
                    ArrivalModel::Poisson
                })
                .horizon(150.0)
                .warmup(30.0)
                .seed(seed)
                .build()
                .expect("valid scenario")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `Scenario → JSON → Scenario` is the identity, and the round-tripped
    /// scenario reproduces the original's report bit for bit.
    #[test]
    fn scenario_json_round_trip_preserves_reports(scenario in scenario_strategy()) {
        let text = scenario.to_json();
        let back = Scenario::from_json(&text).expect("round-trip parses");
        prop_assert_eq!(&scenario, &back);
        let original = scenario.run().expect("original runs");
        let replayed = back.run().expect("replay runs");
        prop_assert_eq!(original, replayed);
    }

    /// Reports themselves survive JSON round-trips bit-exactly.
    #[test]
    fn report_json_round_trip(scenario in scenario_strategy()) {
        let report = scenario.run().expect("scenario runs");
        let text = serde_json::to_string(&report).expect("serialises");
        let back: Report = serde_json::from_str(&text).expect("parses");
        prop_assert_eq!(report, back);
    }
}
