//! The unified `Scenario` API's core guarantees, tested:
//!
//! 1. **Differential equivalence** — for every scheme × arrival model ×
//!    contention policy × discipline × topology, `Scenario::run()` is a
//!    pure function of the spec: reruns are byte-identical, observed runs
//!    (`run_observed`, which drives the engine through `&mut dyn
//!    Observer`) produce byte-identical reports to unobserved runs (which
//!    monomorphise the observer away), and the boxed `Simulator` dispatch
//!    equals the direct path. These are the invariants the retired
//!    legacy-vs-scenario differential suite pinned down, ported onto the
//!    scenario API now that the legacy entry points are gone.
//! 2. **Serde round-trip stability** — `Scenario → JSON → Scenario` is
//!    the identity, and (property-tested over random specs) the
//!    round-tripped scenario's report equals the original's bit for bit.

use hyperroute::prelude::*;
use proptest::prelude::*;

fn hypercube_scenario(
    scheme: Scheme,
    arrivals: ArrivalModel,
    contention: ContentionPolicy,
    dest: DestinationSpec,
    seed: u64,
) -> Scenario {
    Scenario::builder(Topology::Hypercube { dim: 4 })
        .lambda(1.0)
        .p(0.5)
        .scheme(scheme)
        .arrivals(arrivals)
        .dest(dest)
        .contention(contention)
        .horizon(400.0)
        .warmup(80.0)
        .seed(seed)
        .build()
        .expect("valid scenario")
}

/// The three equivalent execution paths of one scenario, compared
/// bit-exactly: plain `run` (monomorphised `NullObserver`), `run_observed`
/// behind `&mut dyn Observer`, and the boxed `Simulator` dispatch.
fn assert_paths_agree(scenario: &Scenario) -> Report {
    let direct = scenario.run().expect("scenario runs");
    let mut null = NullObserver;
    let observed = scenario
        .run_observed(&mut null)
        .expect("observed run completes");
    assert_eq!(direct, observed, "dyn-observer path diverged");
    let boxed = scenario
        .into_simulator()
        .expect("validates")
        .run_unobserved();
    assert_eq!(direct, boxed, "boxed dispatch diverged");
    direct
}

#[test]
fn hypercube_execution_paths_agree_across_full_matrix() {
    let schemes = [Scheme::Greedy, Scheme::RandomOrder, Scheme::TwoPhaseValiant];
    let arrivals = [
        ArrivalModel::Poisson,
        ArrivalModel::Slotted { slots_per_unit: 2 },
    ];
    let contentions = [
        ContentionPolicy::Fifo,
        ContentionPolicy::Lifo,
        ContentionPolicy::Random,
    ];
    for (i, &scheme) in schemes.iter().enumerate() {
        for (j, &arrival) in arrivals.iter().enumerate() {
            for (k, &contention) in contentions.iter().enumerate() {
                let seed = 0x5CE9 + (i * 100 + j * 10 + k) as u64;
                let scenario =
                    hypercube_scenario(scheme, arrival, contention, DestinationSpec::BitFlip, seed);
                let report = assert_paths_agree(&scenario);
                assert!(report.generated > 0, "degenerate case {scheme:?}");
                assert_eq!(report, scenario.run().unwrap(), "rerun diverged");
                let ReportExt::Hypercube(_) = &report.ext else {
                    panic!("wrong report extension");
                };
            }
        }
    }
}

#[test]
fn hypercube_paths_agree_with_custom_pmf() {
    let dest = DestinationSpec::product_of_flips(&[0.9, 0.3, 0.3, 0.1]);
    let scenario = hypercube_scenario(
        Scheme::Greedy,
        ArrivalModel::Poisson,
        ContentionPolicy::Fifo,
        dest,
        77,
    );
    let report = assert_paths_agree(&scenario);
    assert!(report.generated > 0);
}

#[test]
fn butterfly_execution_paths_agree() {
    for (arrivals, seed) in [
        (ArrivalModel::Poisson, 9u64),
        (ArrivalModel::Slotted { slots_per_unit: 3 }, 10),
    ] {
        let scenario = Scenario::builder(Topology::Butterfly { dim: 4 })
            .lambda(1.2)
            .p(0.4)
            .arrivals(arrivals)
            .horizon(400.0)
            .warmup(80.0)
            .seed(seed)
            .build()
            .expect("valid scenario");
        let report = assert_paths_agree(&scenario);
        assert_eq!(report.generated, report.delivered);
        let ReportExt::Butterfly(ext) = &report.ext else {
            panic!("wrong report extension");
        };
        assert_eq!(ext.straight_rate_per_level.len(), 4);
    }
}

#[test]
fn ring_execution_paths_agree_both_variants() {
    for (bidirectional, lambda, seed) in [(false, 0.15, 3u64), (true, 0.3, 4)] {
        let scenario = Scenario::builder(Topology::Ring {
            nodes: 12,
            bidirectional,
        })
        .lambda(lambda)
        .horizon(400.0)
        .warmup(80.0)
        .seed(seed)
        .build()
        .expect("valid scenario");
        let report = assert_paths_agree(&scenario);
        assert_eq!(report.generated, report.delivered);
        let ReportExt::Ring(ext) = &report.ext else {
            panic!("wrong report extension");
        };
        if !bidirectional {
            assert_eq!(ext.counter_clockwise_arc_rate, 0.0);
        }
    }
}

#[test]
fn eqnet_execution_paths_agree_both_disciplines() {
    use hyperroute::routing::equivalent_network::Discipline;
    for discipline in [Discipline::Fifo, Discipline::Ps] {
        let scenario = Scenario::builder(Topology::EqNet {
            net: EqNetSpec::HypercubeQ { dim: 3 },
            record_departures: true,
            occupancy_cap: 4,
        })
        .lambda(1.2)
        .p(0.5)
        .discipline(discipline)
        .horizon(400.0)
        .warmup(80.0)
        .seed(55)
        .build()
        .expect("valid scenario");
        let report = assert_paths_agree(&scenario);
        let ReportExt::EqNet(ext) = &report.ext else {
            panic!("wrong report extension");
        };
        assert!(!ext.departures.is_empty());
        assert_eq!(ext.occupancy_fractions[0].len(), 4);
    }
}

#[test]
fn pipelined_execution_paths_agree() {
    let scenario = Scenario::builder(Topology::Pipelined { dim: 4, rounds: 80 })
        .lambda(0.05)
        .p(0.5)
        .seed(0x717E)
        .build()
        .expect("valid scenario");
    let report = assert_paths_agree(&scenario);
    assert!(report.delivered > 0);
    let ReportExt::Pipelined(ext) = &report.ext else {
        panic!("wrong report extension");
    };
    assert!(ext.mean_round_length >= 1.0);
}

#[test]
fn time_series_probe_does_not_change_reports() {
    let scenario = Scenario::builder(Topology::Hypercube { dim: 4 })
        .lambda(1.4)
        .horizon(500.0)
        .warmup(100.0)
        .seed(33)
        .build()
        .expect("valid scenario");
    let unobserved = scenario.run().unwrap();
    let mut probe = TimeSeriesProbe::new(25.0, scenario.run.horizon);
    let observed = scenario.run_observed(&mut probe).unwrap();
    assert_eq!(unobserved, observed);
    let samples = probe.into_samples();
    assert!(samples.len() >= 10);
    assert!(samples.windows(2).all(|w| w[0].0 < w[1].0));
}

// ---------------------------------------------------------------------
// Serde round-trips.
// ---------------------------------------------------------------------

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        2usize..=5,
        0.05f64..1.6,
        0.05f64..=0.95,
        any::<u64>(),
        0usize..3,
        0usize..3,
        0usize..2,
    )
        .prop_map(|(dim, lambda, p, seed, scheme_i, contention_i, slotted)| {
            let slotted = slotted == 1;
            let schemes = [Scheme::Greedy, Scheme::RandomOrder, Scheme::TwoPhaseValiant];
            let contentions = [
                ContentionPolicy::Fifo,
                ContentionPolicy::Lifo,
                ContentionPolicy::Random,
            ];
            Scenario::builder(Topology::Hypercube { dim })
                .lambda(lambda)
                .p(p)
                .scheme(schemes[scheme_i])
                .contention(contentions[contention_i])
                .arrivals(if slotted {
                    ArrivalModel::Slotted { slots_per_unit: 2 }
                } else {
                    ArrivalModel::Poisson
                })
                .horizon(150.0)
                .warmup(30.0)
                .seed(seed)
                .build()
                .expect("valid scenario")
        })
}

fn ring_scenario_strategy() -> impl Strategy<Value = Scenario> {
    (3usize..=24, any::<bool>(), 0.02f64..0.2, any::<u64>()).prop_map(
        |(nodes, bidirectional, lambda, seed)| {
            Scenario::builder(Topology::Ring {
                nodes,
                bidirectional,
            })
            .lambda(lambda)
            .horizon(150.0)
            .warmup(30.0)
            .seed(seed)
            .build()
            .expect("valid scenario")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `Scenario → JSON → Scenario` is the identity, and the round-tripped
    /// scenario reproduces the original's report bit for bit.
    #[test]
    fn scenario_json_round_trip_preserves_reports(scenario in scenario_strategy()) {
        let text = scenario.to_json();
        let back = Scenario::from_json(&text).expect("round-trip parses");
        prop_assert_eq!(&scenario, &back);
        let original = scenario.run().expect("original runs");
        let replayed = back.run().expect("replay runs");
        prop_assert_eq!(original, replayed);
    }

    /// Reports themselves survive JSON round-trips bit-exactly.
    #[test]
    fn report_json_round_trip(scenario in scenario_strategy()) {
        let report = scenario.run().expect("scenario runs");
        let text = serde_json::to_string(&report).expect("serialises");
        let back: Report = serde_json::from_str(&text).expect("parses");
        prop_assert_eq!(report, back);
    }

    /// The new topology rides the same serde machinery: ring scenarios and
    /// their reports round-trip bit-exactly.
    #[test]
    fn ring_json_round_trip(scenario in ring_scenario_strategy()) {
        let text = scenario.to_json();
        let back = Scenario::from_json(&text).expect("round-trip parses");
        prop_assert_eq!(&scenario, &back);
        let original = scenario.run().expect("original runs");
        let replayed = back.run().expect("replay runs");
        prop_assert_eq!(&original, &replayed);
        let rendered = serde_json::to_string(&original).expect("serialises");
        let parsed: Report = serde_json::from_str(&rendered).expect("parses");
        prop_assert_eq!(original, parsed);
    }
}
