//! Differential oracle for the sharded engine: a run split across W
//! workers must produce a report **byte-identical** to the
//! single-threaded engine, for every engine-backed topology arm, both
//! scheduler backends, and every fault fallback. The single-threaded
//! engine is the specification; [`hyperroute_core::parallel`] is only
//! ever an execution strategy.

use hyperroute_core::scenario::{Scenario, Topology};
use hyperroute_core::{ContentionPolicy, DestinationSpec};
use hyperroute_desim::SchedulerKind;
use proptest::prelude::*;

/// Run `s` at `workers` (1 = classic engine) and return the report.
fn run_with(s: &Scenario, workers: usize) -> hyperroute_core::Report {
    let mut s = s.clone();
    s.run.workers = std::num::NonZeroUsize::new(workers);
    s.validate().expect("workers gate rejected scenario");
    s.clone().run().expect("run")
}

/// Assert byte-identity between one-thread and W-thread execution,
/// under both scheduler backends.
fn assert_shard_oblivious(mut s: Scenario, workers: usize) {
    for sched in [SchedulerKind::Calendar, SchedulerKind::Heap] {
        s.run.scheduler = sched;
        let single = run_with(&s, 1);
        let sharded = run_with(&s, workers);
        assert_eq!(
            single, sharded,
            "report diverged at workers={workers} sched={sched:?}"
        );
        assert_eq!(
            single.events, sharded.events,
            "event count diverged at workers={workers} sched={sched:?}"
        );
    }
}

fn base(topology: Topology) -> Scenario {
    Scenario::builder(topology)
        .lambda(0.8)
        .horizon(160.0)
        .warmup(40.0)
        .seed(0xC0FFEE)
        .build()
        .expect("valid scenario")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn hypercube_is_shard_oblivious(
        dim in 2usize..=6,
        seed in 0u64..1_000,
        workers_log in 1u32..=3,
        lifo in any::<bool>(),
    ) {
        let mut s = base(Topology::Hypercube { dim });
        s.workload.p = 0.7;
        s.run.seed = seed;
        if lifo {
            s.policy.contention = ContentionPolicy::Lifo;
        }
        assert_shard_oblivious(s, 1usize << workers_log);
    }

    #[test]
    fn butterfly_is_shard_oblivious(
        dim in 2usize..=5,
        seed in 0u64..1_000,
        workers_log in 1u32..=3,
    ) {
        let mut s = base(Topology::Butterfly { dim });
        s.workload.p = 0.6;
        s.run.seed = seed;
        assert_shard_oblivious(s, 1usize << workers_log);
    }

    #[test]
    fn ring_and_torus_are_shard_oblivious(
        seed in 0u64..1_000,
        workers_log in 1u32..=3,
        bidirectional in any::<bool>(),
    ) {
        let mut s = base(Topology::Ring { nodes: 24, bidirectional });
        s.workload.lambda = 0.25;
        s.run.seed = seed;
        assert_shard_oblivious(s, 1usize << workers_log);

        let mut s = base(Topology::Torus { radix: 5, dim: 2 });
        s.workload.lambda = 0.5;
        s.run.seed = seed;
        assert_shard_oblivious(s, 1usize << workers_log);
    }

    #[test]
    fn debruijn_and_fattree_are_shard_oblivious(
        seed in 0u64..1_000,
        workers_log in 1u32..=3,
    ) {
        let mut s = base(Topology::DeBruijn { dim: 5 });
        s.workload.lambda = 0.4;
        s.run.seed = seed;
        assert_shard_oblivious(s, 1usize << workers_log);

        let mut s = base(Topology::FatTree { levels: 4 });
        s.workload.lambda = 0.3;
        s.run.seed = seed;
        assert_shard_oblivious(s, 1usize << workers_log);
    }

    #[test]
    fn fault_fallbacks_are_shard_oblivious(
        seed in 0u64..500,
        workers_log in 1u32..=3,
        fallback_pick in 0u8..5,
        dynamic in any::<bool>(),
    ) {
        use hyperroute_core::config::{FaultArrivals, FaultFallback, FaultMode, FaultSpec};

        let fallback = match fallback_pick {
            0 => FaultFallback::Drop,
            1 => FaultFallback::Detour,
            2 => FaultFallback::Multipath,
            3 => FaultFallback::Retry { budget: 6 },
            _ => FaultFallback::Escape { ttl: 6 },
        };
        let mut s = base(Topology::Torus { radix: 5, dim: 2 });
        s.workload.lambda = 0.4;
        s.workload.stretch = Some(true);
        s.workload.faults = Some(FaultSpec {
            mode: FaultMode::Seeded { fraction: 0.2, seed: 4 },
            fallback,
            dynamics: dynamic.then_some(FaultArrivals { rate: 0.05, seed: 31 }),
        });
        s.run.seed = seed;
        assert_shard_oblivious(s, 1usize << workers_log);
    }

    #[test]
    fn sparse_escape_is_shard_oblivious(
        seed in 0u64..200,
        workers_log in 1u32..=3,
    ) {
        use hyperroute_core::config::{FaultFallback, FaultMode, FaultSpec};

        // Metric greedy on a small world stalls even without faults;
        // the escape walk must replay identically across shards.
        let mut s = base(Topology::SmallWorld {
            side: 10,
            dims: 2,
            links: 1,
            alpha: 2.0,
            seed: 3,
        });
        s.workload.lambda = 0.15;
        s.workload.dest = DestinationSpec::BitFlip;
        s.workload.faults = Some(FaultSpec {
            mode: FaultMode::Seeded { fraction: 0.1, seed: 8 },
            fallback: FaultFallback::Escape { ttl: 5 },
            dynamics: None,
        });
        s.run.seed = seed;
        assert_shard_oblivious(s, 1usize << workers_log);
    }

    #[test]
    fn sparse_graphs_are_shard_oblivious(
        seed in 0u64..200,
        workers_log in 1u32..=3,
    ) {
        let mut s = base(Topology::SmallWorld {
            side: 12,
            dims: 2,
            links: 2,
            alpha: 2.0,
            seed: 7,
        });
        s.workload.lambda = 0.1;
        s.workload.dest = DestinationSpec::BitFlip;
        s.run.seed = seed;
        assert_shard_oblivious(s, 1usize << workers_log);
    }
}

/// A dying shard must take the whole run down (panic propagation), not
/// deadlock the coordinator or silently drop its partition.
#[test]
fn killed_shard_propagates_panic() {
    use hyperroute_core::engine::{Advance, ArcChoice, EngineCfg, EngineSpec, Spawn};
    use hyperroute_core::packet::{Packet, NO_SECOND_LEG};
    use hyperroute_core::parallel::{ParallelEngine, ShardSpec, ShardableSpec};
    use hyperroute_core::ArrivalModel;
    use hyperroute_desim::SimRng;

    /// A directed ring: arc `i` goes `i -> i+1 mod n`, every packet
    /// travels four hops. Any hop served on the upper half of the ring
    /// (shard 1 of 2 under the contiguous degree-balanced partition)
    /// panics.
    struct KillSpec {
        nodes: u32,
    }

    impl EngineSpec for KillSpec {
        type Pkt = Packet;

        fn num_sources(&self) -> usize {
            self.nodes as usize
        }

        fn num_arcs(&self) -> usize {
            self.nodes as usize
        }

        fn arc_meta(&self, arc: usize) -> u32 {
            (arc as u32 + 1) % self.nodes
        }

        fn mean_hops_hint(&self) -> f64 {
            4.0
        }

        fn generate(&mut self, t: f64, _source: u32, _rng: &mut SimRng) -> Spawn<Packet> {
            Spawn::Route(Packet::new(t, 4, NO_SECOND_LEG))
        }

        fn choose_arc(
            &mut self,
            _t: f64,
            _in_window: bool,
            node: u32,
            _pkt: &mut Packet,
            _rng: &mut SimRng,
        ) -> ArcChoice {
            if node >= self.nodes / 2 {
                panic!("shard poisoned at node {node}");
            }
            ArcChoice::Arc(node)
        }

        fn note_service_end(&mut self, _t: f64, _meta: u32) {}

        fn advance(&mut self, meta: u32, pkt: &mut Packet) -> Advance {
            pkt.remaining -= 1;
            pkt.hops += 1;
            if pkt.remaining == 0 {
                Advance::Deliver(pkt.hops)
            } else {
                Advance::Forward(meta)
            }
        }

        fn note_deliver(&mut self, _pkt: &Packet, _in_window: bool) {}
    }

    impl ShardSpec for KillSpec {}

    impl ShardableSpec for KillSpec {
        type Shard = KillSpec;

        fn shard(&self) -> KillSpec {
            KillSpec { nodes: self.nodes }
        }

        fn num_nodes(&self) -> usize {
            self.nodes as usize
        }

        fn arc_tail(&self, arc: usize) -> u32 {
            arc as u32
        }

        fn absorb(&mut self, _shard: &KillSpec) {}
    }

    let cfg = EngineCfg {
        lambda: 0.5,
        arrivals: ArrivalModel::Poisson,
        contention: ContentionPolicy::Fifo,
        scheduler: SchedulerKind::default(),
        horizon: 50.0,
        warmup: 0.0,
        seed: 9,
        drain: true,
    };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut par = ParallelEngine::new(KillSpec { nodes: 16 }, cfg, 2);
        par.drive(&mut hyperroute_core::NullObserver);
    }));
    assert!(
        result.is_err(),
        "poisoned shard did not propagate its panic"
    );
}
