//! Property-based tests of the queueing substrate — the sample-path lemmas
//! hold on *every* path, so they are ideal proptest targets.

use hyperroute::queueing::sample_path::{counting_dominates, is_delayed_version};
use hyperroute::queueing::{fifo_departures, ps_departures};
use proptest::prelude::*;

/// Strategy: a sorted arrival sequence built from positive gaps.
fn arrivals(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..3.0, 1..max_len).prop_map(|gaps| {
        let mut t = 0.0;
        gaps.iter()
            .map(|g| {
                t += g;
                t
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fifo_departures_sorted_and_causal(arr in arrivals(200)) {
        let dep = fifo_departures(&arr, 1.0);
        // Sorted (FIFO preserves order) and at least service after arrival.
        prop_assert!(dep.windows(2).all(|w| w[0] <= w[1]));
        for (a, d) in arr.iter().zip(&dep) {
            prop_assert!(d >= &(a + 1.0) && d.is_finite());
        }
    }

    #[test]
    fn lemma_7_ps_dominates_fifo_everywhere(arr in arrivals(200)) {
        let fifo = fifo_departures(&arr, 1.0);
        let ps = ps_departures(&arr, 1.0);
        prop_assert!(
            is_delayed_version(&fifo, &ps, 1e-7),
            "PS departed earlier than FIFO somewhere"
        );
    }

    #[test]
    fn lemma_8_delaying_arrivals_delays_departures(
        arr in arrivals(150),
        extra in prop::collection::vec(0.0f64..2.0, 150),
    ) {
        // Build a cumulatively delayed (hence still sorted) arrival stream.
        let mut shift = 0.0;
        let delayed: Vec<f64> = arr
            .iter()
            .zip(extra.iter().chain(std::iter::repeat(&0.0)))
            .map(|(a, e)| {
                shift += e;
                a + shift
            })
            .collect();
        let d0 = fifo_departures(&arr, 1.0);
        let d1 = fifo_departures(&delayed, 1.0);
        prop_assert!(is_delayed_version(&d0, &d1, 1e-9));
    }

    #[test]
    fn ps_departures_preserve_arrival_order(arr in arrivals(150)) {
        let ps = ps_departures(&arr, 1.0);
        prop_assert!(ps.windows(2).all(|w| w[0] <= w[1] + 1e-9));
    }

    #[test]
    fn work_conservation_total_busy_time(arr in arrivals(100)) {
        // Both disciplines finish the same total work: the last departure
        // coincides (equal workload paths + non-idling).
        let fifo = fifo_departures(&arr, 1.0);
        let ps = ps_departures(&arr, 1.0);
        let last_fifo = fifo.iter().cloned().fold(f64::MIN, f64::max);
        let last_ps = ps.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!((last_fifo - last_ps).abs() < 1e-6,
            "busy periods end apart: {} vs {}", last_fifo, last_ps);
    }

    #[test]
    fn counting_dominance_is_a_partial_order(arr in arrivals(100)) {
        let fifo = fifo_departures(&arr, 1.0);
        let ps = ps_departures(&arr, 1.0);
        // Reflexive; FIFO dominates PS; antisymmetric unless equal.
        prop_assert!(counting_dominates(&fifo, &fifo, 0.0));
        prop_assert!(counting_dominates(&fifo, &ps, 1e-7));
    }

    #[test]
    fn mds_workload_bound_below_md1_truth(rho in 0.01f64..0.99) {
        // s = 1: the workload bound equals the exact M/D/1 delay; for
        // larger s it must only decrease.
        use hyperroute::queueing::{md1, mds};
        let exact = md1::mean_sojourn(rho);
        prop_assert!((mds::workload_lower_bound(1.0, rho) - exact).abs() < 1e-12);
        prop_assert!(mds::workload_lower_bound(4.0, rho) <= exact + 1e-12);
        prop_assert!(mds::workload_lower_bound(4.0, rho) >= 1.0);
    }
}
