//! Property tests of the sparse scenario path: **every routed packet is
//! accounted for, and every measured drop is classified**. Whatever the
//! generator (small-world, hyperbolic, scale-free), arrival rate, and
//! recovery setting (plain drop-at-stall vs the GOAFR-style escape
//! walk), a drained run conserves packets exactly, the
//! `LOCAL_MINIMUM | DEAD_END` taxonomy sums to the measured drops, and
//! rerunning the scenario is bit-identical.

use hyperroute::prelude::*;
use proptest::prelude::*;

/// Run a sparse scenario and assert conservation + taxonomy + replay.
fn assert_sparse_invariants(topology: Topology, lambda: f64, escape: Option<u16>) {
    let mut b = Scenario::builder(topology.clone())
        .lambda(lambda)
        .horizon(150.0)
        .warmup(30.0)
        .seed(0x5AA5);
    if let Some(ttl) = escape {
        b = b.faults(Some(FaultSpec {
            mode: FaultMode::Seeded {
                fraction: 0.0,
                seed: 0,
            },
            fallback: FaultFallback::Escape { ttl },
            dynamics: None,
        }));
    }
    let scenario = b.build().expect("valid sparse scenario");
    let report = scenario.run().expect("runs to completion");
    let g = report
        .graph()
        .expect("sparse runs report the graph extension");
    assert_eq!(
        report.generated,
        report.delivered + g.dropped,
        "stranded packets on {topology:?}"
    );
    let o = g
        .outcomes
        .as_ref()
        .expect("sparse runs always report the outcome taxonomy");
    assert_eq!(
        o.local_minimum + o.dead_end,
        g.dropped_in_window,
        "unclassified measured drops on {topology:?}"
    );
    assert_eq!(
        o.success, report.delay.count,
        "success != measured deliveries"
    );
    if escape.is_none() {
        assert_eq!(o.recovered, 0, "recoveries without an escape fallback");
    }
    // Identical inputs replay bit-identically (generator CSR, arrival
    // schedule, and destinations are all seeded).
    let again = scenario.run().expect("reruns");
    assert_eq!(report, again, "sparse run not deterministic");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn sparse_runs_conserve_and_classify_across_generators(
        gen_pick in 0usize..3,
        lambda in 0.01f64..0.08,
        gen_seed in any::<u64>(),
        escape in any::<bool>(),
        ttl in 4u16..32,
    ) {
        let topology = match gen_pick {
            0 => Topology::SmallWorld {
                side: 12,
                dims: 2,
                links: 2,
                alpha: 2.0,
                seed: gen_seed,
            },
            1 => Topology::Hyperbolic {
                nodes: 192,
                alpha: 0.8,
                radius_offset: -0.5,
                seed: gen_seed,
            },
            _ => Topology::ScaleFree {
                nodes: 192,
                gamma: 2.5,
                min_degree: 2,
                seed: gen_seed,
            },
        };
        assert_sparse_invariants(topology, lambda, escape.then_some(ttl));
    }
}
