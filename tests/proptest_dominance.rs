//! Property-based test of the paper's central sample-path theorem
//! (Lemmas 9/10): on *randomly generated* levelled networks with Markovian
//! routing, switching every server from FIFO to PS never accelerates the
//! departure process on coupled sample paths.

// Randomly *generated* levelled networks are not expressible as a
// `scenario::EqNetSpec` (which names the paper's concrete networks), so
// this test drives the engine-level `EqNetSim::with_network` hook with
// explicit run control.
use hyperroute::prelude::*;
use hyperroute::queueing::sample_path::counting_dominates;
use hyperroute::routing::equivalent_network::EqNetSim;
use hyperroute::routing::scenario::RunControl;
use hyperroute::topology::ServerId;
use proptest::prelude::*;

/// A random 2-to-3-level feed-forward network description.
#[derive(Debug, Clone)]
struct NetSpec {
    /// Servers per level.
    layout: Vec<usize>,
    /// External arrival rate per server (same order as levels).
    rates: Vec<f64>,
    /// Raw routing weights, normalised into probabilities summing < 1.
    weights: Vec<u8>,
    seed: u64,
}

fn net_spec() -> impl Strategy<Value = NetSpec> {
    (
        prop::collection::vec(1usize..=3, 2..=3),
        any::<u64>(),
        prop::collection::vec(0.05f64..0.5, 9),
        prop::collection::vec(any::<u8>(), 32),
    )
        .prop_map(|(layout, seed, rates, weights)| NetSpec {
            layout,
            rates,
            weights,
            seed,
        })
}

fn build(spec: &NetSpec) -> LevelledNetwork {
    let total: usize = spec.layout.iter().sum();
    let mut level = Vec::with_capacity(total);
    for (lvl, &n) in spec.layout.iter().enumerate() {
        level.extend(std::iter::repeat_n(lvl, n));
    }
    let external: Vec<f64> = (0..total)
        .map(|i| spec.rates[i % spec.rates.len()])
        .collect();
    // Route from each server to every server of the next level with
    // weights normalised so the total forward probability is ≤ 0.9.
    let mut routing: Vec<Vec<(ServerId, f64)>> = vec![Vec::new(); total];
    let mut w_iter = spec.weights.iter().cycle();
    let level_start: Vec<usize> = spec
        .layout
        .iter()
        .scan(0usize, |acc, &n| {
            let s = *acc;
            *acc += n;
            Some(s)
        })
        .collect();
    for s in 0..total {
        let lvl = level[s];
        if lvl + 1 >= spec.layout.len() {
            continue;
        }
        let next_start = level_start[lvl + 1];
        let next_n = spec.layout[lvl + 1];
        let raw: Vec<f64> = (0..next_n)
            .map(|_| 1.0 + *w_iter.next().expect("cycle") as f64)
            .collect();
        let total_w: f64 = raw.iter().sum();
        routing[s] = raw
            .iter()
            .enumerate()
            .map(|(j, w)| (ServerId(next_start + j), 0.9 * w / total_w))
            .collect();
    }
    let labels = (0..total).map(|s| format!("s{s}")).collect();
    LevelledNetwork::new(level, external, routing, labels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn lemma_10_on_random_networks(spec in net_spec()) {
        let net = build(&spec);
        prop_assume!(net.max_utilization() < 0.95);
        let run = RunControl {
            horizon: 400.0,
            warmup: 50.0,
            seed: spec.seed,
            ..Default::default()
        };
        let fifo = EqNetSim::with_network(&net, Discipline::Fifo, &run, true, 0).run();
        let ps = EqNetSim::with_network(&net, Discipline::Ps, &run, true, 0).run();
        // Coupled sample paths: same customers in both systems.
        prop_assert_eq!(fifo.generated, ps.generated);
        let (fifo_dep, ps_dep) = (
            &fifo.eqnet().expect("eqnet report").departures,
            &ps.eqnet().expect("eqnet report").departures,
        );
        // Lemma 10: B(t) ≥ B̄(t) for every t.
        prop_assert!(
            counting_dominates(fifo_dep, ps_dep, 1e-7),
            "PS departures got ahead on a random levelled network"
        );
        // Prop. 11 corollary in expectation.
        prop_assert!(fifo.mean_in_system <= ps.mean_in_system * 1.10 + 0.05);
    }
}
