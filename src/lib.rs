//! # hyperroute
//!
//! A faithful, exhaustively tested reproduction of
//! **“The Efficiency of Greedy Routing in Hypercubes and Butterflies”**
//! (G. D. Stamoulis & J. N. Tsitsiklis, SPAA 1991 / MIT LIDS-P-1999):
//! exact packet-level simulators for the paper's dynamic routing model,
//! every closed-form bound as a documented function, the levelled
//! equivalent queueing networks with FIFO/PS coupling, baseline schemes,
//! and a bench harness that regenerates every experiment.
//!
//! ## The model in one paragraph
//!
//! Every node of the `d`-dimensional hypercube generates packets as an
//! independent Poisson process with rate `λ`; a packet picks its
//! destination by flipping each origin bit independently with probability
//! `p`. Greedy routing sends it across the required dimensions in
//! increasing index order, one unit of time per arc, FIFO per arc, no
//! idling. With load factor `ρ = λp` the paper proves stability for every
//! `ρ < 1` and brackets the stationary delay as
//! `dp + pρ/(2(1-ρ)) ≤ T ≤ dp/(1-ρ)` — average delay `O(d)` at any fixed
//! load. The butterfly analogue replaces `ρ` with `λ·max{p, 1-p}` and
//! brackets `T` between `d + λp²/(2(1-λp)) + λ(1-p)²/(2(1-λ(1-p)))` and
//! `dp/(1-λp) + d(1-p)/(1-λ(1-p))`.
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`topology`] | hypercube, butterfly, ring, torus, de Bruijn, the generic `RoutingTopology` trait, canonical paths, equivalent networks Q/R, DOT figures |
//! | [`desim`] | event schedulers (binary heap + calendar queue), RNG streams, statistics |
//! | [`queueing`] | M/M/1, M/D/1, M/D/s, FIFO/PS sample-path servers, product form |
//! | [`analysis`] | every proposition's bound as a function |
//! | [`routing`] | the topology-generic engine, the scenario API, and the per-topology simulator specs (crate `hyperroute-core`) |
//! | [`sparse`] | seeded million-node graph generators (Kleinberg small-world, hyperbolic disk, configuration-model scale-free/expander) on a streaming CSR with metric greedy routing (crate `hyperroute-sparse`) |
//! | [`grid`] | sharded sweep campaigns: slice jobs, thread-pool/subprocess backends, checkpointed manifests, the scenario-corpus regression gate (crate `hyperroute-grid`) |
//! | [`experiments`] | the E01–E26 harnesses and result tables |
//!
//! ## Quick start
//!
//! One typed [`prelude::Scenario`] drives every topology — hypercube,
//! butterfly, ring, torus, de Bruijn, the equivalent queueing networks,
//! and the pipelined baseline — through **one** topology-generic engine
//! (`hyperroute_core::engine`), serialises to JSON scenario files, and
//! expands into deterministic parameter [`prelude::Sweep`]s:
//!
//! ```
//! use hyperroute::prelude::*;
//!
//! let report = Scenario::builder(Topology::Hypercube { dim: 5 })
//!     .lambda(1.4)
//!     .p(0.5) // ρ = 0.7
//!     .horizon(2_000.0)
//!     .warmup(400.0)
//!     .seed(7)
//!     .build()
//!     .expect("valid scenario")
//!     .run()
//!     .expect("runs to completion");
//! let bounds = greedy_delay_bounds(5, 1.4, 0.5);
//! assert!(bounds.contains(report.delay.mean, 0.05));
//! ```
//!
//! Grids that outgrow one process shard through [`grid`]: a sweep is cut
//! into serialisable slices, executed on an in-process thread pool or on
//! `hyperroute-grid worker` subprocesses (newline-delimited JSON over
//! stdio), checkpointed per slice, and merged back **byte-identical** to
//! `Sweep::run`:
//!
//! ```
//! use hyperroute::prelude::*;
//! use hyperroute_grid::{Campaign, ThreadPoolBackend};
//!
//! let base = Scenario::builder(Topology::Hypercube { dim: 3 })
//!     .horizon(80.0)
//!     .warmup(20.0)
//!     .build()
//!     .unwrap();
//! let sweep = Sweep::new(base, vec![Axis::new(SweepParam::Lambda, vec![0.5, 1.0])]);
//! let sharded = Campaign::new(sweep.clone(), 1)
//!     .run(&ThreadPoolBackend::new(2))
//!     .unwrap();
//! assert_eq!(sharded, sweep.run(1).unwrap());
//! ```
//!
//! The checked-in `scenarios/` corpus runs through the same machinery as
//! a CI regression gate (`hyperroute-grid run-corpus`): every scenario's
//! report is diffed bit-exactly against `scenarios/baselines/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use hyperroute_analysis as analysis;
pub use hyperroute_core as routing;
pub use hyperroute_desim as desim;
pub use hyperroute_experiments as experiments;
pub use hyperroute_grid as grid;
pub use hyperroute_queueing as queueing;
pub use hyperroute_sparse as sparse;
pub use hyperroute_topology as topology;

/// The most common imports in one place.
pub mod prelude {
    pub use hyperroute_analysis::butterfly_bounds;
    pub use hyperroute_analysis::hypercube_bounds::{
        greedy_delay_bounds, greedy_lower_bound, greedy_upper_bound, oblivious_lower_bound,
        universal_lower_bound, DelayBounds,
    };
    pub use hyperroute_analysis::load::{butterfly_load_factor, hypercube_load_factor};
    pub use hyperroute_core::config::{FaultArrivals, FaultFallback, FaultMode, FaultSpec};
    pub use hyperroute_core::equivalent_network::Discipline;
    pub use hyperroute_core::observe::{
        BufferedObserver, NullObserver, Observer, OccupancyProbe, ReservoirProbe, TimeSeriesProbe,
    };
    pub use hyperroute_core::scenario::{
        Axis, ConfigError, EqNetSpec, GraphExt, OutcomeExt, Report, ReportExt, Scenario,
        ScenarioFileError, Simulator, StretchExt, Sweep, SweepParam, Topology,
    };
    pub use hyperroute_core::{ArrivalModel, ContentionPolicy, DestinationSpec, Scheme};
    pub use hyperroute_experiments::{Scale, Table};
    pub use hyperroute_sparse::{
        expander, hyperbolic, scale_free, small_world, Embedding, SparseGraph, SparseTopology,
    };
    pub use hyperroute_topology::{
        Butterfly, DeBruijn, FatTree, Hypercube, LevelledNetwork, NodeId, Ring, RoutingTopology,
        Torus,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let cube = Hypercube::new(3);
        assert_eq!(cube.num_arcs(), 24);
        let rho = hypercube_load_factor(1.0, 0.5);
        assert_eq!(rho, 0.5);
        let b = greedy_delay_bounds(3, 1.0, 0.5);
        assert!(b.lower < b.upper);
    }

    #[test]
    fn scenario_api_through_facade() {
        let report = Scenario::builder(Topology::Hypercube { dim: 3 })
            .lambda(1.0)
            .horizon(300.0)
            .warmup(50.0)
            .seed(3)
            .build()
            .expect("valid")
            .run()
            .expect("runs");
        assert_eq!(report.generated, report.delivered);
    }
}
